//===-- absint/Differencing.cpp - Unbounded validity analysis --------------===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//

#include "absint/Differencing.h"

#include <algorithm>
#include <functional>

using namespace commcsl;
using namespace commcsl::absint;

const char *commcsl::absint::obStatusName(ObStatus S) {
  switch (S) {
  case ObStatus::Proved:
    return "proved";
  case ObStatus::Refuted:
    return "refuted";
  case ObStatus::Inconclusive:
    return "inconclusive";
  }
  return "?";
}

std::string commcsl::absint::slotSymName(unsigned I) {
  return "%g" + std::to_string(I);
}

const ActionAbs *SpecAbsResult::action(const std::string &Name) const {
  for (const ActionAbs &A : Actions)
    if (A.Name == Name)
      return &A;
  return nullptr;
}

const PairAbs *SpecAbsResult::pair(const std::string &A,
                                   const std::string &B) const {
  for (const PairAbs &P : Pairs)
    if ((P.First == A && P.Second == B) || (P.First == B && P.Second == A))
      return &P;
  return nullptr;
}

//===----------------------------------------------------------------------===//
// Expression translation
//===----------------------------------------------------------------------===//

namespace {

const ATerm *trExpr(TermFactory &F, const Expr &E,
                    const std::map<std::string, const ATerm *> &Env,
                    const Program *Prog, unsigned Depth) {
  if (Depth > 32)
    return nullptr;
  switch (E.Kind) {
  case ExprKind::IntLit:
    return F.intConst(E.IntVal);
  case ExprKind::BoolLit:
    return F.boolConst(E.BoolVal);
  case ExprKind::StringLit:
    return F.strConst(E.Name);
  case ExprKind::UnitLit:
    return F.unitConst();
  case ExprKind::Var: {
    auto It = Env.find(E.Name);
    return It == Env.end() ? nullptr : It->second;
  }
  case ExprKind::Unary: {
    const ATerm *A = trExpr(F, *E.Args[0], Env, Prog, Depth);
    if (!A)
      return nullptr;
    // vops::neg wraps like multiplication by -1 does.
    return E.UOp == UnaryOp::Neg ? F.mul2(F.intConst(-1), A) : F.notT(A);
  }
  case ExprKind::Binary: {
    const ATerm *A = trExpr(F, *E.Args[0], Env, Prog, Depth);
    const ATerm *B = A ? trExpr(F, *E.Args[1], Env, Prog, Depth) : nullptr;
    if (!B)
      return nullptr;
    switch (E.BOp) {
    case BinaryOp::Add:
      return F.add2(A, B);
    case BinaryOp::Sub:
      return F.add2(A, F.mul2(F.intConst(-1), B));
    case BinaryOp::Mul:
      return F.mul2(A, B);
    case BinaryOp::Div:
      return F.app(AOp::Div, {A, B});
    case BinaryOp::Mod:
      return F.app(AOp::Mod, {A, B});
    case BinaryOp::Eq:
      return F.eq(A, B);
    case BinaryOp::Ne:
      return F.notT(F.eq(A, B));
    case BinaryOp::Lt:
      return F.app(AOp::Lt, {A, B});
    case BinaryOp::Le:
      return F.app(AOp::Le, {A, B});
    case BinaryOp::Gt:
      return F.app(AOp::Lt, {B, A});
    case BinaryOp::Ge:
      return F.app(AOp::Le, {B, A});
    case BinaryOp::And:
      return F.app(AOp::And, {A, B});
    case BinaryOp::Or:
      return F.app(AOp::Or, {A, B});
    case BinaryOp::Implies:
      return F.app(AOp::Or, {F.notT(A), B});
    }
    return nullptr;
  }
  case ExprKind::Builtin: {
    std::vector<const ATerm *> Args;
    Args.reserve(E.Args.size());
    for (const ExprRef &Arg : E.Args) {
      const ATerm *T = trExpr(F, *Arg, Env, Prog, Depth);
      if (!T)
        return nullptr;
      Args.push_back(T);
    }
    if (E.Builtin == BuiltinKind::Ite && Args.size() == 3)
      return F.ite(Args[0], Args[1], Args[2]);
    return F.bi(E.Builtin, std::move(Args));
  }
  case ExprKind::Call: {
    const FuncDecl *Fn = Prog ? Prog->findFunc(E.Name) : nullptr;
    if (!Fn || !Fn->Body || Fn->Params.size() != E.Args.size())
      return nullptr;
    std::map<std::string, const ATerm *> Inner;
    for (size_t I = 0; I < E.Args.size(); ++I) {
      const ATerm *T = trExpr(F, *E.Args[I], Env, Prog, Depth);
      if (!T)
        return nullptr;
      Inner[Fn->Params[I].Name] = T;
    }
    return trExpr(F, *Fn->Body, Inner, Prog, Depth + 1);
  }
  }
  return nullptr;
}

} // namespace

const ATerm *commcsl::absint::translateExpr(
    TermFactory &F, const Expr &E,
    const std::map<std::string, const ATerm *> &Env, const Program *Prog) {
  return trExpr(F, E, Env, Prog, 0);
}

std::vector<const ATerm *> commcsl::absint::pairComps(const ATerm *T) {
  std::vector<const ATerm *> Out;
  std::function<void(const ATerm *)> Go = [&](const ATerm *N) {
    if (N->K == AOp::Bi && N->B == BuiltinKind::PairMk) {
      Go(N->Kids[0]);
      Go(N->Kids[1]);
      return;
    }
    Out.push_back(N);
  };
  Go(T);
  return Out;
}

const ATerm *
commcsl::absint::substTerm(TermFactory &F, const ATerm *T,
                           const std::map<const ATerm *, const ATerm *> &Map) {
  auto It = Map.find(T);
  if (It != Map.end())
    return It->second;
  if (T->Kids.empty())
    return T;
  std::vector<const ATerm *> Kids;
  Kids.reserve(T->Kids.size());
  bool Changed = false;
  for (const ATerm *Kid : T->Kids) {
    const ATerm *NK = substTerm(F, Kid, Map);
    Changed |= NK != Kid;
    Kids.push_back(NK);
  }
  if (!Changed)
    return T;
  if (T->K == AOp::Eq) // keep the canonical child order invariant
    return F.eq(Kids[0], Kids[1]);
  return T->K == AOp::Bi ? F.bi(T->B, std::move(Kids))
                         : F.app(T->K, std::move(Kids));
}

bool commcsl::absint::mentionsSym(const ATerm *T, const std::string &Sym) {
  if (T->K == AOp::Sym)
    return T->Str == Sym;
  for (const ATerm *Kid : T->Kids)
    if (mentionsSym(Kid, Sym))
      return true;
  return false;
}

//===----------------------------------------------------------------------===//
// Precondition facts
//===----------------------------------------------------------------------===//

PreFacts commcsl::absint::addRelationalPreFacts(FactCtx &Ctx, TermFactory &F,
                                                const Program *Prog,
                                                const ActionDecl &Act,
                                                const ATerm *X,
                                                const ATerm *X2) {
  PreFacts Out;
  const std::map<std::string, const ATerm *> Env1{{Act.ArgName, X}};
  const std::map<std::string, const ATerm *> Env2{{Act.ArgName, X2}};
  for (const ContractAtom &At : Act.Pre) {
    switch (At.AtomKind) {
    case ContractAtom::Kind::Low: {
      if (At.Cond) {
        // `c ==> low(e)` would need a disjunctive fact store; fall back.
        Out.Supported = false;
        return Out;
      }
      const ATerm *E1 = At.E ? translateExpr(F, *At.E, Env1, Prog) : nullptr;
      const ATerm *E2 = At.E ? translateExpr(F, *At.E, Env2, Prog) : nullptr;
      if (!E1 || !E2) {
        Out.Supported = false;
        return Out;
      }
      if (!Ctx.addEq(E1, E2))
        Out.Infeasible = true;
      break;
    }
    case ContractAtom::Kind::Bool: {
      const ATerm *E1 = At.E ? translateExpr(F, *At.E, Env1, Prog) : nullptr;
      const ATerm *E2 = At.E ? translateExpr(F, *At.E, Env2, Prog) : nullptr;
      if (!E1 || !E2) {
        Out.Supported = false;
        return Out;
      }
      if (!Ctx.addBool(E1, true) || !Ctx.addBool(E2, true))
        Out.Infeasible = true;
      break;
    }
    default:
      Out.Supported = false;
      return Out;
    }
  }
  if (Ctx.infeasible())
    Out.Infeasible = true;
  return Out;
}

PreFacts commcsl::absint::addUnaryPreFacts(FactCtx &Ctx, TermFactory &F,
                                           const Program *Prog,
                                           const ActionDecl &Act,
                                           const ATerm *X) {
  PreFacts Out;
  const std::map<std::string, const ATerm *> Env{{Act.ArgName, X}};
  for (const ContractAtom &At : Act.Pre) {
    switch (At.AtomKind) {
    case ContractAtom::Kind::Low:
      // With the same argument on both sides, low(e) — conditional or not —
      // is vacuous.
      break;
    case ContractAtom::Kind::Bool: {
      const ATerm *E = At.E ? translateExpr(F, *At.E, Env, Prog) : nullptr;
      if (!E) {
        Out.Supported = false;
        return Out;
      }
      if (!Ctx.addBool(E, true))
        Out.Infeasible = true;
      break;
    }
    default:
      Out.Supported = false;
      return Out;
    }
  }
  if (Ctx.infeasible())
    Out.Infeasible = true;
  return Out;
}

bool commcsl::absint::buildCommObligation(TermFactory &F,
                                          const ResourceSpecDecl &Spec,
                                          const Program *Prog,
                                          const ActionDecl &A,
                                          const ActionDecl &B, const ATerm *X,
                                          const ATerm *Y, const ATerm *&L,
                                          const ATerm *&R) {
  if (!Spec.Alpha || !A.Apply || !B.Apply)
    return false;
  const ATerm *S = F.sym(stateSymName());
  auto applyOf = [&](const ActionDecl &Act, const ATerm *State,
                     const ATerm *Arg) -> const ATerm * {
    const std::map<std::string, const ATerm *> Env{{Act.StateName, State},
                                                   {Act.ArgName, Arg}};
    return translateExpr(F, *Act.Apply, Env, Prog);
  };
  auto alphaOf = [&](const ATerm *State) -> const ATerm * {
    const std::map<std::string, const ATerm *> Env{{Spec.AlphaParam, State}};
    return translateExpr(F, *Spec.Alpha, Env, Prog);
  };
  const ATerm *FA = applyOf(A, S, X);
  const ATerm *FBA = FA ? applyOf(B, FA, Y) : nullptr;
  const ATerm *FB = applyOf(B, S, Y);
  const ATerm *FAB = FB ? applyOf(A, FB, X) : nullptr;
  if (!FBA || !FAB)
    return false;
  L = alphaOf(FBA);
  R = alphaOf(FAB);
  return L && R;
}

//===----------------------------------------------------------------------===//
// Split-search prover
//===----------------------------------------------------------------------===//

namespace {

std::unique_ptr<SplitNode> leafNode(bool Ok, bool Infeasible = false) {
  auto N = std::make_unique<SplitNode>();
  N->Ok = Ok;
  N->ViaInfeasible = Infeasible;
  return N;
}

struct ProveOut {
  ObStatus St = ObStatus::Inconclusive;
  std::unique_ptr<SplitNode> Tree;
};

class Prover {
public:
  Prover(TermFactory &F, const AbsOptions &O, SpecAbsResult &R)
      : F(F), O(O), Res(R) {}

  ProveOut prove(const ATerm *L, const ATerm *R, const FactCtx &Ctx,
                 unsigned Depth) {
    ProveOut Out;
    if (Ctx.infeasible()) {
      Out.St = ObStatus::Proved;
      Out.Tree = leafNode(true, true);
      return Out;
    }
    Normalizer N(F, Ctx, O.Limits);
    const ATerm *NL = N.normalize(L);
    const ATerm *NR = NL ? N.normalize(R) : nullptr;
    Res.RewriteSteps += N.steps();
    if (!NL || !NR) {
      Out.Tree = leafNode(false);
      return Out;
    }
    if (NL == NR) {
      Out.St = ObStatus::Proved;
      Out.Tree = leafNode(true);
      return Out;
    }
    bool SawRefuted = false;
    if (Depth > 0) {
      unsigned Tried = 0;
      for (const ATerm *G : N.blockedGuards()) {
        if (Tried >= MaxGuardsPerNode || Res.Splits >= O.MaxSplits)
          break;
        ++Tried;
        ++Res.Splits;
        FactCtx CT = Ctx;
        FactCtx CF = Ctx;
        bool FeasT = CT.addBool(G, true);
        bool FeasF = CF.addBool(G, false);
        ProveOut TB;
        if (!FeasT) {
          TB.St = ObStatus::Proved;
          TB.Tree = leafNode(true, true);
        } else {
          TB = prove(L, R, CT, Depth - 1);
        }
        SawRefuted |= TB.St == ObStatus::Refuted;
        if (TB.St != ObStatus::Proved)
          continue;
        ProveOut EB;
        if (!FeasF) {
          EB.St = ObStatus::Proved;
          EB.Tree = leafNode(true, true);
        } else {
          EB = prove(L, R, CF, Depth - 1);
        }
        SawRefuted |= EB.St == ObStatus::Refuted;
        if (EB.St != ObStatus::Proved)
          continue;
        auto Node = std::make_unique<SplitNode>();
        Node->Guard = G;
        Node->Then = std::move(TB.Tree);
        Node->Else = std::move(EB.Tree);
        Out.St = ObStatus::Proved;
        Out.Tree = std::move(Node);
        return Out;
      }
    }
    Out.St = (SawRefuted || (isDecided(NL) && isDecided(NR)))
                 ? ObStatus::Refuted
                 : ObStatus::Inconclusive;
    Out.Tree = leafNode(false);
    return Out;
  }

private:
  /// A fully-interpreted normal form: constants, free symbols, arithmetic,
  /// and pairs thereof. Distinct decided forms are a strong
  /// counterexample hint (some instantiation separates them) — as opposed
  /// to forms stuck on an uninterpreted operation, where the rewrite
  /// system simply ran out of rules. The hint is validated concretely by
  /// the caller either way.
  static bool isDecided(const ATerm *T) {
    switch (T->K) {
    case AOp::IntConst:
    case AOp::BoolConst:
    case AOp::StrConst:
    case AOp::UnitConst:
    case AOp::Sym:
      break;
    case AOp::Add:
    case AOp::Mul:
      break;
    case AOp::Bi:
      if (T->B != BuiltinKind::PairMk)
        return false;
      break;
    default:
      return false;
    }
    for (const ATerm *Kid : T->Kids)
      if (!isDecided(Kid))
        return false;
    return true;
  }

  static constexpr unsigned MaxGuardsPerNode = 4;

  TermFactory &F;
  const AbsOptions &O;
  SpecAbsResult &Res;
};

} // namespace

//===----------------------------------------------------------------------===//
// Replay (used by the certificate checker)
//===----------------------------------------------------------------------===//

bool commcsl::absint::replaySplitTree(TermFactory &F, const ATerm *L,
                                      const ATerm *R, const FactCtx &Ctx,
                                      const SplitNode *Tree,
                                      const NormLimits &Limits,
                                      uint64_t *StepsOut) {
  if (Ctx.infeasible())
    return true;
  if (!Tree || !Tree->Guard) {
    Normalizer N(F, Ctx, Limits);
    const ATerm *NL = N.normalize(L);
    const ATerm *NR = NL ? N.normalize(R) : nullptr;
    if (StepsOut)
      *StepsOut += N.steps();
    return NL && NR && NL == NR;
  }
  FactCtx CT = Ctx;
  FactCtx CF = Ctx;
  bool FeasT = CT.addBool(Tree->Guard, true);
  bool FeasF = CF.addBool(Tree->Guard, false);
  if (FeasT &&
      !replaySplitTree(F, L, R, CT, Tree->Then.get(), Limits, StepsOut))
    return false;
  if (FeasF &&
      !replaySplitTree(F, L, R, CF, Tree->Else.get(), Limits, StepsOut))
    return false;
  return true;
}

//===----------------------------------------------------------------------===//
// Top-level per-spec analysis
//===----------------------------------------------------------------------===//

SpecAbsResult commcsl::absint::analyzeSpec(const ResourceSpecDecl &Spec,
                                           const Program *Prog,
                                           const AbsOptions &Opts) {
  SpecAbsResult R;
  R.Factory = std::make_shared<TermFactory>();
  TermFactory &F = *R.Factory;

  const ATerm *S = F.sym(stateSymName());
  const ATerm *NAlpha = nullptr;
  {
    const std::map<std::string, const ATerm *> Env{{Spec.AlphaParam, S}};
    const ATerm *AlphaS =
        Spec.Alpha ? translateExpr(F, *Spec.Alpha, Env, Prog) : nullptr;
    if (!AlphaS)
      return R;
    FactCtx Empty(F);
    Normalizer N(F, Empty, Opts.Limits);
    NAlpha = N.normalize(AlphaS);
    R.RewriteSteps += N.steps();
    if (!NAlpha)
      return R;
  }
  R.Applicable = true;
  R.Comps = pairComps(NAlpha);

  // Components mentioning the state become slots; state-free components are
  // literal values shared by construction. Duplicate components share the
  // first slot (emplace keeps the earliest index).
  std::map<const ATerm *, const ATerm *> SlotMap;
  for (unsigned I = 0; I < R.Comps.size(); ++I)
    if (mentionsSym(R.Comps[I], stateSymName()))
      SlotMap.emplace(R.Comps[I], F.sym(slotSymName(I)));

  Prover P(F, Opts, R);
  FactCtx Empty(F);
  const ATerm *Arg = F.sym(argSymName());

  for (const ActionDecl &Act : Spec.Actions) {
    ActionAbs AA;
    AA.Name = Act.Name;

    // C1: factorize alpha(f_a(s, arg)) through the slots.
    const std::map<std::string, const ATerm *> Env{{Act.StateName, S},
                                                   {Act.ArgName, Arg}};
    const ATerm *FA =
        Act.Apply ? translateExpr(F, *Act.Apply, Env, Prog) : nullptr;
    if (FA) {
      const std::map<std::string, const ATerm *> AEnv{{Spec.AlphaParam, FA}};
      const ATerm *AFA = translateExpr(F, *Spec.Alpha, AEnv, Prog);
      if (AFA) {
        Normalizer N(F, Empty, Opts.Limits);
        if (const ATerm *NA = N.normalize(AFA)) {
          const ATerm *U = substTerm(F, NA, SlotMap);
          if (!mentionsSym(U, stateSymName()))
            AA.U = U;
        }
        R.RewriteSteps += N.steps();
      }
    }

    // A': the relational precondition preserves equal abstractions.
    ++R.Obligations;
    if (AA.U) {
      const ATerm *X = F.sym(argSymA());
      const ATerm *X2 = F.sym(argSymA2());
      FactCtx Ctx(F);
      PreFacts PF = addRelationalPreFacts(Ctx, F, Prog, Act, X, X2);
      if (PF.Supported) {
        if (PF.Infeasible || Ctx.infeasible()) {
          AA.Pre = ObStatus::Proved;
          AA.PreTree = leafNode(true, true);
        } else {
          const ATerm *L = substTerm(F, AA.U, {{Arg, X}});
          const ATerm *Rt = substTerm(F, AA.U, {{Arg, X2}});
          ProveOut PO = P.prove(L, Rt, Ctx, Opts.MaxSplitDepth);
          AA.Pre = PO.St;
          AA.PreTree = std::move(PO.Tree);
        }
        if (AA.Pre == ObStatus::Proved)
          ++R.ProvedCount;
      }
    }
    R.Actions.push_back(std::move(AA));
  }

  // B1: pairwise commutativity modulo alpha on the universal state.
  const ATerm *X = F.sym(argSymA());
  const ATerm *Y = F.sym(argSymB());
  for (size_t I = 0; I < Spec.Actions.size(); ++I) {
    for (size_t J = I; J < Spec.Actions.size(); ++J) {
      const ActionDecl &A = Spec.Actions[I];
      const ActionDecl &B = Spec.Actions[J];
      if (I == J && A.Unique)
        continue; // a unique action never races itself
      PairAbs PA;
      PA.First = A.Name;
      PA.Second = B.Name;
      ++R.Obligations;
      // Enabledness conditions change which interleavings are concretely
      // reachable; the abstract obligation would be needlessly stronger.
      // Leave such pairs to the bounded tiers.
      if (!A.Enabled && !B.Enabled) {
        const ATerm *L = nullptr, *Rt = nullptr;
        if (buildCommObligation(F, Spec, Prog, A, B, X, Y, L, Rt)) {
          FactCtx Ctx(F);
          PreFacts PFA = addUnaryPreFacts(Ctx, F, Prog, A, X);
          PreFacts PFB = addUnaryPreFacts(Ctx, F, Prog, B, Y);
          if (PFA.Supported && PFB.Supported) {
            if (PFA.Infeasible || PFB.Infeasible || Ctx.infeasible()) {
              PA.Comm = ObStatus::Proved;
              PA.Tree = leafNode(true, true);
            } else {
              ProveOut PO = P.prove(L, Rt, Ctx, Opts.MaxSplitDepth);
              PA.Comm = PO.St;
              PA.Tree = std::move(PO.Tree);
            }
            if (PA.Comm == ObStatus::Proved)
              ++R.ProvedCount;
          }
        }
      }
      R.Pairs.push_back(std::move(PA));
    }
  }

  R.AllProved = true;
  for (const ActionAbs &A : R.Actions)
    R.AllProved &= A.U && A.Pre == ObStatus::Proved;
  for (const PairAbs &PA : R.Pairs)
    R.AllProved &= PA.Comm == ObStatus::Proved;

  if (Opts.InjectUnsound && !R.Actions.empty())
    R.Actions[0].U = F.intConst(42);

  return R;
}
