//===-- absint/Normalize.h - Equational normalizer ---------------*- C++ -*-===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The equational core of the differencing tier (DESIGN §13): an innermost
/// rewrite engine that brings `ATerm`s into a canonical form modulo the
/// value domain's algebra — AC-flattening/sorting for `+`, `*`, `&&`,
/// `||`, `min`/`max`, set/multiset constructions, directed rules for the
/// collection builtins (`dom(map_put(m,k,v)) → set_add(dom(m),k)`, put/get
/// commutation with key case-splits, `seq_to_mset(append(s,x)) →
/// ms_add(...)`, ...), constant folding that mirrors `vops` exactly, and
/// fact application from the current branch's `FactCtx`.
///
/// Rules whose applicability hinges on an undecided condition (a key
/// equality, a map/set membership, an `ite` condition) do not fire; instead
/// the condition is recorded as a *blocked guard*, in deterministic
/// traversal order, for the prover to case-split on.
///
/// Deliberately absent: any rule for `sum(seq)` / `mean(seq)` beyond the
/// empty sequence. The concrete fold saturates at the int64 boundary, which
/// makes it order-sensitive there, so treating it as homomorphic over
/// `append` would be unsound for an *unbounded* claim. Specs abstracting
/// through `sum(v)` stay with the bounded tiers; the Table 1 ghost-sum
/// specs use plain `+`, which wraps (a commutative ring), and are provable.
///
//===----------------------------------------------------------------------===//

#ifndef COMMCSL_ABSINT_NORMALIZE_H
#define COMMCSL_ABSINT_NORMALIZE_H

#include "absint/Domain.h"
#include "absint/Term.h"

#include <unordered_map>
#include <unordered_set>

namespace commcsl {
namespace absint {

struct NormLimits {
  uint64_t MaxSteps = 50000;
  uint32_t MaxTermSize = 20000;
};

class Normalizer {
public:
  Normalizer(TermFactory &F, const FactCtx &Ctx, NormLimits Limits = {})
      : F(F), Ctx(Ctx), Limits(Limits) {}

  /// Canonical form of \p T under the branch facts, or null when a budget
  /// was exhausted (the caller must treat the obligation as inconclusive).
  const ATerm *normalize(const ATerm *T);

  /// Undecided conditions that blocked a rewrite, in first-encounter order.
  const std::vector<const ATerm *> &blockedGuards() const { return Guards; }

  uint64_t steps() const { return Steps; }

private:
  const ATerm *norm(const ATerm *T);
  /// One rewrite attempt at the root (kids already normal); returns the
  /// replacement or null when no rule applies. The replacement's subterms
  /// may need renormalization.
  const ATerm *rewriteRoot(const ATerm *T);

  const ATerm *rewriteAdd(const ATerm *T);
  const ATerm *rewriteMul(const ATerm *T);
  const ATerm *rewriteBool(const ATerm *T);
  const ATerm *rewriteBuiltin(const ATerm *T);
  const ATerm *rewriteMinMax(const ATerm *T, bool IsMin);

  void blockOn(const ATerm *Guard);
  bool budget() {
    return ++Steps <= Limits.MaxSteps;
  }

  TermFactory &F;
  const FactCtx &Ctx;
  NormLimits Limits;
  std::unordered_map<const ATerm *, const ATerm *> Memo;
  std::vector<const ATerm *> Guards;
  std::unordered_set<const ATerm *> GuardSet;
  uint64_t Steps = 0;
  bool Blown = false;
};

} // namespace absint
} // namespace commcsl

#endif // COMMCSL_ABSINT_NORMALIZE_H
