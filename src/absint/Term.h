//===-- absint/Term.h - Interned terms for the differencing tier -*- C++ -*-===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hash-consed symbolic terms for the differencing abstract interpreter
/// (DESIGN §13). Terms are the normal-form currency of the tier: action and
/// abstraction expressions are translated into `ATerm`s, rewritten into a
/// canonical form, and compared by pointer. A few operators get dedicated
/// n-ary AC nodes (`Add`, `Mul`, `And`, `Or`); everything else reuses the
/// surface language's `BuiltinKind` under a generic application node, so the
/// rewrite rules can key on the same enum the concrete evaluator dispatches
/// on.
///
/// Ordering between terms is *structural* (never pointer- or
/// creation-order-based): the canonical form of an AC node sorts its
/// children with `ATerm::compare`, which makes normal forms reproducible
/// across factories — the certificate checker re-normalizes in a fresh
/// factory and must reach identical trees.
///
//===----------------------------------------------------------------------===//

#ifndef COMMCSL_ABSINT_TERM_H
#define COMMCSL_ABSINT_TERM_H

#include "lang/Expr.h"

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace commcsl {
namespace absint {

/// Term operator. `Bi` covers every `BuiltinKind` not given a dedicated
/// node; `Add`/`Mul`/`And`/`Or` are variadic and kept flattened + sorted.
enum class AOp : uint8_t {
  IntConst,
  BoolConst,
  StrConst,
  UnitConst,
  Sym, ///< free symbol (state, argument, or abstraction slot)
  Add, ///< n-ary, wrap-around int64 ring (matches vops::add)
  Mul, ///< n-ary; constant factor first when present
  Div,
  Mod,
  Eq, ///< binary, children in canonical order
  Lt,
  Le,
  Not,
  And, ///< n-ary
  Or,  ///< n-ary
  Ite,
  Bi, ///< generic builtin application (BuiltinKind payload)
};

class ATerm {
public:
  AOp K;
  BuiltinKind B = BuiltinKind::PairMk; ///< valid when K == Bi
  int64_t IntVal = 0;
  bool BoolVal = false;
  std::string Str; ///< Sym name / StrConst payload
  std::vector<const ATerm *> Kids;
  uint64_t Hash = 0;
  uint32_t Size = 1; ///< node count, used by ordering and budgets

  /// Total structural order: negative/zero/positive like strcmp. Comparing
  /// interned terms from the same factory can shortcut on pointer equality,
  /// but the order itself never depends on pointers.
  static int compare(const ATerm *A, const ATerm *B);

  bool isInt(int64_t V) const { return K == AOp::IntConst && IntVal == V; }
  bool isBool(bool V) const { return K == AOp::BoolConst && BoolVal == V; }

  /// Surface-ish rendering for diagnostics and tests.
  std::string str() const;
};

/// Hash-consing factory. Terms live as long as the factory; equal terms are
/// the same pointer. Construction does *not* normalize (see Normalize.h) —
/// but the AC constructors do flatten/sort so that even raw translation
/// output is canonical enough to hash-cons well.
class TermFactory {
public:
  TermFactory() = default;
  TermFactory(const TermFactory &) = delete;
  TermFactory &operator=(const TermFactory &) = delete;

  const ATerm *intConst(int64_t V);
  const ATerm *boolConst(bool V);
  const ATerm *strConst(const std::string &S);
  const ATerm *unitConst();
  const ATerm *sym(const std::string &Name);

  /// Generic constructor; callers that want canonical AC layout should use
  /// the helpers below (the normalizer relies on them).
  const ATerm *app(AOp K, std::vector<const ATerm *> Kids);
  const ATerm *bi(BuiltinKind B, std::vector<const ATerm *> Kids);

  const ATerm *add2(const ATerm *A, const ATerm *B);
  const ATerm *mul2(const ATerm *A, const ATerm *B);
  const ATerm *notT(const ATerm *A);
  const ATerm *eq(const ATerm *A, const ATerm *B);
  const ATerm *ite(const ATerm *C, const ATerm *T, const ATerm *E);

  /// Number of distinct terms interned so far.
  size_t size() const { return Terms.size(); }

private:
  struct Key {
    AOp K;
    BuiltinKind B;
    int64_t IntVal;
    bool BoolVal;
    std::string Str;
    std::vector<const ATerm *> Kids;
    bool operator==(const Key &O) const {
      return K == O.K && B == O.B && IntVal == O.IntVal &&
             BoolVal == O.BoolVal && Str == O.Str && Kids == O.Kids;
    }
  };
  struct KeyHash {
    size_t operator()(const Key &K) const;
  };

  const ATerm *intern(Key K);

  std::unordered_map<Key, std::unique_ptr<ATerm>, KeyHash> Terms;
};

} // namespace absint
} // namespace commcsl

#endif // COMMCSL_ABSINT_TERM_H
