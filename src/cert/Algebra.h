//===-- cert/Algebra.h - Syntactic commutative-family matching --*- C++ -*-===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The algebraic tier of the certificate: a syntactic matcher for resource
/// specifications whose Def. 3.1 validity follows from a known commutative
/// family, independent of any enumeration. Two families are recognized:
///
/// - **ConstantAbstraction**: the abstraction function does not mention the
///   state parameter. `alpha` is a constant, so both validity properties
///   hold for every state and argument trivially.
///
/// - **AcUpdate**: `alpha` is the identity (`Var(AlphaParam)`), every action
///   applies one shared associative-commutative operator `op(state, arg)`
///   (or `op(arg, state)`), and every action's precondition forces argument
///   agreement via a `low(arg)` atom. Then property (B) is the AC axiom
///   `op(op(v,x),y) = op(op(v,y),x)` and property (A) follows from the
///   forced `arg1 = arg2`.
///
/// Both the emitter and the independent checker run the same matcher; a
/// certificate claiming a family the checker cannot re-derive is rejected.
/// Specs with an `inv` clause or `history` clauses are never matched —
/// those add coherence properties the algebraic argument does not cover.
///
//===----------------------------------------------------------------------===//

#ifndef COMMCSL_CERT_ALGEBRA_H
#define COMMCSL_CERT_ALGEBRA_H

#include "cert/Cert.h"
#include "lang/Program.h"

namespace commcsl {
namespace cert {

struct FamilyMatch {
  Family Fam = Family::None;
  std::string Op; ///< AcUpdate: surface name of the shared operator
};

/// Matches \p Spec against the known families (deterministic, purely
/// syntactic — no evaluation).
FamilyMatch matchFamily(const ResourceSpecDecl &Spec);

} // namespace cert
} // namespace commcsl

#endif // COMMCSL_CERT_ALGEBRA_H
