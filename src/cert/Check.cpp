//===-- cert/Check.cpp - Independent certificate checker -------------------===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//

#include "cert/Check.h"

#include "cert/AbsCheck.h"
#include "cert/Algebra.h"
#include "cert/Evidence.h"

#include <functional>

using namespace commcsl;
using namespace commcsl::cert;

//===----------------------------------------------------------------------===//
// CheckSolver: the solver's decision procedure over pool ids
//===----------------------------------------------------------------------===//

uint32_t CheckSolver::find(uint32_t Id) {
  auto It = Parent.find(Id);
  if (It == Parent.end()) {
    Parent[Id] = Id;
    return Id;
  }
  if (It->second == Id)
    return Id;
  uint32_t Root = find(It->second);
  Parent[Id] = Root;
  return Root;
}

namespace {

bool isCommutativeNode(const CTerm &T) {
  if (T.K == CTerm::Kind::Binary)
    return T.BOp == BinaryOp::Add || T.BOp == BinaryOp::Mul ||
           T.BOp == BinaryOp::And || T.BOp == BinaryOp::Or ||
           T.BOp == BinaryOp::Eq;
  if (T.K == CTerm::Kind::Builtin)
    return T.BK == BuiltinKind::MsUnion || T.BK == BuiltinKind::SetUnion ||
           T.BK == BuiltinKind::SetInter || T.BK == BuiltinKind::Min ||
           T.BK == BuiltinKind::Max;
  return false;
}

bool isInjectiveCtor(const CTerm &T) {
  return T.K == CTerm::Kind::Builtin &&
         (T.BK == BuiltinKind::SeqAppend || T.BK == BuiltinKind::PairMk);
}

} // namespace

std::vector<uint64_t> CheckSolver::signatureOf(uint32_t Id) {
  const CTerm &T = Pool->at(Id);
  std::vector<uint64_t> Sig;
  Sig.reserve(T.Args.size() + 2);
  uint64_t Tag = static_cast<uint64_t>(T.K) << 32;
  switch (T.K) {
  case CTerm::Kind::Unary:
    Tag |= static_cast<uint64_t>(T.UOp);
    break;
  case CTerm::Kind::Binary:
    Tag |= static_cast<uint64_t>(T.BOp) << 8;
    break;
  case CTerm::Kind::Builtin:
    Tag |= static_cast<uint64_t>(T.BK) << 16;
    break;
  default:
    break;
  }
  Sig.push_back(Tag);
  for (uint32_t A : T.Args)
    Sig.push_back(find(A));
  if (isCommutativeNode(T) && Sig.size() == 3 && Sig[1] > Sig[2])
    std::swap(Sig[1], Sig[2]);
  return Sig;
}

void CheckSolver::registerTerm(uint32_t Id) {
  if (Registered.count(Id))
    return;
  Registered[Id] = true;
  Parent[Id] = Id;
  // Copy: interning below (intConst, merge) may grow the pool and
  // invalidate references into it.
  const CTerm T = Pool->at(Id);
  if (T.isConst())
    ClassConst[Id] = Id;
  if (isInjectiveCtor(T))
    CtorMembers[Id].push_back(Id);
  if (T.K == CTerm::Kind::Builtin &&
      (T.BK == BuiltinKind::Abs || T.BK == BuiltinKind::SeqLen ||
       T.BK == BuiltinKind::SetSize || T.BK == BuiltinKind::MsCard ||
       T.BK == BuiltinKind::MapSize || T.BK == BuiltinKind::MsCount))
    LeFacts.push_back({Pool->intConst(0), Id, 0});
  for (uint32_t A : T.Args) {
    registerTerm(A);
    Uses[find(A)].push_back(Id);
  }
  if (!T.Args.empty()) {
    std::vector<uint64_t> Sig = signatureOf(Id);
    auto It = Sigs.find(Sig);
    if (It == Sigs.end())
      Sigs.emplace(std::move(Sig), Id);
    else if (find(It->second) != find(Id))
      merge(Id, It->second);
  }
  if (T.K == CTerm::Kind::Builtin && T.BK == BuiltinKind::Ite) {
    auto CIt = ClassConst.find(find(T.Args[0]));
    if (CIt != ClassConst.end() &&
        Pool->at(CIt->second).ConstVal->isBool())
      merge(Id, Pool->at(CIt->second).ConstVal->getBool() ? T.Args[1]
                                                          : T.Args[2]);
  }
}

void CheckSolver::propagateClass(
    uint32_t Rep, std::vector<std::pair<uint32_t, uint32_t>> &Pending) {
  auto CIt = ClassConst.find(Rep);
  if (CIt != ClassConst.end() && Pool->at(CIt->second).ConstVal->isBool()) {
    bool Cond = Pool->at(CIt->second).ConstVal->getBool();
    auto UIt = Uses.find(Rep);
    if (UIt != Uses.end()) {
      for (uint32_t U : UIt->second) {
        const CTerm &TU = Pool->at(U);
        if (TU.K == CTerm::Kind::Builtin && TU.BK == BuiltinKind::Ite &&
            find(TU.Args[0]) == Rep)
          Pending.emplace_back(U, Cond ? TU.Args[1] : TU.Args[2]);
      }
    }
  }
  auto MIt = CtorMembers.find(Rep);
  if (MIt != CtorMembers.end() && MIt->second.size() > 1) {
    const std::vector<uint32_t> &Members = MIt->second;
    const CTerm &First = Pool->at(Members.front());
    for (size_t I = 1; I < Members.size(); ++I) {
      const CTerm &M = Pool->at(Members[I]);
      if (M.BK != First.BK)
        continue;
      for (size_t J = 0; J < First.Args.size(); ++J)
        if (find(First.Args[J]) != find(M.Args[J]))
          Pending.emplace_back(First.Args[J], M.Args[J]);
    }
  }
}

void CheckSolver::merge(uint32_t A, uint32_t B) {
  registerTerm(A);
  registerTerm(B);
  std::vector<std::pair<uint32_t, uint32_t>> Pending = {{A, B}};
  while (!Pending.empty()) {
    auto [X, Y] = Pending.back();
    Pending.pop_back();
    uint32_t Rx = find(X);
    uint32_t Ry = find(Y);
    if (Rx == Ry)
      continue;
    if (Uses[Rx].size() > Uses[Ry].size())
      std::swap(Rx, Ry);
    Parent[Rx] = Ry;
    auto CxIt = ClassConst.find(Rx);
    auto CyIt = ClassConst.find(Ry);
    if (CxIt != ClassConst.end()) {
      if (CyIt != ClassConst.end()) {
        if (!Value::equal(Pool->at(CxIt->second).ConstVal,
                          Pool->at(CyIt->second).ConstVal))
          Contradiction = true;
      } else {
        ClassConst[Ry] = CxIt->second;
      }
    }
    auto MxIt = CtorMembers.find(Rx);
    if (MxIt != CtorMembers.end()) {
      auto &Dst = CtorMembers[Ry];
      Dst.insert(Dst.end(), MxIt->second.begin(), MxIt->second.end());
      CtorMembers.erase(Rx);
    }
    std::vector<uint32_t> Moved = std::move(Uses[Rx]);
    Uses.erase(Rx);
    for (uint32_t U : Moved) {
      Uses[Ry].push_back(U);
      std::vector<uint64_t> Sig = signatureOf(U);
      auto It = Sigs.find(Sig);
      if (It == Sigs.end())
        Sigs.emplace(std::move(Sig), U);
      else if (find(It->second) != find(U))
        Pending.emplace_back(U, It->second);
    }
    propagateClass(Ry, Pending);
  }
}

void CheckSolver::assumeEq(uint32_t A, uint32_t B) {
  registerTerm(A);
  registerTerm(B);
  merge(A, B);
}

void CheckSolver::assumeLe(uint32_t A, uint32_t B, int64_t Bias) {
  registerTerm(A);
  registerTerm(B);
  LeFacts.push_back({A, B, Bias});
}

void CheckSolver::assumeTrue(uint32_t B) {
  // Copy: boolConst interning below may grow the pool.
  const CTerm T = Pool->at(B);
  if (T.isTrue())
    return;
  if (T.isFalse()) {
    Contradiction = true;
    return;
  }
  registerTerm(B);
  merge(B, Pool->boolConst(true));

  if (T.K == CTerm::Kind::Binary) {
    if (T.BOp == BinaryOp::And) {
      assumeTrue(T.Args[0]);
      assumeTrue(T.Args[1]);
      return;
    }
    if (T.BOp == BinaryOp::Eq) {
      assumeEq(T.Args[0], T.Args[1]);
      return;
    }
    if (T.BOp == BinaryOp::Le) {
      LeFacts.push_back({T.Args[0], T.Args[1], 0});
      return;
    }
  }
  if (T.K == CTerm::Kind::Unary && T.UOp == UnaryOp::Not) {
    uint32_t Inner = T.Args[0];
    registerTerm(Inner);
    const CTerm TI = Pool->at(Inner);
    if (TI.K == CTerm::Kind::Binary && TI.BOp == BinaryOp::Eq)
      Disequals.emplace_back(TI.Args[0], TI.Args[1]);
    if (TI.K == CTerm::Kind::Binary && TI.BOp == BinaryOp::Le) {
      // !(a <= b)  ==>  b + 1 <= a  (integers).
      LeFacts.push_back({TI.Args[1], TI.Args[0], 1});
    }
    merge(Inner, Pool->boolConst(false));
    return;
  }
}

void CheckSolver::LinForm::addScaled(const LinForm &O, int64_t K) {
  Const += K * O.Const;
  for (const auto &[Id, C] : O.Coeffs) {
    int64_t &Slot = Coeffs[Id];
    Slot += K * C;
    if (Slot == 0)
      Coeffs.erase(Id);
  }
}

CheckSolver::LinForm CheckSolver::linearize(uint32_t Id) {
  LinForm F;
  const CTerm &T = Pool->at(Id);
  if (T.isConst() && T.ConstVal->isInt()) {
    F.Const = T.ConstVal->getInt();
    return F;
  }
  if (T.K == CTerm::Kind::Binary && T.BOp == BinaryOp::Add) {
    F = linearize(T.Args[0]);
    F.addScaled(linearize(T.Args[1]), 1);
    return F;
  }
  if (T.K == CTerm::Kind::Binary && T.BOp == BinaryOp::Mul) {
    uint32_t L = T.Args[0], R = T.Args[1];
    const CTerm &TL = Pool->at(L);
    const CTerm &TR = Pool->at(R);
    if (TL.isConst() && TL.ConstVal->isInt()) {
      F = linearize(R);
      LinForm Out;
      Out.addScaled(F, TL.ConstVal->getInt());
      return Out;
    }
    if (TR.isConst() && TR.ConstVal->isInt()) {
      F = linearize(L);
      LinForm Out;
      Out.addScaled(F, TR.ConstVal->getInt());
      return Out;
    }
  }
  registerTerm(Id);
  uint32_t Rep = find(Id);
  auto It = ClassConst.find(Rep);
  if (It != ClassConst.end() && Pool->at(It->second).ConstVal->isInt()) {
    F.Const = Pool->at(It->second).ConstVal->getInt();
    return F;
  }
  F.Coeffs[Rep] = 1;
  return F;
}

bool CheckSolver::leImplied(uint32_t A, uint32_t B, int64_t Bias) {
  // Goal: 0 <= B - (A + Bias).
  LinForm Goal = linearize(B);
  Goal.addScaled(linearize(A), -1);
  Goal.Const -= Bias;
  if (Goal.isConst())
    return Goal.Const >= 0;

  std::vector<LinForm> Facts;
  Facts.reserve(LeFacts.size());
  for (const LeFact &LF : LeFacts) {
    LinForm F = linearize(LF.Y);
    F.addScaled(linearize(LF.X), -1); // F - Bias >= 0
    F.Const -= LF.Bias;
    Facts.push_back(std::move(F));
  }
  for (const LinForm &F : Facts) {
    LinForm D = Goal;
    D.addScaled(F, -1);
    if (D.isConst() && D.Const >= 0)
      return true;
  }
  for (size_t I = 0; I < Facts.size(); ++I) {
    for (size_t J = I; J < Facts.size(); ++J) {
      LinForm D = Goal;
      D.addScaled(Facts[I], -1);
      D.addScaled(Facts[J], -1);
      if (D.isConst() && D.Const >= 0)
        return true;
    }
  }
  return false;
}

uint32_t CheckSolver::findUndecidedIteCond(uint32_t Id, unsigned FuelDepth) {
  if (FuelDepth == 0)
    return NoTerm;
  // Copy: registerTerm below may intern and grow the pool.
  const CTerm T = Pool->at(Id);
  if (T.K == CTerm::Kind::Builtin && T.BK == BuiltinKind::Ite) {
    registerTerm(Id);
    auto CIt = ClassConst.find(find(T.Args[0]));
    if (CIt == ClassConst.end() || !Pool->at(CIt->second).ConstVal->isBool())
      return T.Args[0];
  }
  for (uint32_t A : T.Args)
    if (uint32_t C = findUndecidedIteCond(A, FuelDepth - 1); C != NoTerm)
      return C;
  return NoTerm;
}

bool CheckSolver::caseSplitEq(uint32_t A, uint32_t B, unsigned Depth) {
  if (Depth == 0)
    return false;
  uint32_t Cond = findUndecidedIteCond(A, 8);
  if (Cond == NoTerm)
    Cond = findUndecidedIteCond(B, 8);
  if (Cond == NoTerm)
    return false;
  CheckSolver Pos = *this;
  Pos.assumeTrue(Cond);
  if (!Pos.provesEqCore(A, B) && !Pos.caseSplitEq(A, B, Depth - 1))
    return false;
  CheckSolver Neg = *this;
  Neg.assumeTrue(Pool->mkNot(Cond));
  return Neg.provesEqCore(A, B) || Neg.caseSplitEq(A, B, Depth - 1);
}

bool CheckSolver::caseSplitTrue(uint32_t B, unsigned Depth) {
  if (Depth == 0)
    return false;
  uint32_t Cond = findUndecidedIteCond(B, 8);
  if (Cond == NoTerm)
    return false;
  CheckSolver Pos = *this;
  Pos.assumeTrue(Cond);
  if (!Pos.provesTrueCore(B) && !Pos.caseSplitTrue(B, Depth - 1))
    return false;
  CheckSolver Neg = *this;
  Neg.assumeTrue(Pool->mkNot(Cond));
  return Neg.provesTrueCore(B) || Neg.caseSplitTrue(B, Depth - 1);
}

namespace {

int acOpKey(const CTerm &T) {
  if (T.K == CTerm::Kind::Binary) {
    switch (T.BOp) {
    case BinaryOp::Add:
      return 1;
    case BinaryOp::Mul:
      return 2;
    case BinaryOp::And:
      return 3;
    case BinaryOp::Or:
      return 4;
    default:
      return -1;
    }
  }
  if (T.K == CTerm::Kind::Builtin) {
    switch (T.BK) {
    case BuiltinKind::MsUnion:
      return 5;
    case BuiltinKind::SetUnion:
      return 6;
    case BuiltinKind::MsAdd:
      return 7;
    case BuiltinKind::SetAdd:
      return 8;
    default: // SeqConcat is NOT commutative; excluded
      return -1;
    }
  }
  return -1;
}

void flattenAC(const TermPool &Pool, uint32_t Id, int Key,
               std::vector<uint32_t> &Out) {
  const CTerm &T = Pool.at(Id);
  if (acOpKey(T) == Key) {
    flattenAC(Pool, T.Args[0], Key, Out);
    flattenAC(Pool, T.Args[1], Key, Out);
    return;
  }
  Out.push_back(Id);
}

} // namespace

bool CheckSolver::acChainsEq(uint32_t A, uint32_t B, unsigned Depth) {
  if (Depth == 0)
    return false;
  int Key = acOpKey(Pool->at(A));
  if (Key < 0 || acOpKey(Pool->at(B)) != Key)
    return false;
  std::vector<uint32_t> Xs, Ys;
  flattenAC(*Pool, A, Key, Xs);
  flattenAC(*Pool, B, Key, Ys);
  if (Xs.size() != Ys.size() || Xs.size() > 6)
    return false;
  std::vector<bool> Used(Ys.size(), false);
  std::function<bool(size_t)> Match = [&](size_t I) -> bool {
    if (I == Xs.size())
      return true;
    for (size_t J = 0; J < Ys.size(); ++J) {
      if (Used[J])
        continue;
      if ((Key == 7 || Key == 8) && ((I == 0) != (J == 0)))
        continue; // bases must align
      bool Eq = false;
      registerTerm(Xs[I]);
      registerTerm(Ys[J]);
      if (Xs[I] == Ys[J] || find(Xs[I]) == find(Ys[J]))
        Eq = true;
      else
        Eq = acChainsEq(Xs[I], Ys[J], Depth - 1);
      if (!Eq)
        continue;
      Used[J] = true;
      if (Match(I + 1))
        return true;
      Used[J] = false;
    }
    return false;
  };
  return Match(0);
}

bool CheckSolver::provesEqCore(uint32_t A, uint32_t B) {
  if (Contradiction)
    return true;
  if (A == B)
    return true;
  registerTerm(A);
  registerTerm(B);
  if (find(A) == find(B))
    return true;
  if (leImplied(A, B, 0) && leImplied(B, A, 0))
    return true;
  if (acChainsEq(A, B, 4))
    return true;
  return false;
}

bool CheckSolver::provesEq(uint32_t A, uint32_t B) {
  if (provesEqCore(A, B))
    return true;
  return caseSplitEq(A, B, 4);
}

bool CheckSolver::provesTrue(uint32_t B) {
  if (provesTrueCore(B))
    return true;
  return caseSplitTrue(B, 4);
}

bool CheckSolver::provesTrueCore(uint32_t B) {
  if (Contradiction)
    return true;
  // Copy: the recursive provesEqCore/registerTerm calls below may intern
  // and grow the pool.
  const CTerm T = Pool->at(B);
  if (T.isTrue())
    return true;
  if (T.isFalse())
    return false;
  if (T.K == CTerm::Kind::Binary) {
    if (T.BOp == BinaryOp::And)
      return provesTrueCore(T.Args[0]) && provesTrueCore(T.Args[1]);
    if (T.BOp == BinaryOp::Or) {
      if (provesTrueCore(T.Args[0]) || provesTrueCore(T.Args[1]))
        return true;
      // fall through to propositional lookup
    }
    if (T.BOp == BinaryOp::Eq && provesEqCore(T.Args[0], T.Args[1]))
      return true;
    if (T.BOp == BinaryOp::Le && leImplied(T.Args[0], T.Args[1], 0))
      return true;
  }
  if (T.K == CTerm::Kind::Unary && T.UOp == UnaryOp::Not) {
    uint32_t Inner = T.Args[0];
    registerTerm(Inner);
    registerTerm(Pool->boolConst(false));
    if (find(Inner) == find(Pool->boolConst(false)))
      return true;
    const CTerm TI = Pool->at(Inner);
    if (TI.K == CTerm::Kind::Binary && TI.BOp == BinaryOp::Eq) {
      uint32_t X = TI.Args[0], Y = TI.Args[1];
      registerTerm(X);
      registerTerm(Y);
      uint32_t Rx = find(X), Ry = find(Y);
      auto Cx = ClassConst.find(Rx);
      auto Cy = ClassConst.find(Ry);
      if (Cx != ClassConst.end() && Cy != ClassConst.end() &&
          !Value::equal(Pool->at(Cx->second).ConstVal,
                        Pool->at(Cy->second).ConstVal))
        return true;
      for (const auto &[P, Q] : Disequals) {
        uint32_t Rp = find(P), Rq = find(Q);
        if ((Rp == Rx && Rq == Ry) || (Rp == Ry && Rq == Rx))
          return true;
      }
      // Strict bound separation: x + 1 <= y or y + 1 <= x.
      if (leImplied(X, Y, 1) || leImplied(Y, X, 1))
        return true;
    }
    if (TI.K == CTerm::Kind::Binary && TI.BOp == BinaryOp::Le) {
      // !(a <= b)  <=>  b + 1 <= a.
      if (leImplied(TI.Args[1], TI.Args[0], 1))
        return true;
    }
    return false;
  }
  registerTerm(B);
  registerTerm(Pool->boolConst(true));
  return find(B) == find(Pool->boolConst(true));
}

//===----------------------------------------------------------------------===//
// Document-level checking rules
//===----------------------------------------------------------------------===//

namespace {

struct Failure {
  CheckResult &R;
  bool fail(const std::string &Msg) {
    if (R.Ok) {
      R.Ok = false;
      R.Error = Msg;
    }
    return false;
  }
};

bool checkSpecUnit(const CertSpecUnit &S, const ResourceSpecDecl &Decl,
                   const Program &Prog, Failure &F) {
  std::string Where = "spec '" + S.Name + "': ";
  if (S.ScopeLo != Decl.ScopeIntLo || S.ScopeHi != Decl.ScopeIntHi ||
      S.ScopeBound != Decl.ScopeCollectionBound)
    return F.fail(Where + "recorded scope differs from the declaration");
  if (S.StatesCap < MinStatesCap || S.ArgsCap < MinArgsCap)
    return F.fail(Where + "universe caps below the checker floor");

  FamilyMatch Fam = matchFamily(Decl);
  if (S.Fam != Fam.Fam || (S.Fam == Family::AcUpdate && S.FamilyOp != Fam.Op))
    return F.fail(Where + "claimed algebraic family does not re-derive");

  SpecEvidence Ev = computeSpecEvidence(Decl, &Prog, S.StatesCap, S.ArgsCap,
                                        SampleDraws);
  if (Ev.NumStates != S.NumStates || Ev.NumAlphaPairs != S.NumAlphaPairs)
    return F.fail(Where + "recomputed state universe differs");
  if (Ev.ArgCounts != S.ArgCounts)
    return F.fail(Where + "recomputed argument universe differs");
  if (Ev.SampleCount != S.SampleCount || Ev.SampleDigest != S.SampleDigest)
    return F.fail(Where + "recomputed sample digest differs");

  if (S.Valid) {
    if (S.CE)
      return F.fail(Where + "valid unit carries a counterexample");
    if (!Ev.AllSamplesHold)
      return F.fail(Where + "claimed valid but a recomputed sample violates "
                            "the property");
  } else {
    if (!S.CE)
      return F.fail(Where + "invalid unit has no counterexample");
    if (!ceViolates(Decl, &Prog, *S.CE))
      return F.fail(Where + "counterexample does not re-execute as a "
                            "violation");
    if (S.Absint && S.Absint->Unbounded)
      return F.fail(Where + "invalid unit claims unbounded validity");
  }
  if (S.Absint) {
    std::string AbsError;
    if (!checkAbsintSection(*S.Absint, Decl, Prog, AbsError))
      return F.fail(Where + AbsError);
  }
  return true;
}

bool checkProcUnit(const CertProcUnit &P, Failure &F) {
  std::string Where = "proc '" + P.Name + "': ";
  // The replay interns case-split negations into the pool; work on a copy
  // so the certificate object itself stays untouched.
  TermPool Pool = P.Pool;
  bool AllObOk = true;
  for (const CertObligation &Ob : P.Obligations) {
    bool AllProved = true;
    for (size_t QI = 0; QI < Ob.Queries.size(); ++QI) {
      const CertQuery &Q = Ob.Queries[QI];
      CheckSolver S(Pool);
      for (uint32_t FI : Q.Ctx) {
        const CertFact &Fact = P.Facts[FI];
        switch (Fact.K) {
        case CertFact::Kind::Eq:
          S.assumeEq(Fact.A, Fact.B);
          break;
        case CertFact::Kind::True:
          S.assumeTrue(Fact.A);
          break;
        case CertFact::Kind::Le:
          S.assumeLe(Fact.A, Fact.B, Fact.Bias);
          break;
        }
      }
      bool Got = Q.IsEq ? S.provesEq(Q.A, Q.B) : S.provesTrue(Q.A);
      if (Got != Q.Proved)
        return F.fail(Where + "obligation '" + Ob.Label + "' query " +
                      std::to_string(QI) + " replays as " +
                      (Got ? "proved" : "refuted") + " but was recorded " +
                      (Q.Proved ? "proved" : "refuted"));
      AllProved &= Q.Proved;
    }
    if (Ob.Ok != AllProved)
      return F.fail(Where + "obligation '" + Ob.Label +
                    "' status contradicts its queries");
    AllObOk &= Ob.Ok;
  }
  bool ExpectOk = AllObOk && !P.StructuralFail;
  if (P.Ok != ExpectOk)
    return F.fail(Where + "proc status contradicts its obligations");
  return true;
}

} // namespace

CheckResult cert::checkCertificate(const Certificate &C, const Program &Prog) {
  CheckResult R;
  Failure F{R};
  uint64_t Digest = fnv64(Prog.str());
  if (C.ProgramDigest != Digest) {
    F.fail("program digest mismatch (certificate was issued for a different "
           "program)");
    return R;
  }
  if (C.Specs.size() != Prog.Specs.size()) {
    F.fail("certificate covers " + std::to_string(C.Specs.size()) +
           " specs, program declares " + std::to_string(Prog.Specs.size()));
    return R;
  }
  for (size_t I = 0; I < C.Specs.size(); ++I) {
    if (C.Specs[I].Name != Prog.Specs[I].Name) {
      F.fail("spec unit " + std::to_string(I) + " names '" + C.Specs[I].Name +
             "', program declares '" + Prog.Specs[I].Name + "'");
      return R;
    }
    if (!checkSpecUnit(C.Specs[I], Prog.Specs[I], Prog, F))
      return R;
  }
  if (C.Procs.size() != Prog.Procs.size()) {
    F.fail("certificate covers " + std::to_string(C.Procs.size()) +
           " procs, program declares " + std::to_string(Prog.Procs.size()));
    return R;
  }
  for (size_t I = 0; I < C.Procs.size(); ++I) {
    if (C.Procs[I].Name != Prog.Procs[I].Name) {
      F.fail("proc unit " + std::to_string(I) + " names '" + C.Procs[I].Name +
             "', program declares '" + Prog.Procs[I].Name + "'");
      return R;
    }
    if (!checkProcUnit(C.Procs[I], F))
      return R;
  }
  bool AllSpecs = true, AllProcs = true;
  for (const CertSpecUnit &S : C.Specs)
    AllSpecs &= S.Valid;
  for (const CertProcUnit &P : C.Procs)
    AllProcs &= P.Ok;
  bool Expect = AllSpecs && AllProcs;
  if (C.Verified != Expect)
    F.fail(std::string("verdict '") + (C.Verified ? "verified" : "rejected") +
           "' contradicts the units");
  return R;
}
