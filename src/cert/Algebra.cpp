//===-- cert/Algebra.cpp - Syntactic commutative-family matching -----------===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//

#include "cert/Algebra.h"

#include <algorithm>

using namespace commcsl;
using namespace commcsl::cert;

namespace {

bool mentions(const ExprRef &E, const std::string &Name) {
  if (!E)
    return false;
  std::vector<std::string> Free;
  E->freeVars(Free);
  return std::find(Free.begin(), Free.end(), Name) != Free.end();
}

bool isVar(const ExprRef &E, const std::string &Name) {
  return E && E->Kind == ExprKind::Var && E->Name == Name;
}

/// `low(Var(ArgName))` with no condition: the atom that forces argument
/// agreement between the two executions.
bool forcesArgAgreement(const ActionDecl &A) {
  for (const ContractAtom &Atom : A.Pre)
    if (Atom.AtomKind == ContractAtom::Kind::Low && !Atom.Cond &&
        isVar(Atom.E, A.ArgName))
      return true;
  return false;
}

/// If \p A's apply expression is one shared-operator update `op(state, arg)`
/// / `op(arg, state)` for an AC operator, returns its surface name.
const char *acUpdateOp(const ActionDecl &A) {
  const ExprRef &E = A.Apply;
  if (!E)
    return nullptr;
  if (E->Kind == ExprKind::Binary && E->Args.size() == 2) {
    switch (E->BOp) {
    case BinaryOp::Add:
    case BinaryOp::Mul:
    case BinaryOp::And:
    case BinaryOp::Or:
      break;
    default:
      return nullptr;
    }
    bool Fwd = isVar(E->Args[0], A.StateName) && isVar(E->Args[1], A.ArgName);
    bool Rev = isVar(E->Args[0], A.ArgName) && isVar(E->Args[1], A.StateName);
    return (Fwd || Rev) ? binaryOpName(E->BOp) : nullptr;
  }
  if (E->Kind == ExprKind::Builtin && E->Args.size() == 2) {
    bool Fwd = isVar(E->Args[0], A.StateName) && isVar(E->Args[1], A.ArgName);
    bool Rev = isVar(E->Args[0], A.ArgName) && isVar(E->Args[1], A.StateName);
    switch (E->Builtin) {
    // Symmetric AC operators: either operand order.
    case BuiltinKind::SetUnion:
    case BuiltinKind::SetInter:
    case BuiltinKind::MsUnion:
    case BuiltinKind::Min:
    case BuiltinKind::Max:
      return (Fwd || Rev) ? builtinName(E->Builtin) : nullptr;
    // Positional insertions: the state must be the base operand, but
    // insertions still commute with each other.
    case BuiltinKind::SetAdd:
    case BuiltinKind::MsAdd:
      return Fwd ? builtinName(E->Builtin) : nullptr;
    default:
      return nullptr;
    }
  }
  return nullptr;
}

} // namespace

FamilyMatch cert::matchFamily(const ResourceSpecDecl &Spec) {
  FamilyMatch M;
  // An inv / history clause adds coherence properties neither algebraic
  // argument covers.
  if (Spec.Inv)
    return M;
  for (const ActionDecl &A : Spec.Actions)
    if (A.History)
      return M;

  if (!mentions(Spec.Alpha, Spec.AlphaParam)) {
    M.Fam = Family::ConstantAbstraction;
    return M;
  }

  if (!isVar(Spec.Alpha, Spec.AlphaParam) || Spec.Actions.empty())
    return M;
  const char *Shared = nullptr;
  for (const ActionDecl &A : Spec.Actions) {
    const char *Op = acUpdateOp(A);
    if (!Op || !forcesArgAgreement(A))
      return M;
    if (Shared && std::string(Shared) != Op)
      return M;
    Shared = Op;
  }
  M.Fam = Family::AcUpdate;
  M.Op = Shared;
  return M;
}
