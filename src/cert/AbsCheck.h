//===-- cert/AbsCheck.h - Unbounded-validity evidence checker ---*- C++ -*-===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Independent re-checking of a certificate's differencing-tier evidence
/// (DESIGN §13). The checker never re-runs the analysis' split *search* —
/// it re-derives the inputs and replays the recorded proofs:
///
///  1. **Templates re-derive.** alpha is translated and normalized in a
///     fresh term factory; each recorded update template `U_a` must equal
///     (structurally) the residue of normalizing `alpha(f_a(s, arg))` and
///     substituting the state-dependent alpha components by their slots. A
///     certificate recording a template the program does not induce — the
///     seeded-unsound fault, or any tampering — fails here.
///  2. **Trees replay.** Every recorded obligation is rebuilt from the AST
///     (A' from the re-derived template and the relational precondition,
///     B1 from the two action bodies and the unary preconditions) and its
///     split tree is replayed guard by guard: each feasible branch must
///     close by normal-form equality or a contradictory fact store.
///  3. **The unbounded claim is inductive.** `unbounded` additionally
///     requires a replayed A' proof for every action and a replayed B1
///     proof for every relevant pair, with no history/invariant clauses
///     (those are only simulation-checked, never proved symbolically).
///
/// Trusted base: the shared equational core (absint's normalizer and fact
/// domains) — shared deliberately, so the checker and analyzer cannot
/// drift — plus expression translation. Everything the *analysis* chose
/// (factorizations, splits, budgets) is re-validated, not trusted.
///
//===----------------------------------------------------------------------===//

#ifndef COMMCSL_CERT_ABSCHECK_H
#define COMMCSL_CERT_ABSCHECK_H

#include "cert/Cert.h"
#include "lang/Program.h"

namespace commcsl {
namespace cert {

/// Re-checks one spec unit's differencing-tier section against the program
/// AST. On failure returns false and sets \p Error to the first failing
/// step (prefixed with the obligation it belongs to).
bool checkAbsintSection(const CertAbsSection &S, const ResourceSpecDecl &Decl,
                        const Program &Prog, std::string &Error);

} // namespace cert
} // namespace commcsl

#endif // COMMCSL_CERT_ABSCHECK_H
