//===-- cert/Cert.cpp - Certificate model, printer, parser -----------------===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//

#include "cert/Cert.h"

#include <cinttypes>
#include <cstdio>
#include <cstring>

using namespace commcsl;
using namespace commcsl::cert;

//===----------------------------------------------------------------------===//
// Term pool
//===----------------------------------------------------------------------===//

namespace {

uint64_t hashTerm(const CTerm &T) {
  uint64_t H = 0xcbf29ce484222325ULL;
  auto Mix = [&H](uint64_t V) {
    H ^= V;
    H *= 0x100000001b3ULL;
  };
  Mix(static_cast<uint64_t>(T.K));
  switch (T.K) {
  case CTerm::Kind::Const:
    // The canonical rendering is the platform-stable identity of a value.
    H = fnv64(printValue(T.ConstVal), H);
    break;
  case CTerm::Kind::Sym:
    Mix(T.SymId);
    break;
  case CTerm::Kind::Unary:
    Mix(static_cast<uint64_t>(T.UOp));
    break;
  case CTerm::Kind::Binary:
    Mix(static_cast<uint64_t>(T.BOp));
    break;
  case CTerm::Kind::Builtin:
    Mix(static_cast<uint64_t>(T.BK));
    break;
  }
  for (uint32_t A : T.Args)
    Mix(A);
  return H;
}

bool sameTerm(const CTerm &A, const CTerm &B) {
  if (A.K != B.K || A.Args != B.Args)
    return false;
  switch (A.K) {
  case CTerm::Kind::Const:
    return Value::equal(A.ConstVal, B.ConstVal);
  case CTerm::Kind::Sym:
    return A.SymId == B.SymId;
  case CTerm::Kind::Unary:
    return A.UOp == B.UOp;
  case CTerm::Kind::Binary:
    return A.BOp == B.BOp;
  case CTerm::Kind::Builtin:
    return A.BK == B.BK;
  }
  return false;
}

} // namespace

uint32_t TermPool::intern(CTerm T) {
  uint64_t H = hashTerm(T);
  std::vector<uint32_t> &Bucket = Buckets[H];
  for (uint32_t Id : Bucket)
    if (sameTerm(Terms[Id], T))
      return Id;
  uint32_t Id = static_cast<uint32_t>(Terms.size());
  Terms.push_back(std::move(T));
  Bucket.push_back(Id);
  return Id;
}

uint32_t TermPool::constant(ValueRef V) {
  CTerm T;
  T.K = CTerm::Kind::Const;
  T.ConstVal = std::move(V);
  return intern(std::move(T));
}

uint32_t TermPool::intConst(int64_t V) { return constant(ValueFactory::intV(V)); }
uint32_t TermPool::boolConst(bool V) { return constant(ValueFactory::boolV(V)); }

uint32_t TermPool::sym(uint32_t SymId, std::string Name) {
  CTerm T;
  T.K = CTerm::Kind::Sym;
  T.SymId = SymId;
  T.SymName = std::move(Name);
  return intern(std::move(T));
}

uint32_t TermPool::unary(UnaryOp Op, uint32_t A) {
  CTerm T;
  T.K = CTerm::Kind::Unary;
  T.UOp = Op;
  T.Args = {A};
  return intern(std::move(T));
}

uint32_t TermPool::binary(BinaryOp Op, uint32_t A, uint32_t B) {
  CTerm T;
  T.K = CTerm::Kind::Binary;
  T.BOp = Op;
  T.Args = {A, B};
  return intern(std::move(T));
}

uint32_t TermPool::builtin(BuiltinKind BK, std::vector<uint32_t> Args) {
  CTerm T;
  T.K = CTerm::Kind::Builtin;
  T.BK = BK;
  T.Args = std::move(Args);
  return intern(std::move(T));
}

uint32_t TermPool::mkNot(uint32_t A) {
  const CTerm &T = at(A);
  if (T.isConst() && T.ConstVal->isBool())
    return boolConst(!T.ConstVal->getBool());
  if (T.K == CTerm::Kind::Unary && T.UOp == UnaryOp::Not)
    return T.Args[0];
  return unary(UnaryOp::Not, A);
}

//===----------------------------------------------------------------------===//
// Printer
//===----------------------------------------------------------------------===//

namespace {

void escapeInto(const std::string &S, std::string &Out) {
  Out += '"';
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    default:
      Out += C;
    }
  }
  Out += '"';
}

std::string quoted(const std::string &S) {
  std::string Out;
  escapeInto(S, Out);
  return Out;
}

std::string hex64(uint64_t V) {
  char Buf[24];
  std::snprintf(Buf, sizeof(Buf), "#%016" PRIx64, V);
  return Buf;
}

void printValueInto(const ValueRef &V, std::string &Out) {
  if (!V) {
    Out += "none";
    return;
  }
  switch (V->kind()) {
  case ValueKind::Unit:
    Out += "un";
    return;
  case ValueKind::Int:
    Out += "(i " + std::to_string(V->getInt()) + ")";
    return;
  case ValueKind::Bool:
    Out += V->getBool() ? "tt" : "ff";
    return;
  case ValueKind::String:
    Out += "(str ";
    escapeInto(V->getString(), Out);
    Out += ')';
    return;
  case ValueKind::Pair:
  case ValueKind::Seq:
  case ValueKind::Set:
  case ValueKind::Multiset: {
    switch (V->kind()) {
    case ValueKind::Pair:
      Out += "(p";
      break;
    case ValueKind::Seq:
      Out += "(sq";
      break;
    case ValueKind::Set:
      Out += "(st";
      break;
    default:
      Out += "(ms";
      break;
    }
    for (const ValueRef &E : V->elems()) {
      Out += ' ';
      printValueInto(E, Out);
    }
    Out += ')';
    return;
  }
  case ValueKind::Map: {
    Out += "(mp";
    for (const auto &[K, Val] : V->mapEntries()) {
      Out += " (";
      printValueInto(K, Out);
      Out += ' ';
      printValueInto(Val, Out);
      Out += ')';
    }
    Out += ')';
    return;
  }
  }
}

void printTermInto(const CTerm &T, std::string &Out) {
  switch (T.K) {
  case CTerm::Kind::Const:
    Out += "(c ";
    printValueInto(T.ConstVal, Out);
    Out += ')';
    return;
  case CTerm::Kind::Sym:
    Out += "(s " + std::to_string(T.SymId) + ' ' + quoted(T.SymName) + ')';
    return;
  case CTerm::Kind::Unary:
    Out += std::string("(u ") + unaryOpName(T.UOp) + ' ' +
           std::to_string(T.Args[0]) + ')';
    return;
  case CTerm::Kind::Binary:
    Out += std::string("(b ") + binaryOpName(T.BOp) + ' ' +
           std::to_string(T.Args[0]) + ' ' + std::to_string(T.Args[1]) + ')';
    return;
  case CTerm::Kind::Builtin: {
    Out += std::string("(ap ") + builtinName(T.BK);
    for (uint32_t A : T.Args)
      Out += ' ' + std::to_string(A);
    Out += ')';
    return;
  }
  }
}

const char *familyName(Family F) {
  switch (F) {
  case Family::None:
    return "none";
  case Family::ConstantAbstraction:
    return "constant-abstraction";
  case Family::AcUpdate:
    return "ac-update";
  }
  return "none";
}

const char *ceName(CertCE::Prop P) {
  switch (P) {
  case CertCE::Prop::Precondition:
    return "pre";
  case CertCE::Prop::Commutativity:
    return "comm";
  case CertCE::Prop::History:
    return "hist";
  case CertCE::Prop::Invariant:
    return "inv";
  }
  return "comm";
}

void printSpecInto(const CertSpecUnit &S, std::string &Out) {
  Out += " (spec " + quoted(S.Name) + " (status " +
         (S.Valid ? "valid" : "invalid") + ")\n";
  Out += "  (scope " + std::to_string(S.ScopeLo) + ' ' +
         std::to_string(S.ScopeHi) + ' ' + std::to_string(S.ScopeBound) +
         ")\n";
  Out += "  (caps " + std::to_string(S.StatesCap) + ' ' +
         std::to_string(S.ArgsCap) + ")\n";
  Out += "  (universe " + std::to_string(S.NumStates) + ' ' +
         std::to_string(S.NumAlphaPairs) + " (args";
  for (const auto &[Name, N] : S.ArgCounts)
    Out += " (" + quoted(Name) + ' ' + std::to_string(N) + ')';
  Out += "))\n";
  Out += "  (samples " + std::to_string(S.SampleCount) + ' ' +
         hex64(S.SampleDigest) + ")\n";
  Out += "  (family ";
  if (S.Fam == Family::AcUpdate)
    Out += std::string("(ac-update ") + quoted(S.FamilyOp) + ')';
  else
    Out += familyName(S.Fam);
  Out += ")\n";
  Out += "  (checks " + std::to_string(S.BoundedChecks) + ' ' +
         std::to_string(S.RandomChecks) + ")\n";
  if (S.Absint) {
    const CertAbsSection &A = *S.Absint;
    Out += std::string("  (absint ") + (A.Unbounded ? "unbounded" : "partial") +
           " (comps " + std::to_string(A.NumComps) + ")\n";
    for (const auto &[Action, U] : A.Templates)
      Out += "   (u " + quoted(Action) + ' ' + quoted(U) + ")\n";
    for (const CertAbsOb &Ob : A.Obligations) {
      Out += Ob.IsPre ? "   (pre " + quoted(Ob.ActionA)
                      : "   (comm " + quoted(Ob.ActionA) + ' ' +
                            quoted(Ob.ActionB);
      Out += " (tree";
      for (const std::string &G : Ob.Tree)
        Out += ' ' + quoted(G);
      Out += "))\n";
    }
    Out += "  )\n";
  }
  if (S.CE) {
    Out += std::string("  (ce ") + ceName(S.CE->P) + ' ' +
           quoted(S.CE->ActionA) + ' ' + quoted(S.CE->ActionB);
    for (const ValueRef *V :
         {&S.CE->V1, &S.CE->V2, &S.CE->Arg1, &S.CE->Arg2, &S.CE->AlphaLeft,
          &S.CE->AlphaRight}) {
      Out += ' ';
      printValueInto(*V, Out);
    }
    Out += ")\n";
  }
  Out += " )\n";
}

void printProcInto(const CertProcUnit &P, std::string &Out) {
  Out += " (proc " + quoted(P.Name) + " (status " +
         (P.Ok ? "ok" : "rejected") + ")";
  if (P.StructuralFail)
    Out += " (structural)";
  Out += "\n";
  Out += "  (terms\n";
  for (uint32_t I = 0; I < P.Pool.size(); ++I) {
    Out += "   (t " + std::to_string(I) + ' ';
    printTermInto(P.Pool.at(I), Out);
    Out += ")\n";
  }
  Out += "  )\n";
  Out += "  (facts\n";
  for (size_t I = 0; I < P.Facts.size(); ++I) {
    const CertFact &F = P.Facts[I];
    Out += "   (f " + std::to_string(I) + ' ';
    switch (F.K) {
    case CertFact::Kind::Eq:
      Out += "(eq " + std::to_string(F.A) + ' ' + std::to_string(F.B) + ')';
      break;
    case CertFact::Kind::True:
      Out += "(tr " + std::to_string(F.A) + ')';
      break;
    case CertFact::Kind::Le:
      Out += "(le " + std::to_string(F.A) + ' ' + std::to_string(F.B) + ' ' +
             std::to_string(F.Bias) + ')';
      break;
    }
    Out += ")\n";
  }
  Out += "  )\n";
  for (const CertObligation &Ob : P.Obligations) {
    Out += "  (ob " + quoted(Ob.Label) + (Ob.Ok ? " ok" : " fail") + "\n";
    for (const CertQuery &Q : Ob.Queries) {
      Out += "   (q ";
      if (Q.IsEq)
        Out += "eq " + std::to_string(Q.A) + ' ' + std::to_string(Q.B);
      else
        Out += "tr " + std::to_string(Q.A);
      Out += Q.Proved ? " proved" : " refuted";
      Out += " (ctx";
      for (uint32_t F : Q.Ctx)
        Out += ' ' + std::to_string(F);
      Out += "))\n";
    }
    Out += "  )\n";
  }
  Out += " )\n";
}

} // namespace

std::string cert::printValue(const ValueRef &V) {
  std::string Out;
  printValueInto(V, Out);
  return Out;
}

std::string cert::print(const Certificate &C) {
  std::string Out;
  Out.reserve(4096);
  Out += "(commcsl-cert v1\n";
  Out += " (program " + quoted(C.ProgramName) + ' ' + hex64(C.ProgramDigest) +
         ")\n";
  Out += std::string(" (verdict ") + (C.Verified ? "verified" : "rejected") +
         ")\n";
  for (const CertSpecUnit &S : C.Specs)
    printSpecInto(S, Out);
  for (const CertProcUnit &P : C.Procs)
    printProcInto(P, Out);
  Out += ")\n";
  return Out;
}

//===----------------------------------------------------------------------===//
// Lexer / s-expression reader (hand-rolled, LFSC style)
//===----------------------------------------------------------------------===//

namespace {

struct SExpr {
  bool IsList = false;
  bool IsString = false; ///< atom came quoted
  std::string Atom;      ///< atom text or unescaped string payload
  std::vector<SExpr> Kids;

  bool isAtom(const char *S) const {
    return !IsList && !IsString && Atom == S;
  }
  /// `(head ...)` with atom head \p S.
  bool isForm(const char *S) const {
    return IsList && !Kids.empty() && Kids[0].isAtom(S);
  }
};

class Lexer {
public:
  Lexer(const std::string &Text, std::string *Error)
      : Text(Text), Error(Error) {}

  bool fail(const std::string &Msg) {
    if (Error && Error->empty())
      *Error = Msg + " at offset " + std::to_string(Pos);
    return false;
  }

  void skipSpace() {
    while (Pos < Text.size() &&
           (Text[Pos] == ' ' || Text[Pos] == '\n' || Text[Pos] == '\t' ||
            Text[Pos] == '\r'))
      ++Pos;
  }

  bool atEnd() {
    skipSpace();
    return Pos >= Text.size();
  }

  bool read(SExpr &Out) {
    skipSpace();
    if (Pos >= Text.size())
      return fail("unexpected end of input");
    char C = Text[Pos];
    if (C == '(') {
      ++Pos;
      Out = SExpr();
      Out.IsList = true;
      for (;;) {
        skipSpace();
        if (Pos >= Text.size())
          return fail("unterminated list");
        if (Text[Pos] == ')') {
          ++Pos;
          return true;
        }
        SExpr Kid;
        if (!read(Kid))
          return false;
        Out.Kids.push_back(std::move(Kid));
      }
    }
    if (C == ')')
      return fail("unexpected ')'");
    if (C == '"') {
      ++Pos;
      Out = SExpr();
      Out.IsString = true;
      while (Pos < Text.size() && Text[Pos] != '"') {
        char D = Text[Pos++];
        if (D == '\\') {
          if (Pos >= Text.size())
            return fail("unterminated escape");
          char E = Text[Pos++];
          switch (E) {
          case '"':
            Out.Atom += '"';
            break;
          case '\\':
            Out.Atom += '\\';
            break;
          case 'n':
            Out.Atom += '\n';
            break;
          case 't':
            Out.Atom += '\t';
            break;
          case 'r':
            Out.Atom += '\r';
            break;
          default:
            return fail("unknown escape");
          }
        } else {
          Out.Atom += D;
        }
      }
      if (Pos >= Text.size())
        return fail("unterminated string");
      ++Pos; // closing quote
      return true;
    }
    // Atom: everything up to whitespace or a paren.
    Out = SExpr();
    size_t Start = Pos;
    while (Pos < Text.size()) {
      char D = Text[Pos];
      if (D == '(' || D == ')' || D == ' ' || D == '\n' || D == '\t' ||
          D == '\r' || D == '"')
        break;
      ++Pos;
    }
    if (Pos == Start)
      return fail("empty atom");
    Out.Atom = Text.substr(Start, Pos - Start);
    return true;
  }

private:
  const std::string &Text;
  std::string *Error;
  size_t Pos = 0;
};

//===----------------------------------------------------------------------===//
// Parser (SExpr -> document model)
//===----------------------------------------------------------------------===//

struct Parser {
  std::string *Error;

  bool fail(const std::string &Msg) {
    if (Error && Error->empty())
      *Error = Msg;
    return false;
  }

  bool parseI64(const SExpr &E, int64_t &Out) {
    if (E.IsList || E.IsString || E.Atom.empty())
      return fail("expected integer");
    errno = 0;
    char *End = nullptr;
    long long V = std::strtoll(E.Atom.c_str(), &End, 10);
    if (errno != 0 || End != E.Atom.c_str() + E.Atom.size())
      return fail("bad integer '" + E.Atom + "'");
    Out = V;
    return true;
  }

  bool parseU64(const SExpr &E, uint64_t &Out) {
    int64_t V;
    if (!parseI64(E, V))
      return false;
    if (V < 0)
      return fail("expected unsigned integer");
    Out = static_cast<uint64_t>(V);
    return true;
  }

  bool parseU32(const SExpr &E, uint32_t &Out) {
    uint64_t V;
    if (!parseU64(E, V))
      return false;
    if (V > 0xFFFFFFFFULL)
      return fail("id out of range");
    Out = static_cast<uint32_t>(V);
    return true;
  }

  bool parseHex(const SExpr &E, uint64_t &Out) {
    if (E.IsList || E.IsString || E.Atom.size() < 2 || E.Atom[0] != '#')
      return fail("expected #hex digest");
    Out = 0;
    for (size_t I = 1; I < E.Atom.size(); ++I) {
      char C = E.Atom[I];
      uint64_t D;
      if (C >= '0' && C <= '9')
        D = C - '0';
      else if (C >= 'a' && C <= 'f')
        D = 10 + (C - 'a');
      else
        return fail("bad hex digest");
      Out = (Out << 4) | D;
    }
    return true;
  }

  bool parseStr(const SExpr &E, std::string &Out) {
    if (!E.IsString)
      return fail("expected string");
    Out = E.Atom;
    return true;
  }

  bool parseValue(const SExpr &E, ValueRef &Out) {
    if (!E.IsList) {
      if (E.IsString)
        return fail("bare string is not a value");
      if (E.Atom == "un") {
        Out = ValueFactory::unit();
        return true;
      }
      if (E.Atom == "tt") {
        Out = ValueFactory::boolV(true);
        return true;
      }
      if (E.Atom == "ff") {
        Out = ValueFactory::boolV(false);
        return true;
      }
      if (E.Atom == "none") {
        Out = nullptr;
        return true;
      }
      return fail("unknown value atom '" + E.Atom + "'");
    }
    if (E.Kids.empty() || E.Kids[0].IsList || E.Kids[0].IsString)
      return fail("bad value form");
    const std::string &Head = E.Kids[0].Atom;
    if (Head == "i") {
      int64_t V;
      if (E.Kids.size() != 2 || !parseI64(E.Kids[1], V))
        return fail("bad int value");
      Out = ValueFactory::intV(V);
      return true;
    }
    if (Head == "str") {
      std::string S;
      if (E.Kids.size() != 2 || !parseStr(E.Kids[1], S))
        return fail("bad string value");
      Out = ValueFactory::stringV(std::move(S));
      return true;
    }
    if (Head == "p" || Head == "sq" || Head == "st" || Head == "ms") {
      std::vector<ValueRef> Elems;
      Elems.reserve(E.Kids.size() - 1);
      for (size_t I = 1; I < E.Kids.size(); ++I) {
        ValueRef V;
        if (!parseValue(E.Kids[I], V) || !V)
          return fail("bad collection element");
        Elems.push_back(std::move(V));
      }
      if (Head == "p") {
        if (Elems.size() != 2)
          return fail("pair needs two elements");
        Out = ValueFactory::pair(Elems[0], Elems[1]);
      } else if (Head == "sq") {
        Out = ValueFactory::seq(std::move(Elems));
      } else if (Head == "st") {
        Out = ValueFactory::set(std::move(Elems));
      } else {
        Out = ValueFactory::multiset(std::move(Elems));
      }
      return true;
    }
    if (Head == "mp") {
      std::vector<std::pair<ValueRef, ValueRef>> Entries;
      for (size_t I = 1; I < E.Kids.size(); ++I) {
        const SExpr &Kid = E.Kids[I];
        if (!Kid.IsList || Kid.Kids.size() != 2)
          return fail("bad map entry");
        ValueRef K, V;
        if (!parseValue(Kid.Kids[0], K) || !K || !parseValue(Kid.Kids[1], V) ||
            !V)
          return fail("bad map entry");
        Entries.emplace_back(std::move(K), std::move(V));
      }
      Out = ValueFactory::map(std::move(Entries));
      return true;
    }
    return fail("unknown value form '" + Head + "'");
  }

  bool unaryOpByName(const std::string &Name, UnaryOp &Out) {
    for (UnaryOp Op : {UnaryOp::Neg, UnaryOp::Not})
      if (Name == unaryOpName(Op)) {
        Out = Op;
        return true;
      }
    return fail("unknown unary op '" + Name + "'");
  }

  bool binaryOpByName(const std::string &Name, BinaryOp &Out) {
    for (int I = 0; I <= static_cast<int>(BinaryOp::Implies); ++I) {
      BinaryOp Op = static_cast<BinaryOp>(I);
      if (Name == binaryOpName(Op)) {
        Out = Op;
        return true;
      }
    }
    return fail("unknown binary op '" + Name + "'");
  }

  /// Parses a term body into \p T (Args referencing already-parsed ids,
  /// bounds-checked against \p PoolSize).
  bool parseTermBody(const SExpr &E, size_t PoolSize, CTerm &T) {
    if (!E.IsList || E.Kids.empty() || E.Kids[0].IsList || E.Kids[0].IsString)
      return fail("bad term body");
    const std::string &Head = E.Kids[0].Atom;
    auto ParseArg = [&](const SExpr &K, uint32_t &Out) {
      if (!parseU32(K, Out))
        return false;
      if (Out >= PoolSize)
        return fail("forward term reference");
      return true;
    };
    if (Head == "c") {
      if (E.Kids.size() != 2)
        return fail("bad const term");
      T.K = CTerm::Kind::Const;
      if (!parseValue(E.Kids[1], T.ConstVal) || !T.ConstVal)
        return fail("bad const term value");
      return true;
    }
    if (Head == "s") {
      if (E.Kids.size() != 3)
        return fail("bad sym term");
      T.K = CTerm::Kind::Sym;
      return parseU32(E.Kids[1], T.SymId) && parseStr(E.Kids[2], T.SymName);
    }
    if (Head == "u") {
      if (E.Kids.size() != 3 || E.Kids[1].IsList || E.Kids[1].IsString)
        return fail("bad unary term");
      T.K = CTerm::Kind::Unary;
      T.Args.resize(1);
      return unaryOpByName(E.Kids[1].Atom, T.UOp) &&
             ParseArg(E.Kids[2], T.Args[0]);
    }
    if (Head == "b") {
      if (E.Kids.size() != 4 || E.Kids[1].IsList || E.Kids[1].IsString)
        return fail("bad binary term");
      T.K = CTerm::Kind::Binary;
      T.Args.resize(2);
      return binaryOpByName(E.Kids[1].Atom, T.BOp) &&
             ParseArg(E.Kids[2], T.Args[0]) && ParseArg(E.Kids[3], T.Args[1]);
    }
    if (Head == "ap") {
      if (E.Kids.size() < 2 || E.Kids[1].IsList || E.Kids[1].IsString)
        return fail("bad builtin term");
      std::optional<BuiltinKind> BK = builtinByName(E.Kids[1].Atom);
      if (!BK)
        return fail("unknown builtin '" + E.Kids[1].Atom + "'");
      T.K = CTerm::Kind::Builtin;
      T.BK = *BK;
      T.Args.resize(E.Kids.size() - 2);
      for (size_t I = 2; I < E.Kids.size(); ++I)
        if (!ParseArg(E.Kids[I], T.Args[I - 2]))
          return false;
      return true;
    }
    return fail("unknown term form '" + Head + "'");
  }

  bool parseSpec(const SExpr &E, CertSpecUnit &S) {
    // (spec "name" (status ..) (scope ..) (caps ..) (universe ..)
    //  (samples ..) (family ..) (checks ..) (ce ..)?)
    if (E.Kids.size() < 8 || !parseStr(E.Kids[1], S.Name))
      return fail("bad spec unit");
    size_t I = 2;
    const SExpr &St = E.Kids[I++];
    if (!St.isForm("status") || St.Kids.size() != 2)
      return fail("bad spec status");
    if (St.Kids[1].isAtom("valid"))
      S.Valid = true;
    else if (St.Kids[1].isAtom("invalid"))
      S.Valid = false;
    else
      return fail("bad spec status value");
    const SExpr &Sc = E.Kids[I++];
    int64_t Bound;
    if (!Sc.isForm("scope") || Sc.Kids.size() != 4 ||
        !parseI64(Sc.Kids[1], S.ScopeLo) || !parseI64(Sc.Kids[2], S.ScopeHi) ||
        !parseI64(Sc.Kids[3], Bound) || Bound < 0)
      return fail("bad spec scope");
    S.ScopeBound = static_cast<unsigned>(Bound);
    const SExpr &Caps = E.Kids[I++];
    if (!Caps.isForm("caps") || Caps.Kids.size() != 3 ||
        !parseU64(Caps.Kids[1], S.StatesCap) ||
        !parseU64(Caps.Kids[2], S.ArgsCap))
      return fail("bad spec caps");
    const SExpr &U = E.Kids[I++];
    if (!U.isForm("universe") || U.Kids.size() != 4 ||
        !parseU64(U.Kids[1], S.NumStates) ||
        !parseU64(U.Kids[2], S.NumAlphaPairs) || !U.Kids[3].isForm("args"))
      return fail("bad spec universe");
    for (size_t J = 1; J < U.Kids[3].Kids.size(); ++J) {
      const SExpr &AE = U.Kids[3].Kids[J];
      std::string Name;
      uint64_t N;
      if (!AE.IsList || AE.Kids.size() != 2 || !parseStr(AE.Kids[0], Name) ||
          !parseU64(AE.Kids[1], N))
        return fail("bad spec arg count");
      S.ArgCounts.emplace_back(std::move(Name), N);
    }
    const SExpr &Sm = E.Kids[I++];
    uint64_t SampleCount;
    if (!Sm.isForm("samples") || Sm.Kids.size() != 3 ||
        !parseU64(Sm.Kids[1], SampleCount) || !parseHex(Sm.Kids[2], S.SampleDigest))
      return fail("bad spec samples");
    S.SampleCount = static_cast<unsigned>(SampleCount);
    const SExpr &Fm = E.Kids[I++];
    if (!Fm.isForm("family") || Fm.Kids.size() != 2)
      return fail("bad spec family");
    if (Fm.Kids[1].isAtom("none"))
      S.Fam = Family::None;
    else if (Fm.Kids[1].isAtom("constant-abstraction"))
      S.Fam = Family::ConstantAbstraction;
    else if (Fm.Kids[1].isForm("ac-update") && Fm.Kids[1].Kids.size() == 2 &&
             parseStr(Fm.Kids[1].Kids[1], S.FamilyOp))
      S.Fam = Family::AcUpdate;
    else
      return fail("bad spec family value");
    const SExpr &Ck = E.Kids[I++];
    if (!Ck.isForm("checks") || Ck.Kids.size() != 3 ||
        !parseU64(Ck.Kids[1], S.BoundedChecks) ||
        !parseU64(Ck.Kids[2], S.RandomChecks))
      return fail("bad spec checks");
    if (I < E.Kids.size() && E.Kids[I].isForm("absint")) {
      const SExpr &Ab = E.Kids[I++];
      CertAbsSection A;
      if (Ab.Kids.size() < 3)
        return fail("bad spec absint");
      if (Ab.Kids[1].isAtom("unbounded"))
        A.Unbounded = true;
      else if (!Ab.Kids[1].isAtom("partial"))
        return fail("bad absint mode");
      uint64_t NComps;
      if (!Ab.Kids[2].isForm("comps") || Ab.Kids[2].Kids.size() != 2 ||
          !parseU64(Ab.Kids[2].Kids[1], NComps))
        return fail("bad absint comps");
      A.NumComps = static_cast<uint32_t>(NComps);
      for (size_t J = 3; J < Ab.Kids.size(); ++J) {
        const SExpr &K = Ab.Kids[J];
        if (K.isForm("u")) {
          std::string Action, U;
          if (K.Kids.size() != 3 || !parseStr(K.Kids[1], Action) ||
              !parseStr(K.Kids[2], U))
            return fail("bad absint template");
          A.Templates.emplace_back(std::move(Action), std::move(U));
          continue;
        }
        CertAbsOb Ob;
        size_t TreeAt;
        if (K.isForm("pre")) {
          Ob.IsPre = true;
          if (K.Kids.size() != 3 || !parseStr(K.Kids[1], Ob.ActionA))
            return fail("bad absint pre obligation");
          TreeAt = 2;
        } else if (K.isForm("comm")) {
          Ob.IsPre = false;
          if (K.Kids.size() != 4 || !parseStr(K.Kids[1], Ob.ActionA) ||
              !parseStr(K.Kids[2], Ob.ActionB))
            return fail("bad absint comm obligation");
          TreeAt = 3;
        } else {
          return fail("unknown absint field");
        }
        const SExpr &Tr = K.Kids[TreeAt];
        if (!Tr.isForm("tree"))
          return fail("bad absint tree");
        for (size_t G = 1; G < Tr.Kids.size(); ++G) {
          std::string Guard;
          if (!parseStr(Tr.Kids[G], Guard))
            return fail("bad absint guard");
          Ob.Tree.push_back(std::move(Guard));
        }
        A.Obligations.push_back(std::move(Ob));
      }
      S.Absint = std::move(A);
    }
    if (I < E.Kids.size()) {
      const SExpr &CE = E.Kids[I++];
      if (!CE.isForm("ce") || CE.Kids.size() != 10)
        return fail("bad spec ce");
      CertCE C;
      if (CE.Kids[1].isAtom("pre"))
        C.P = CertCE::Prop::Precondition;
      else if (CE.Kids[1].isAtom("comm"))
        C.P = CertCE::Prop::Commutativity;
      else if (CE.Kids[1].isAtom("hist"))
        C.P = CertCE::Prop::History;
      else if (CE.Kids[1].isAtom("inv"))
        C.P = CertCE::Prop::Invariant;
      else
        return fail("bad ce property");
      if (!parseStr(CE.Kids[2], C.ActionA) || !parseStr(CE.Kids[3], C.ActionB))
        return fail("bad ce actions");
      ValueRef *Slots[6] = {&C.V1,   &C.V2,        &C.Arg1,
                            &C.Arg2, &C.AlphaLeft, &C.AlphaRight};
      for (size_t J = 0; J < 6; ++J)
        if (!parseValue(CE.Kids[4 + J], *Slots[J]))
          return fail("bad ce value");
      S.CE = std::move(C);
    }
    if (I != E.Kids.size())
      return fail("trailing spec fields");
    return true;
  }

  bool parseProc(const SExpr &E, CertProcUnit &P) {
    if (E.Kids.size() < 5 || !parseStr(E.Kids[1], P.Name))
      return fail("bad proc unit");
    size_t I = 2;
    const SExpr &St = E.Kids[I++];
    if (!St.isForm("status") || St.Kids.size() != 2)
      return fail("bad proc status");
    if (St.Kids[1].isAtom("ok"))
      P.Ok = true;
    else if (St.Kids[1].isAtom("rejected"))
      P.Ok = false;
    else
      return fail("bad proc status value");
    if (I < E.Kids.size() && E.Kids[I].isForm("structural")) {
      P.StructuralFail = true;
      ++I;
    }
    if (I >= E.Kids.size() || !E.Kids[I].isForm("terms"))
      return fail("missing proc terms");
    const SExpr &Terms = E.Kids[I++];
    for (size_t J = 1; J < Terms.Kids.size(); ++J) {
      const SExpr &TE = Terms.Kids[J];
      uint32_t Id;
      if (!TE.isForm("t") || TE.Kids.size() != 3 || !parseU32(TE.Kids[1], Id))
        return fail("bad term entry");
      if (Id != J - 1)
        return fail("non-sequential term id");
      CTerm T;
      if (!parseTermBody(TE.Kids[2], P.Pool.size(), T))
        return false;
      uint32_t Got = 0;
      switch (T.K) {
      case CTerm::Kind::Const:
        Got = P.Pool.constant(T.ConstVal);
        break;
      case CTerm::Kind::Sym:
        Got = P.Pool.sym(T.SymId, T.SymName);
        break;
      case CTerm::Kind::Unary:
        Got = P.Pool.unary(T.UOp, T.Args[0]);
        break;
      case CTerm::Kind::Binary:
        Got = P.Pool.binary(T.BOp, T.Args[0], T.Args[1]);
        break;
      case CTerm::Kind::Builtin:
        Got = P.Pool.builtin(T.BK, T.Args);
        break;
      }
      if (Got != Id)
        return fail("duplicate term in pool");
    }
    if (I >= E.Kids.size() || !E.Kids[I].isForm("facts"))
      return fail("missing proc facts");
    const SExpr &Facts = E.Kids[I++];
    for (size_t J = 1; J < Facts.Kids.size(); ++J) {
      const SExpr &FE = Facts.Kids[J];
      uint32_t Id;
      if (!FE.isForm("f") || FE.Kids.size() != 3 || !parseU32(FE.Kids[1], Id) ||
          Id != J - 1)
        return fail("bad fact entry");
      const SExpr &Body = FE.Kids[2];
      CertFact F;
      auto TermId = [&](const SExpr &K, uint32_t &Out) {
        if (!parseU32(K, Out))
          return false;
        if (Out >= P.Pool.size())
          return fail("fact references unknown term");
        return true;
      };
      if (Body.isForm("eq") && Body.Kids.size() == 3) {
        F.K = CertFact::Kind::Eq;
        if (!TermId(Body.Kids[1], F.A) || !TermId(Body.Kids[2], F.B))
          return false;
      } else if (Body.isForm("tr") && Body.Kids.size() == 2) {
        F.K = CertFact::Kind::True;
        if (!TermId(Body.Kids[1], F.A))
          return false;
      } else if (Body.isForm("le") && Body.Kids.size() == 4) {
        F.K = CertFact::Kind::Le;
        if (!TermId(Body.Kids[1], F.A) || !TermId(Body.Kids[2], F.B) ||
            !parseI64(Body.Kids[3], F.Bias))
          return false;
      } else {
        return fail("bad fact form");
      }
      P.Facts.push_back(F);
    }
    for (; I < E.Kids.size(); ++I) {
      const SExpr &ObE = E.Kids[I];
      if (!ObE.isForm("ob") || ObE.Kids.size() < 3)
        return fail("bad obligation");
      CertObligation Ob;
      if (!parseStr(ObE.Kids[1], Ob.Label))
        return fail("bad obligation label");
      if (ObE.Kids[2].isAtom("ok"))
        Ob.Ok = true;
      else if (ObE.Kids[2].isAtom("fail"))
        Ob.Ok = false;
      else
        return fail("bad obligation status");
      for (size_t J = 3; J < ObE.Kids.size(); ++J) {
        const SExpr &QE = ObE.Kids[J];
        if (!QE.isForm("q") || QE.Kids.size() < 4)
          return fail("bad query");
        CertQuery Q;
        size_t K = 1;
        auto TermId = [&](const SExpr &KE, uint32_t &Out) {
          if (!parseU32(KE, Out))
            return false;
          if (Out >= P.Pool.size())
            return fail("query references unknown term");
          return true;
        };
        if (QE.Kids[K].isAtom("eq")) {
          Q.IsEq = true;
          ++K;
          if (QE.Kids.size() != 6 || !TermId(QE.Kids[K], Q.A) ||
              !TermId(QE.Kids[K + 1], Q.B))
            return fail("bad eq query");
          K += 2;
        } else if (QE.Kids[K].isAtom("tr")) {
          Q.IsEq = false;
          ++K;
          if (QE.Kids.size() != 5 || !TermId(QE.Kids[K], Q.A))
            return fail("bad tr query");
          K += 1;
        } else {
          return fail("bad query kind");
        }
        if (QE.Kids[K].isAtom("proved"))
          Q.Proved = true;
        else if (QE.Kids[K].isAtom("refuted"))
          Q.Proved = false;
        else
          return fail("bad query verdict");
        ++K;
        const SExpr &Ctx = QE.Kids[K];
        if (!Ctx.isForm("ctx"))
          return fail("missing query ctx");
        for (size_t L = 1; L < Ctx.Kids.size(); ++L) {
          uint32_t F;
          if (!parseU32(Ctx.Kids[L], F))
            return false;
          if (F >= P.Facts.size())
            return fail("ctx references unknown fact");
          Q.Ctx.push_back(F);
        }
        Ob.Queries.push_back(std::move(Q));
      }
      P.Obligations.push_back(std::move(Ob));
    }
    return true;
  }
};

} // namespace

std::optional<Certificate> cert::parse(const std::string &Text,
                                       std::string *Error) {
  if (Error)
    Error->clear();
  Lexer Lex(Text, Error);
  SExpr Root;
  if (!Lex.read(Root))
    return std::nullopt;
  if (!Lex.atEnd()) {
    Lex.fail("trailing input after certificate");
    return std::nullopt;
  }
  Parser P{Error};
  if (!Root.isForm("commcsl-cert") || Root.Kids.size() < 4 ||
      !Root.Kids[1].isAtom("v1")) {
    P.fail("not a commcsl-cert v1 document");
    return std::nullopt;
  }
  Certificate C;
  const SExpr &Prog = Root.Kids[2];
  if (!Prog.isForm("program") || Prog.Kids.size() != 3 ||
      !P.parseStr(Prog.Kids[1], C.ProgramName) ||
      !P.parseHex(Prog.Kids[2], C.ProgramDigest)) {
    P.fail("bad program header");
    return std::nullopt;
  }
  const SExpr &Verdict = Root.Kids[3];
  if (!Verdict.isForm("verdict") || Verdict.Kids.size() != 2) {
    P.fail("bad verdict");
    return std::nullopt;
  }
  if (Verdict.Kids[1].isAtom("verified"))
    C.Verified = true;
  else if (Verdict.Kids[1].isAtom("rejected"))
    C.Verified = false;
  else {
    P.fail("bad verdict value");
    return std::nullopt;
  }
  for (size_t I = 4; I < Root.Kids.size(); ++I) {
    const SExpr &E = Root.Kids[I];
    if (E.isForm("spec")) {
      if (!C.Procs.empty()) {
        P.fail("spec unit after proc unit");
        return std::nullopt;
      }
      CertSpecUnit S;
      if (!P.parseSpec(E, S))
        return std::nullopt;
      C.Specs.push_back(std::move(S));
    } else if (E.isForm("proc")) {
      CertProcUnit Proc;
      if (!P.parseProc(E, Proc))
        return std::nullopt;
      C.Procs.push_back(std::move(Proc));
    } else {
      P.fail("unknown top-level form");
      return std::nullopt;
    }
  }
  return C;
}

//===----------------------------------------------------------------------===//
// Structural equality
//===----------------------------------------------------------------------===//

namespace {

bool sameValue(const ValueRef &A, const ValueRef &B) {
  if (!A || !B)
    return !A && !B;
  return Value::equal(A, B);
}

bool samePool(const TermPool &A, const TermPool &B) {
  if (A.size() != B.size())
    return false;
  for (uint32_t I = 0; I < A.size(); ++I) {
    const CTerm &TA = A.at(I), &TB = B.at(I);
    if (!sameTerm(TA, TB))
      return false;
    if (TA.K == CTerm::Kind::Sym && TA.SymName != TB.SymName)
      return false;
  }
  return true;
}

bool sameCE(const std::optional<CertCE> &A, const std::optional<CertCE> &B) {
  if (A.has_value() != B.has_value())
    return false;
  if (!A)
    return true;
  return A->P == B->P && A->ActionA == B->ActionA && A->ActionB == B->ActionB &&
         sameValue(A->V1, B->V1) && sameValue(A->V2, B->V2) &&
         sameValue(A->Arg1, B->Arg1) && sameValue(A->Arg2, B->Arg2) &&
         sameValue(A->AlphaLeft, B->AlphaLeft) &&
         sameValue(A->AlphaRight, B->AlphaRight);
}

} // namespace

bool cert::structurallyEqual(const Certificate &A, const Certificate &B) {
  if (A.ProgramName != B.ProgramName || A.ProgramDigest != B.ProgramDigest ||
      A.Verified != B.Verified || A.Specs.size() != B.Specs.size() ||
      A.Procs.size() != B.Procs.size())
    return false;
  for (size_t I = 0; I < A.Specs.size(); ++I) {
    const CertSpecUnit &SA = A.Specs[I], &SB = B.Specs[I];
    if (SA.Name != SB.Name || SA.Valid != SB.Valid ||
        SA.ScopeLo != SB.ScopeLo || SA.ScopeHi != SB.ScopeHi ||
        SA.ScopeBound != SB.ScopeBound || SA.StatesCap != SB.StatesCap ||
        SA.ArgsCap != SB.ArgsCap || SA.NumStates != SB.NumStates ||
        SA.NumAlphaPairs != SB.NumAlphaPairs ||
        SA.ArgCounts != SB.ArgCounts || SA.SampleCount != SB.SampleCount ||
        SA.SampleDigest != SB.SampleDigest || SA.Fam != SB.Fam ||
        SA.FamilyOp != SB.FamilyOp || SA.BoundedChecks != SB.BoundedChecks ||
        SA.RandomChecks != SB.RandomChecks || !sameCE(SA.CE, SB.CE))
      return false;
    if (SA.Absint.has_value() != SB.Absint.has_value())
      return false;
    if (SA.Absint) {
      const CertAbsSection &AA = *SA.Absint, &AB = *SB.Absint;
      if (AA.Unbounded != AB.Unbounded || AA.NumComps != AB.NumComps ||
          AA.Templates != AB.Templates ||
          AA.Obligations.size() != AB.Obligations.size())
        return false;
      for (size_t J = 0; J < AA.Obligations.size(); ++J) {
        const CertAbsOb &OA = AA.Obligations[J], &OB = AB.Obligations[J];
        if (OA.IsPre != OB.IsPre || OA.ActionA != OB.ActionA ||
            OA.ActionB != OB.ActionB || OA.Tree != OB.Tree)
          return false;
      }
    }
  }
  for (size_t I = 0; I < A.Procs.size(); ++I) {
    const CertProcUnit &PA = A.Procs[I], &PB = B.Procs[I];
    if (PA.Name != PB.Name || PA.Ok != PB.Ok ||
        PA.StructuralFail != PB.StructuralFail ||
        PA.Facts.size() != PB.Facts.size() ||
        PA.Obligations.size() != PB.Obligations.size() ||
        !samePool(PA.Pool, PB.Pool))
      return false;
    for (size_t J = 0; J < PA.Facts.size(); ++J) {
      const CertFact &FA = PA.Facts[J], &FB = PB.Facts[J];
      if (FA.K != FB.K || FA.A != FB.A || FA.B != FB.B || FA.Bias != FB.Bias)
        return false;
    }
    for (size_t J = 0; J < PA.Obligations.size(); ++J) {
      const CertObligation &OA = PA.Obligations[J], &OB = PB.Obligations[J];
      if (OA.Label != OB.Label || OA.Ok != OB.Ok ||
          OA.Queries.size() != OB.Queries.size())
        return false;
      for (size_t K = 0; K < OA.Queries.size(); ++K) {
        const CertQuery &QA = OA.Queries[K], &QB = OB.Queries[K];
        if (QA.IsEq != QB.IsEq || QA.A != QB.A || QA.B != QB.B ||
            QA.Proved != QB.Proved || QA.Ctx != QB.Ctx)
          return false;
      }
    }
  }
  return true;
}
