//===-- cert/Evidence.cpp - Recomputable validity evidence -----------------===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//

#include "cert/Evidence.h"

#include "lang/ExprEval.h"

using namespace commcsl;
using namespace commcsl::cert;

namespace {

/// A minimal mirror of the rspec runtime's evaluation semantics over a
/// plain ExprEvaluator: alpha binds the alpha parameter, actions bind state
/// and argument, the relational precondition follows the Low / conditional
/// Low / Bool atom rules of Sec. 3.2.
struct SpecEval {
  const ResourceSpecDecl &Spec;
  ExprEvaluator Eval;

  SpecEval(const ResourceSpecDecl &Spec, const Program *Prog)
      : Spec(Spec), Eval(Prog) {}

  ValueRef alphaOf(const ValueRef &State) const {
    EvalEnv Env;
    Env[Spec.AlphaParam] = State;
    return Eval.eval(*Spec.Alpha, Env);
  }

  ValueRef apply(const ActionDecl &A, const ValueRef &State,
                 const ValueRef &Arg) const {
    EvalEnv Env;
    Env[A.StateName] = State;
    Env[A.ArgName] = Arg;
    return Eval.eval(*A.Apply, Env);
  }

  bool invHolds(const ValueRef &State) const {
    if (!Spec.Inv)
      return true;
    EvalEnv Env;
    Env[Spec.AlphaParam] = State;
    return Eval.eval(*Spec.Inv, Env)->getBool();
  }

  bool isEnabled(const ActionDecl &A, const ValueRef &State) const {
    if (!A.Enabled)
      return true;
    EvalEnv Env;
    Env[A.StateName] = State;
    return Eval.eval(*A.Enabled, Env)->getBool();
  }

  ValueRef historyOf(const ActionDecl &A, const ValueRef &State) const {
    EvalEnv Env;
    Env[A.StateName] = State;
    return Eval.eval(*A.History, Env);
  }

  bool preHolds(const ActionDecl &A, const ValueRef &Arg1,
                const ValueRef &Arg2) const {
    EvalEnv Env1, Env2;
    Env1[A.ArgName] = Arg1;
    Env2[A.ArgName] = Arg2;
    for (const ContractAtom &Atom : A.Pre) {
      switch (Atom.AtomKind) {
      case ContractAtom::Kind::Low: {
        if (Atom.Cond) {
          ValueRef C1 = Eval.eval(*Atom.Cond, Env1);
          ValueRef C2 = Eval.eval(*Atom.Cond, Env2);
          if (!Value::equal(C1, C2))
            return false;
          if (!C1->getBool())
            break;
        }
        if (!Value::equal(Eval.eval(*Atom.E, Env1), Eval.eval(*Atom.E, Env2)))
          return false;
        break;
      }
      case ContractAtom::Kind::Bool:
        if (!Eval.eval(*Atom.E, Env1)->getBool() ||
            !Eval.eval(*Atom.E, Env2)->getBool())
          return false;
        break;
      case ContractAtom::Kind::SGuard:
      case ContractAtom::Kind::UGuard:
      case ContractAtom::Kind::AllPre:
        break; // rejected by the type checker in action preconditions
      }
    }
    return true;
  }

  bool preHoldsUnary(const ActionDecl &A, const ValueRef &Arg) const {
    return preHolds(A, Arg, Arg);
  }
};

Type::ScopeParams scopeOf(const ResourceSpecDecl &Spec) {
  Type::ScopeParams Scope;
  Scope.IntLo = Spec.ScopeIntLo;
  Scope.IntHi = Spec.ScopeIntHi;
  Scope.CollectionBound = Spec.ScopeCollectionBound;
  return Scope;
}

/// Action pairs (I, J) with I <= J, excluding the diagonal of unique
/// actions — the same pair set the validity checker sweeps.
std::vector<std::pair<size_t, size_t>>
actionPairs(const ResourceSpecDecl &Spec) {
  std::vector<std::pair<size_t, size_t>> Pairs;
  for (size_t I = 0; I < Spec.Actions.size(); ++I)
    for (size_t J = I; J < Spec.Actions.size(); ++J) {
      if (I == J && Spec.Actions[I].Unique)
        continue;
      Pairs.emplace_back(I, J);
    }
  return Pairs;
}

void foldValue(uint64_t &H, const ValueRef &V) {
  H = fnv64(printValue(V), H);
}

} // namespace

SpecEvidence cert::computeSpecEvidence(const ResourceSpecDecl &Spec,
                                       const Program *Prog, uint64_t StatesCap,
                                       uint64_t ArgsCap, unsigned K) {
  SpecEvidence Ev;
  SpecEval E(Spec, Prog);
  Type::ScopeParams Scope = scopeOf(Spec);

  std::vector<ValueRef> States =
      Spec.StateTy->toDomain(Scope)->enumerate(StatesCap);
  Ev.NumStates = States.size();

  // Group states by abstraction value (linear scan against the distinct
  // alphas seen so far — state universes are small by construction).
  std::vector<ValueRef> Alphas(States.size());
  std::vector<std::pair<ValueRef, std::vector<size_t>>> Groups;
  for (size_t I = 0; I < States.size(); ++I) {
    Alphas[I] = E.alphaOf(States[I]);
    bool Placed = false;
    for (auto &[Alpha, Members] : Groups)
      if (Value::equal(Alpha, Alphas[I])) {
        Members.push_back(I);
        Placed = true;
        break;
      }
    if (!Placed)
      Groups.push_back({Alphas[I], {I}});
  }
  // Same-alpha pairs (X, Y) with X <= Y within each group, as a flat list
  // the sampler can index.
  std::vector<std::pair<size_t, size_t>> SameAlphaPairs;
  for (const auto &[Alpha, Members] : Groups) {
    (void)Alpha;
    for (size_t X = 0; X < Members.size(); ++X)
      for (size_t Y = X; Y < Members.size(); ++Y)
        SameAlphaPairs.emplace_back(Members[X], Members[Y]);
  }
  Ev.NumAlphaPairs = SameAlphaPairs.size();

  // Per-action enumerated arguments, plus the unary-precondition filtered
  // subset the commutativity property ranges over.
  std::vector<std::vector<ValueRef>> Args(Spec.Actions.size());
  std::vector<std::vector<ValueRef>> CommArgs(Spec.Actions.size());
  for (size_t I = 0; I < Spec.Actions.size(); ++I) {
    const ActionDecl &A = Spec.Actions[I];
    Args[I] = A.ArgTy->toDomain(Scope)->enumerate(ArgsCap);
    Ev.ArgCounts.emplace_back(A.Name, Args[I].size());
    for (const ValueRef &V : Args[I])
      if (E.preHoldsUnary(A, V))
        CommArgs[I].push_back(V);
  }

  // K deterministic property samples. The stream is a function of the spec
  // name alone, so the emitter and the checker derive the same instances.
  std::vector<std::pair<size_t, size_t>> Pairs = actionPairs(Spec);
  uint64_t Rng = fnv64(Spec.Name);
  uint64_t H = 0xcbf29ce484222325ULL;
  for (unsigned S = 0; S < K; ++S) {
    if (SameAlphaPairs.empty() || Spec.Actions.empty())
      break;
    uint64_t R0 = splitmix64(Rng);
    uint64_t R1 = splitmix64(Rng);
    uint64_t R2 = splitmix64(Rng);
    uint64_t R3 = splitmix64(Rng);
    uint64_t R4 = splitmix64(Rng);
    auto [SI, SJ] = SameAlphaPairs[R1 % SameAlphaPairs.size()];
    if (R2 & 1)
      std::swap(SI, SJ);
    const ValueRef &V1 = States[SI], &V2 = States[SJ];

    if ((R0 & 1) == 0) {
      // Property (A): the precondition preserves low-ness of abstraction.
      size_t AI = R0 % Spec.Actions.size();
      const ActionDecl &A = Spec.Actions[AI];
      if (Args[AI].empty())
        continue;
      ValueRef Arg1 = Args[AI][R3 % Args[AI].size()];
      ValueRef Arg2 = Args[AI][R4 % Args[AI].size()];
      if (!E.preHolds(A, Arg1, Arg2))
        Arg2 = Arg1;
      if (!E.preHolds(A, Arg1, Arg2))
        continue; // even the diagonal violates a unary constraint
      bool Holds = Value::equal(E.alphaOf(E.apply(A, V1, Arg1)),
                                E.alphaOf(E.apply(A, V2, Arg2)));
      H = fnv64("pre:" + A.Name, H);
      foldValue(H, V1);
      foldValue(H, V2);
      foldValue(H, Arg1);
      foldValue(H, Arg2);
      H = fnv64(Holds ? "1" : "0", H);
      Ev.AllSamplesHold &= Holds;
      ++Ev.SampleCount;
    } else {
      // Property (B): actions commute modulo alpha.
      if (Pairs.empty())
        break;
      auto [AI, BI] = Pairs[R0 % Pairs.size()];
      const ActionDecl &A = Spec.Actions[AI];
      const ActionDecl &B = Spec.Actions[BI];
      if (CommArgs[AI].empty() || CommArgs[BI].empty())
        continue;
      ValueRef ArgA = CommArgs[AI][R3 % CommArgs[AI].size()];
      ValueRef ArgB = CommArgs[BI][R4 % CommArgs[BI].size()];
      bool Holds =
          Value::equal(E.alphaOf(E.apply(B, E.apply(A, V1, ArgA), ArgB)),
                       E.alphaOf(E.apply(A, E.apply(B, V2, ArgB), ArgA)));
      H = fnv64("comm:" + A.Name + "#" + B.Name, H);
      foldValue(H, V1);
      foldValue(H, V2);
      foldValue(H, ArgA);
      foldValue(H, ArgB);
      H = fnv64(Holds ? "1" : "0", H);
      Ev.AllSamplesHold &= Holds;
      ++Ev.SampleCount;
    }
  }
  Ev.SampleDigest = H;
  return Ev;
}

bool cert::ceViolates(const ResourceSpecDecl &Spec, const Program *Prog,
                      const CertCE &CE) {
  SpecEval E(Spec, Prog);
  const ActionDecl *A = Spec.findAction(CE.ActionA);
  if (!A)
    return false;
  switch (CE.P) {
  case CertCE::Prop::Precondition: {
    if (!CE.V1 || !CE.V2 || !CE.Arg1 || !CE.Arg2)
      return false;
    if (!Value::equal(E.alphaOf(CE.V1), E.alphaOf(CE.V2)))
      return false;
    if (!E.preHolds(*A, CE.Arg1, CE.Arg2))
      return false;
    return !Value::equal(E.alphaOf(E.apply(*A, CE.V1, CE.Arg1)),
                         E.alphaOf(E.apply(*A, CE.V2, CE.Arg2)));
  }
  case CertCE::Prop::Commutativity: {
    const ActionDecl *B = Spec.findAction(CE.ActionB);
    if (!B || !CE.V1 || !CE.V2 || !CE.Arg1 || !CE.Arg2)
      return false;
    if (!Value::equal(E.alphaOf(CE.V1), E.alphaOf(CE.V2)))
      return false;
    if (!E.preHoldsUnary(*A, CE.Arg1) || !E.preHoldsUnary(*B, CE.Arg2))
      return false;
    return !Value::equal(
        E.alphaOf(E.apply(*B, E.apply(*A, CE.V1, CE.Arg1), CE.Arg2)),
        E.alphaOf(E.apply(*A, E.apply(*B, CE.V2, CE.Arg2), CE.Arg1)));
  }
  case CertCE::Prop::Invariant: {
    // One enabled, precondition-respecting step out of an invariant state
    // lands outside the invariant.
    if (!CE.V1 || !CE.V2 || !CE.Arg1)
      return false;
    if (!E.invHolds(CE.V1) || !E.preHoldsUnary(*A, CE.Arg1) ||
        !E.isEnabled(*A, CE.V1))
      return false;
    if (!Value::equal(E.apply(*A, CE.V1, CE.Arg1), CE.V2))
      return false;
    return !E.invHolds(CE.V2);
  }
  case CertCE::Prop::History: {
    // The claimed history of the reached state differs from the returns the
    // simulation actually collected. The collected sequence itself is a
    // trace artifact; what the checker re-derives is that the history
    // clause really evaluates to the claimed value and that the two sides
    // disagree.
    if (!A->History || !CE.V1 || !CE.AlphaLeft || !CE.AlphaRight)
      return false;
    if (!Value::equal(E.historyOf(*A, CE.V1), CE.AlphaLeft))
      return false;
    return !Value::equal(CE.AlphaLeft, CE.AlphaRight);
  }
  }
  return false;
}
