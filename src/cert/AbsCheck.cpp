//===-- cert/AbsCheck.cpp - Unbounded-validity evidence checker ------------===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//

#include "cert/AbsCheck.h"

#include "absint/Differencing.h"
#include "absint/TermIO.h"

#include <map>
#include <set>

using namespace commcsl;
using namespace commcsl::cert;
using namespace commcsl::absint;

namespace {

/// Rebuilds a split tree from its flattened pre-order guard list. An empty
/// guard string is a leaf; anything else parses as the split guard followed
/// by the then- and else-subtrees. Depth is capped well above anything the
/// analysis emits so a hostile certificate cannot drive the recursion (here
/// or in replay) off the stack.
std::unique_ptr<SplitNode> rebuildTree(TermFactory &F,
                                       const std::vector<std::string> &Guards,
                                       size_t &I, unsigned Depth) {
  if (I >= Guards.size() || Depth > 64)
    return nullptr;
  const std::string &G = Guards[I++];
  auto N = std::make_unique<SplitNode>();
  if (G.empty()) {
    N->Ok = true; // replay ignores leaf flags; only structure matters
    return N;
  }
  N->Guard = parseTerm(F, G);
  if (!N->Guard)
    return nullptr;
  N->Then = rebuildTree(F, Guards, I, Depth + 1);
  if (!N->Then)
    return nullptr;
  N->Else = rebuildTree(F, Guards, I, Depth + 1);
  if (!N->Else)
    return nullptr;
  return N;
}

std::string pairKey(const std::string &A, const std::string &B) {
  return A <= B ? A + "\x1f" + B : B + "\x1f" + A;
}

const ActionDecl *findAction(const ResourceSpecDecl &Decl,
                             const std::string &Name) {
  for (const ActionDecl &A : Decl.Actions)
    if (A.Name == Name)
      return &A;
  return nullptr;
}

} // namespace

bool commcsl::cert::checkAbsintSection(const CertAbsSection &S,
                                       const ResourceSpecDecl &Decl,
                                       const Program &Prog,
                                       std::string &Error) {
  auto fail = [&](const std::string &Msg) {
    Error = "absint: " + Msg;
    return false;
  };

  TermFactory F;
  const NormLimits Limits;

  // Re-derive the abstraction's component decomposition. A certificate
  // recording differencing evidence for an untranslatable alpha is lying
  // about applicability.
  const ATerm *St = F.sym(stateSymName());
  const ATerm *NAlpha = nullptr;
  {
    const std::map<std::string, const ATerm *> Env{{Decl.AlphaParam, St}};
    const ATerm *AlphaS =
        Decl.Alpha ? translateExpr(F, *Decl.Alpha, Env, &Prog) : nullptr;
    if (!AlphaS)
      return fail("abstraction is not translatable");
    FactCtx Empty(F);
    Normalizer N(F, Empty, Limits);
    NAlpha = N.normalize(AlphaS);
    if (!NAlpha)
      return fail("abstraction does not normalize");
  }
  std::vector<const ATerm *> Comps = pairComps(NAlpha);
  if (Comps.size() != S.NumComps)
    return fail("component count mismatch: recorded " +
                std::to_string(S.NumComps) + ", derived " +
                std::to_string(Comps.size()));

  // Slot map, exactly as the analysis builds it: state-dependent components
  // in index order, duplicates sharing the earliest slot.
  std::map<const ATerm *, const ATerm *> SlotMap;
  for (unsigned I = 0; I < Comps.size(); ++I)
    if (mentionsSym(Comps[I], stateSymName()))
      SlotMap.emplace(Comps[I], F.sym(slotSymName(I)));

  // Re-derive every action's update template from the AST. Recorded
  // templates must match the derivation structurally — this is where a
  // corrupted template (the seeded-unsound fault) is caught.
  const ATerm *Arg = F.sym(argSymName());
  std::map<std::string, const ATerm *> DerivedU;
  for (const ActionDecl &Act : Decl.Actions) {
    if (!Act.Apply)
      continue;
    const std::map<std::string, const ATerm *> Env{{Act.StateName, St},
                                                   {Act.ArgName, Arg}};
    const ATerm *FA = translateExpr(F, *Act.Apply, Env, &Prog);
    if (!FA)
      continue;
    const std::map<std::string, const ATerm *> AEnv{{Decl.AlphaParam, FA}};
    const ATerm *AFA = translateExpr(F, *Decl.Alpha, AEnv, &Prog);
    if (!AFA)
      continue;
    FactCtx Empty(F);
    Normalizer N(F, Empty, Limits);
    const ATerm *NA = N.normalize(AFA);
    if (!NA)
      continue;
    const ATerm *U = substTerm(F, NA, SlotMap);
    if (!mentionsSym(U, stateSymName()))
      DerivedU[Act.Name] = U;
  }

  std::set<std::string> TemplatedActions;
  for (const auto &[Name, UText] : S.Templates) {
    if (!findAction(Decl, Name))
      return fail("template for unknown action '" + Name + "'");
    if (!TemplatedActions.insert(Name).second)
      return fail("duplicate template for action '" + Name + "'");
    auto It = DerivedU.find(Name);
    if (It == DerivedU.end())
      return fail("action '" + Name + "' does not factorize through alpha");
    const ATerm *Recorded = parseTerm(F, UText);
    if (!Recorded)
      return fail("unparsable template for action '" + Name + "'");
    // Hash-consing makes structural equality pointer equality.
    if (Recorded != It->second)
      return fail("template for action '" + Name +
                  "' does not match derivation");
  }

  // Replay every recorded obligation: rebuild its sides from the AST and
  // walk the recorded tree. No search — a branch that does not close as
  // recorded is a rejection, never a retry.
  std::set<std::string> ProvedPre;
  std::set<std::string> ProvedComm;
  for (const CertAbsOb &Ob : S.Obligations) {
    size_t Cursor = 0;
    std::unique_ptr<SplitNode> Tree = rebuildTree(F, Ob.Tree, Cursor, 0);
    if (!Tree || Cursor != Ob.Tree.size())
      return fail("malformed split tree for obligation on '" + Ob.ActionA +
                  "'");
    if (Ob.IsPre) {
      if (!Ob.ActionB.empty())
        return fail("low-preservation obligation with two actions");
      const ActionDecl *Act = findAction(Decl, Ob.ActionA);
      if (!Act)
        return fail("low-preservation obligation for unknown action '" +
                    Ob.ActionA + "'");
      auto It = DerivedU.find(Ob.ActionA);
      if (It == DerivedU.end())
        return fail("low-preservation obligation for unfactorized action '" +
                    Ob.ActionA + "'");
      const ATerm *X = F.sym(argSymA());
      const ATerm *X2 = F.sym(argSymA2());
      FactCtx Ctx(F);
      PreFacts PF = addRelationalPreFacts(Ctx, F, &Prog, *Act, X, X2);
      if (!PF.Supported)
        return fail("precondition of '" + Ob.ActionA +
                    "' is outside the differencing fragment");
      bool Ok = true;
      if (!PF.Infeasible) {
        const ATerm *L = substTerm(F, It->second, {{Arg, X}});
        const ATerm *R = substTerm(F, It->second, {{Arg, X2}});
        Ok = replaySplitTree(F, L, R, Ctx, Tree.get(), Limits);
      }
      if (!Ok)
        return fail("low-preservation replay failed for action '" +
                    Ob.ActionA + "'");
      ProvedPre.insert(Ob.ActionA);
    } else {
      const ActionDecl *A = findAction(Decl, Ob.ActionA);
      const ActionDecl *B = findAction(Decl, Ob.ActionB);
      if (!A || !B)
        return fail("commutation obligation for unknown pair (" + Ob.ActionA +
                    ", " + Ob.ActionB + ")");
      if (A == B && A->Unique)
        return fail("commutation obligation for unique self-pair '" +
                    Ob.ActionA + "'");
      const ATerm *X = F.sym(argSymA());
      const ATerm *Y = F.sym(argSymB());
      const ATerm *L = nullptr, *R = nullptr;
      if (!buildCommObligation(F, Decl, &Prog, *A, *B, X, Y, L, R))
        return fail("commutation obligation for pair (" + Ob.ActionA + ", " +
                    Ob.ActionB + ") is not translatable");
      FactCtx Ctx(F);
      PreFacts PFA = addUnaryPreFacts(Ctx, F, &Prog, *A, X);
      PreFacts PFB = addUnaryPreFacts(Ctx, F, &Prog, *B, Y);
      if (!PFA.Supported || !PFB.Supported)
        return fail("preconditions of pair (" + Ob.ActionA + ", " +
                    Ob.ActionB + ") are outside the differencing fragment");
      bool Ok = true;
      if (!PFA.Infeasible && !PFB.Infeasible)
        Ok = replaySplitTree(F, L, R, Ctx, Tree.get(), Limits);
      if (!Ok)
        return fail("commutation replay failed for pair (" + Ob.ActionA +
                    ", " + Ob.ActionB + ")");
      ProvedComm.insert(pairKey(Ob.ActionA, Ob.ActionB));
    }
  }

  // The unbounded claim must be covered: a replayed A' proof and a recorded
  // (matching) template per action, a replayed B1 proof per relevant pair,
  // and nothing the symbolic tiers cannot speak to (history/invariant
  // clauses are only ever simulation-checked).
  if (S.Unbounded) {
    if (Decl.Inv)
      return fail("unbounded claim on a spec with an invariant clause");
    for (const ActionDecl &Act : Decl.Actions) {
      if (Act.History)
        return fail("unbounded claim on a spec with a history clause");
      if (!TemplatedActions.count(Act.Name))
        return fail("unbounded claim without a template for action '" +
                    Act.Name + "'");
      if (!ProvedPre.count(Act.Name))
        return fail("unbounded claim without a low-preservation proof for "
                    "action '" +
                    Act.Name + "'");
    }
    for (size_t I = 0; I < Decl.Actions.size(); ++I)
      for (size_t J = I; J < Decl.Actions.size(); ++J) {
        const ActionDecl &A = Decl.Actions[I];
        const ActionDecl &B = Decl.Actions[J];
        if (I == J && A.Unique)
          continue;
        if (!ProvedComm.count(pairKey(A.Name, B.Name)))
          return fail("unbounded claim without a commutation proof for pair "
                      "(" +
                      A.Name + ", " + B.Name + ")");
      }
  }

  return true;
}
