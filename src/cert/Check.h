//===-- cert/Check.h - Independent certificate checker ----------*- C++ -*-===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The independent certificate checker. It re-derives every step of a
/// certificate from the program AST alone:
///
///  - the program digest must match the parsed program;
///  - each spec unit's universe counts, sample digest, and algebraic family
///    are recomputed (cert/Evidence.h, cert/Algebra.h) and compared; a
///    "valid" claim requires every recomputed sample to hold, an "invalid"
///    claim requires the recorded counterexample to re-execute as a real
///    violation;
///  - each recorded entailment query is replayed on `CheckSolver` — a
///    self-contained port of the solver's decision procedure (congruence
///    closure, difference bounds, AC-chain matching, Ite case splits) over
///    interned pool ids — and must reproduce the recorded verdict;
///  - the final verdict must follow from the units: verified iff all specs
///    valid and all procs ok.
///
/// Trust story (DESIGN §12): the checker shares no code with the verifier
/// or solver libraries, so a bug (or injected fault) that makes the
/// verifier accept produces a certificate whose steps the checker cannot
/// re-derive. What remains trusted is obligation *enumeration* — that the
/// verifier emitted an obligation for every side condition the program
/// needs — and, for spec units, the probabilistic coverage of the sample
/// draws.
///
//===----------------------------------------------------------------------===//

#ifndef COMMCSL_CERT_CHECK_H
#define COMMCSL_CERT_CHECK_H

#include "cert/Cert.h"
#include "lang/Program.h"

#include <map>
#include <unordered_map>

namespace commcsl {
namespace cert {

/// Number of deterministic evidence samples drawn per spec unit, shared by
/// the emitter and the checker.
inline constexpr unsigned SampleDraws = 64;

/// Floors on the recorded universe caps: a certificate claiming a smaller
/// swept universe than the default validity configuration is rejected, so a
/// forged certificate cannot shrink its own evidence base.
inline constexpr uint64_t MinStatesCap = 300;
inline constexpr uint64_t MinArgsCap = 50;

struct CheckResult {
  bool Ok = true;
  std::string Error; ///< first failing step, human-readable
};

/// Checks \p C against \p Prog (which must be type-checked, so spec
/// expressions evaluate). Returns the first failing step.
CheckResult checkCertificate(const Certificate &C, const Program &Prog);

/// The solver port the query replay runs on. Public so unit tests can
/// exercise the decision procedure directly; everything operates on pool
/// ids of the attached TermPool (which grows when case splits intern new
/// negations). Copyable value type, like the solver it mirrors.
class CheckSolver {
public:
  explicit CheckSolver(TermPool &Pool) : Pool(&Pool) {}

  void assumeTrue(uint32_t B);
  void assumeEq(uint32_t A, uint32_t B);
  /// Assumes the linear bound A + Bias <= B.
  void assumeLe(uint32_t A, uint32_t B, int64_t Bias);
  bool provesTrue(uint32_t B);
  bool provesEq(uint32_t A, uint32_t B);
  bool inContradiction() const { return Contradiction; }

private:
  static constexpr uint32_t NoTerm = 0xFFFFFFFFu;

  uint32_t find(uint32_t Id);
  void registerTerm(uint32_t T);
  void merge(uint32_t A, uint32_t B);
  std::vector<uint64_t> signatureOf(uint32_t T);
  void propagateClass(uint32_t Rep,
                      std::vector<std::pair<uint32_t, uint32_t>> &Pending);

  struct LinForm {
    std::map<uint32_t, int64_t> Coeffs;
    int64_t Const = 0;
    void addScaled(const LinForm &O, int64_t K);
    bool isConst() const { return Coeffs.empty(); }
  };
  /// One assumed bound X + Bias <= Y. Bounds carry an explicit bias instead
  /// of a normalized `x + 1` term, which is what lets this checker avoid
  /// reimplementing the arena's normalizing constructors.
  struct LeFact {
    uint32_t X, Y;
    int64_t Bias;
  };
  LinForm linearize(uint32_t T);
  bool leImplied(uint32_t A, uint32_t B, int64_t Bias);

  bool caseSplitTrue(uint32_t B, unsigned Depth);
  bool caseSplitEq(uint32_t A, uint32_t B, unsigned Depth);
  uint32_t findUndecidedIteCond(uint32_t T, unsigned FuelDepth);
  bool provesEqCore(uint32_t A, uint32_t B);
  bool provesTrueCore(uint32_t B);
  bool acChainsEq(uint32_t A, uint32_t B, unsigned Depth);

  TermPool *Pool;
  bool Contradiction = false;
  std::unordered_map<uint32_t, uint32_t> Parent;
  std::unordered_map<uint32_t, bool> Registered;
  std::unordered_map<uint32_t, std::vector<uint32_t>> Uses;
  std::unordered_map<uint32_t, uint32_t> ClassConst; ///< rep -> const term id
  std::unordered_map<uint32_t, std::vector<uint32_t>> CtorMembers;
  std::map<std::vector<uint64_t>, uint32_t> Sigs;
  std::vector<LeFact> LeFacts;
  std::vector<std::pair<uint32_t, uint32_t>> Disequals;
};

} // namespace cert
} // namespace commcsl

#endif // COMMCSL_CERT_CHECK_H
