//===-- cert/Evidence.h - Recomputable validity evidence --------*- C++ -*-===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The bounded-tier exhaustion evidence of a spec certificate, recomputable
/// from the program AST alone. The emitter and the independent checker both
/// call `computeSpecEvidence`:
///
/// - the **universe counts** (enumerated states under the spec's scope,
///   same-alpha state pairs including the diagonal, enumerated arguments per
///   action) pin down exactly which instance space the verifier's bounded
///   tier swept;
/// - the **sample digest** folds the outcomes of K deterministic property
///   samples (Def. 3.1 properties (A) and (B), derived from a splitmix64
///   stream seeded by the spec name) together with the sampled values'
///   canonical renderings. A certificate that claims "valid" while one of
///   its own samples violates the property is rejected — this is what makes
///   a fault-injected verifier detectable at the spec level.
///
/// For invalid specs, `ceViolates` re-executes the recorded counterexample
/// concretely and confirms it really violates the claimed property.
///
/// The spec functions are evaluated with a plain `ExprEvaluator` — this
/// library never touches the rspec runtime or its memo caches.
///
//===----------------------------------------------------------------------===//

#ifndef COMMCSL_CERT_EVIDENCE_H
#define COMMCSL_CERT_EVIDENCE_H

#include "cert/Cert.h"
#include "lang/Program.h"

namespace commcsl {
namespace cert {

struct SpecEvidence {
  uint64_t NumStates = 0;
  uint64_t NumAlphaPairs = 0; ///< same-alpha pairs, diagonal included
  std::vector<std::pair<std::string, uint64_t>> ArgCounts; ///< per action
  unsigned SampleCount = 0; ///< samples actually evaluated (skips excluded)
  uint64_t SampleDigest = 0;
  bool AllSamplesHold = true;
};

/// Recomputes the evidence for \p Spec under its declared scope. \p Prog
/// resolves pure-function calls inside spec expressions; \p StatesCap and
/// \p ArgsCap mirror the validity checker's universe caps; \p K is the
/// number of sample draws (some may be skipped when no legal arguments
/// exist).
SpecEvidence computeSpecEvidence(const ResourceSpecDecl &Spec,
                                 const Program *Prog, uint64_t StatesCap,
                                 uint64_t ArgsCap, unsigned K);

/// Re-executes a recorded validity counterexample: true iff \p CE is a
/// legal instance of its property and concretely violates it.
bool ceViolates(const ResourceSpecDecl &Spec, const Program *Prog,
                const CertCE &CE);

} // namespace cert
} // namespace commcsl

#endif // COMMCSL_CERT_EVIDENCE_H
