//===-- cert/Cert.h - Checkable proof certificates --------------*- C++ -*-===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The checkable proof-certificate format (DESIGN §12). A certificate is the
/// verifier's claim, made explicit: per resource specification the validity
/// evidence (scope, recomputable sample digest, matched algebraic family,
/// counterexample when invalid), and per procedure the entailment queries the
/// symbolic engine discharged — each with its goal, its assumption context,
/// and the verdict — tied to the CommCSL side conditions by obligation
/// labels. The independent checker (cert/Check.h) re-derives every step from
/// the program AST alone.
///
/// Serialization is a compact LFSC-like s-expression format with interned
/// terms (per-proc term pools, `@id` back-references), following the
/// proof-checker idiom of hand-rolled lexing and term interning. The printer
/// is canonical: printing the same certificate always yields the same bytes,
/// which is what makes golden certificates and the warm-vs-cold byte-identity
/// contract of the serve daemon testable.
///
/// This library deliberately depends only on `commcsl_lang`,
/// `commcsl_value` (the AST and the pure value domain), and
/// `commcsl_absint` (the shared equational core that split-tree replay
/// needs, cert/AbsCheck.h) — never on the solver or verifier it audits.
///
//===----------------------------------------------------------------------===//

#ifndef COMMCSL_CERT_CERT_H
#define COMMCSL_CERT_CERT_H

#include "lang/Expr.h"
#include "value/Value.h"

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace commcsl {
namespace cert {

//===----------------------------------------------------------------------===//
// Digests
//===----------------------------------------------------------------------===//

/// FNV-1a 64-bit, the certificate's digest primitive (stable across
/// platforms; no dependence on std::hash).
inline uint64_t fnv64(const void *Data, size_t N, uint64_t H = 0xcbf29ce484222325ULL) {
  const unsigned char *P = static_cast<const unsigned char *>(Data);
  for (size_t I = 0; I < N; ++I) {
    H ^= P[I];
    H *= 0x100000001b3ULL;
  }
  return H;
}

inline uint64_t fnv64(const std::string &S, uint64_t H = 0xcbf29ce484222325ULL) {
  return fnv64(S.data(), S.size(), H);
}

/// String-literal overload. Without it `fnv64("x", H)` silently prefers the
/// raw-pointer overload above with H as the byte count.
inline uint64_t fnv64(const char *S, uint64_t H = 0xcbf29ce484222325ULL) {
  return fnv64(S, std::char_traits<char>::length(S), H);
}

/// splitmix64, the certificate's deterministic sample-derivation PRNG.
inline uint64_t splitmix64(uint64_t &State) {
  uint64_t Z = (State += 0x9E3779B97F4A7C15ULL);
  Z = (Z ^ (Z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94D049BB133111EBULL;
  return Z ^ (Z >> 31);
}

//===----------------------------------------------------------------------===//
// Term pool
//===----------------------------------------------------------------------===//

/// A certificate term: the serialized image of a solver term. Structure
/// mirrors solver/Term.h (Const / Sym / Unary / Binary / Builtin over the
/// lang operator enums) but lives in a plain indexed pool — `Args` hold pool
/// ids, and interning makes id equality coincide with structural equality
/// (the pool-id analogue of the arena's pointer equality).
struct CTerm {
  enum class Kind : uint8_t { Const, Sym, Unary, Binary, Builtin };

  Kind K = Kind::Const;
  UnaryOp UOp = UnaryOp::Neg;
  BinaryOp BOp = BinaryOp::Add;
  BuiltinKind BK = BuiltinKind::PairMk;
  ValueRef ConstVal;       ///< Const payload
  uint32_t SymId = 0;      ///< Sym payload (identity)
  std::string SymName;     ///< Sym payload (display only)
  std::vector<uint32_t> Args; ///< pool ids of operands

  bool isConst() const { return K == Kind::Const; }
  bool isConstInt(int64_t V) const {
    return isConst() && ConstVal->isInt() && ConstVal->getInt() == V;
  }
  bool isTrue() const {
    return isConst() && ConstVal->isBool() && ConstVal->getBool();
  }
  bool isFalse() const {
    return isConst() && ConstVal->isBool() && !ConstVal->getBool();
  }
};

/// An interning term pool. Ids are dense and stable; structurally equal
/// terms share one id.
class TermPool {
public:
  uint32_t constant(ValueRef V);
  uint32_t intConst(int64_t V);
  uint32_t boolConst(bool V);
  uint32_t sym(uint32_t SymId, std::string Name);
  uint32_t unary(UnaryOp Op, uint32_t A);
  uint32_t binary(BinaryOp Op, uint32_t A, uint32_t B);
  uint32_t builtin(BuiltinKind BK, std::vector<uint32_t> Args);

  /// `not(A)` with the arena's Not normalization replicated: constants fold,
  /// double negation strips, everything else interns a raw Not node. Keeps
  /// checker-constructed case-split conditions identical to emitted terms.
  uint32_t mkNot(uint32_t A);

  const CTerm &at(uint32_t Id) const { return Terms[Id]; }
  size_t size() const { return Terms.size(); }

private:
  uint32_t intern(CTerm T);

  std::vector<CTerm> Terms;
  std::unordered_map<uint64_t, std::vector<uint32_t>> Buckets;
};

//===----------------------------------------------------------------------===//
// Certificate document model
//===----------------------------------------------------------------------===//

/// A logged assumption: `eq A B`, `true A`, or the linear bound
/// `A + Bias <= B` (kind Le). Bounds carry an explicit bias so the checker
/// never needs the arena's normalizing `add` constructor.
struct CertFact {
  enum class Kind : uint8_t { Eq, True, Le };
  Kind K = Kind::True;
  uint32_t A = 0;
  uint32_t B = 0;
  int64_t Bias = 0;
};

/// One entailment query the solver answered under an obligation: goal
/// (provesEq A B / provesTrue A), the assumption context (indices into the
/// proc unit's fact list, in assumption order), and the recorded verdict.
struct CertQuery {
  bool IsEq = false;
  uint32_t A = 0;
  uint32_t B = 0;
  bool Proved = false;
  std::vector<uint32_t> Ctx;
};

/// One proof obligation (a CommCSL side condition instance), labeled by its
/// discharge site ("postcondition", "share: invariant", ...).
struct CertObligation {
  std::string Label;
  bool Ok = false;
  std::vector<CertQuery> Queries;
};

/// Per-procedure certificate unit.
struct CertProcUnit {
  std::string Name;
  bool Ok = false;
  /// Set when the proc was rejected for a structural reason (missing guard
  /// fraction, heap misuse, ...) rather than a failed entailment.
  bool StructuralFail = false;
  TermPool Pool;
  std::vector<CertFact> Facts;
  std::vector<CertObligation> Obligations;
};

/// A validity counterexample, re-executable by the checker.
struct CertCE {
  enum class Prop : uint8_t { Precondition, Commutativity, History, Invariant };
  Prop P = Prop::Commutativity;
  std::string ActionA, ActionB;
  ValueRef V1, V2, Arg1, Arg2, AlphaLeft, AlphaRight; ///< any may be null
};

/// Known commutative families the algebraic tier can match syntactically
/// (cert/Algebra.h). `None` means only enumeration evidence backs the spec.
enum class Family : uint8_t { None, ConstantAbstraction, AcUpdate };

/// One recorded differencing-tier obligation (DESIGN §13): the A'
/// low-preservation proof of an action (`IsPre`, ActionB empty) or the B1
/// commutation proof of an action pair. `Tree` is the recorded split tree,
/// flattened pre-order — a node with a non-empty guard (a serialized absint
/// term, absint/TermIO.h) is followed by its then- and else-subtrees; an
/// empty string is a leaf. Only *proved* obligations are recorded; the
/// checker re-derives both sides of each one from the program AST and
/// replays the tree without searching.
struct CertAbsOb {
  bool IsPre = true;
  std::string ActionA, ActionB;
  std::vector<std::string> Tree;
};

/// Recorded unbounded-validity evidence: the normalized abstraction's
/// component count, the per-action update templates the factorization
/// produced, and the proved obligations. The templates are the claim the
/// checker audits semantically — it re-derives each from alpha and the
/// action body and compares structurally, so a certificate recording a
/// corrupted template (or tree) is rejected even though the analysis
/// verdict it shipped with was honest.
struct CertAbsSection {
  bool Unbounded = false; ///< whole spec proved for the unbounded domains
  uint32_t NumComps = 0;  ///< pair-tree components of normalized alpha(s)
  std::vector<std::pair<std::string, std::string>> Templates; ///< action, U
  std::vector<CertAbsOb> Obligations;
};

/// Per-specification certificate unit. The universe counts and the sample
/// digest are recomputable from the program AST alone (cert/Evidence.h);
/// the bounded/random check counts are informational.
struct CertSpecUnit {
  std::string Name;
  bool Valid = false;
  int64_t ScopeLo = -2, ScopeHi = 2;
  unsigned ScopeBound = 3;
  uint64_t StatesCap = 0, ArgsCap = 0;
  uint64_t NumStates = 0, NumAlphaPairs = 0;
  std::vector<std::pair<std::string, uint64_t>> ArgCounts;
  unsigned SampleCount = 0;
  uint64_t SampleDigest = 0;
  Family Fam = Family::None;
  std::string FamilyOp; ///< AcUpdate: the shared operator's surface name
  uint64_t BoundedChecks = 0, RandomChecks = 0;
  /// Differencing-tier evidence; absent when the tier was off or the
  /// abstraction was not translatable.
  std::optional<CertAbsSection> Absint;
  std::optional<CertCE> CE;
};

/// A whole-program certificate.
struct Certificate {
  std::string ProgramName;
  uint64_t ProgramDigest = 0; ///< fnv64 of Program::str()
  bool Verified = false;
  std::vector<CertSpecUnit> Specs;
  std::vector<CertProcUnit> Procs;
};

//===----------------------------------------------------------------------===//
// Printing / parsing
//===----------------------------------------------------------------------===//

/// Canonical s-expression rendering (byte-deterministic).
std::string print(const Certificate &C);

/// Parses a printed certificate. Returns std::nullopt and sets \p Error on
/// malformed input.
std::optional<Certificate> parse(const std::string &Text, std::string *Error);

/// Canonical s-expression rendering of a value (`(i 3)`, `(sq ...)`, ...),
/// shared by the printer and the evidence digests.
std::string printValue(const ValueRef &V);

/// Structural equality of certificates (the printer/parser round-trip
/// property). Term pools compare by structure, not id layout.
bool structurallyEqual(const Certificate &A, const Certificate &B);

} // namespace cert
} // namespace commcsl

#endif // COMMCSL_CERT_CERT_H
