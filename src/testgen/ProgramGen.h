//===-- testgen/ProgramGen.h - Random program generation --------*- C++ -*-===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generates random well-typed `.hv` programs with taint-tracked outputs,
/// for differential and soundness fuzzing:
///
///  - programs whose generator-tracked taint says the output is low should
///    verify (completeness fuzzing);
///  - whatever the verifier *accepts* must pass the empirical
///    non-interference sweep (soundness fuzzing — the key property);
///  - generated programs drive the verifier-scaling benchmark.
///
/// The generator emits main(l: int, h: int) with `l` low and `h` secret,
/// straight-line assignments, low and high conditionals, invariant-
/// annotated loops, and (optionally) shared-counter par blocks.
///
//===----------------------------------------------------------------------===//

#ifndef COMMCSL_TESTGEN_PROGRAMGEN_H
#define COMMCSL_TESTGEN_PROGRAMGEN_H

#include <cstdint>
#include <string>

namespace commcsl {

/// Knobs for the generator.
struct GenConfig {
  uint64_t Seed = 1;
  /// Approximate number of statements in main's body.
  unsigned TargetStatements = 12;
  /// Number of pre-declared integer locals.
  unsigned NumLocals = 6;
  bool EnableConcurrency = true;
  bool EnableLoops = true;
  bool EnableHighBranches = true;
  /// Shared collection resources (set add / map increment / multiset
  /// insert) with identity abstractions, performed from par branches with
  /// secret-dependent pacing. Requires EnableConcurrency.
  bool EnableCollections = true;
  /// Par blocks over a resource with two *unique* actions, one per branch
  /// (the uguard distribution path of the Par rule). Requires
  /// EnableConcurrency.
  bool EnableUniquePar = true;
  /// Value-dependent record logs: appended pairs carry their own
  /// classification flag, `requires low(fst(a)) && fst(a) ==> low(snd(a))`
  /// (Sec. 3.4), and the published abstraction is the record count.
  /// Requires EnableConcurrency.
  bool EnableValueDependent = true;
  /// Conditionally-classified parameter: main gains a third parameter `c`
  /// with `level(c) = if l > 0 then low else high`. Secure programs read
  /// it only under the guard (`if (l > 0) { x := c; }`); the leaky output
  /// variant seals it unguarded, which the verifier must reject.
  bool EnableConditionalLevels = true;
  /// `declassify e` release sites: the declassified value is low by fiat
  /// (delimited release), so it may feed the public output even when the
  /// expression underneath is secret. Generated release expressions are
  /// always schedule-independent, keeping the scheduler-differential
  /// verdict exact.
  bool EnableDeclassify = true;
  /// When true, the output expression may (with probability ~1/2) be
  /// tainted — such programs must be rejected by the verifier.
  bool AllowLeakyOutput = false;
};

/// A generated program plus the generator's own taint verdict.
struct GeneratedProgram {
  std::string Source;
  /// Generator-side verdict: when false, the program is information-flow
  /// secure by construction (low output, no illegal action arguments) and
  /// the verifier is expected to accept it; when true, the verifier is
  /// expected to reject it.
  bool OutputTainted = false;
  unsigned Statements = 0;
};

/// Generates one program. Deterministic per config.
GeneratedProgram generateProgram(const GenConfig &Config);

} // namespace commcsl

#endif // COMMCSL_TESTGEN_PROGRAMGEN_H
