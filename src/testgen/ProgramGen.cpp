//===-- testgen/ProgramGen.cpp - Random program generation -----------------===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//

#include "testgen/ProgramGen.h"

#include <random>
#include <sstream>
#include <vector>

using namespace commcsl;

namespace {

class Generator {
public:
  explicit Generator(const GenConfig &Config)
      : Config(Config), Rng(Config.Seed) {}

  GeneratedProgram run();

private:
  struct Var {
    std::string Name;
    bool Tainted;
  };

  size_t pick(size_t N) {
    return std::uniform_int_distribution<size_t>(0, N - 1)(Rng);
  }
  bool coin(double P = 0.5) {
    return std::uniform_real_distribution<double>(0, 1)(Rng) < P;
  }
  int64_t smallConst() { return static_cast<int64_t>(pick(7)); }

  /// Index of a random variable; when \p LowOnly, only untainted ones
  /// (index 0, the parameter `l`, is always available and low).
  size_t pickVar(bool LowOnly) {
    std::vector<size_t> Eligible;
    for (size_t I = 0; I < Vars.size(); ++I)
      if (!LowOnly || !Vars[I].Tainted)
        Eligible.push_back(I);
    return Eligible[pick(Eligible.size())];
  }

  /// A random arithmetic expression. Returns its taint in \p Tainted.
  std::string expr(bool LowOnly, bool &Tainted, unsigned Depth = 2) {
    Tainted = false;
    switch (Depth == 0 ? pick(2) : pick(4)) {
    case 0:
      return std::to_string(smallConst());
    case 1: {
      size_t V = pickVar(LowOnly);
      Tainted = Vars[V].Tainted;
      return Vars[V].Name;
    }
    case 2: {
      bool T1 = false, T2 = false;
      const char *Ops[] = {"+", "-", "*"};
      std::string E = "(" + expr(LowOnly, T1, Depth - 1) + " " +
                      Ops[pick(3)] + " " + expr(LowOnly, T2, Depth - 1) +
                      ")";
      Tainted = T1 || T2;
      return E;
    }
    default: {
      bool T1 = false;
      std::string E = "(" + expr(LowOnly, T1, Depth - 1) + " % " +
                      std::to_string(smallConst() + 2) + ")";
      Tainted = T1;
      return E;
    }
    }
  }

  void line(const std::string &S) {
    for (unsigned I = 0; I < Indent; ++I)
      Body << "  ";
    Body << S << "\n";
  }

  /// x := e for a random local.
  void genAssign(bool ForceTaint) {
    size_t V = 2 + pick(Vars.size() - 2); // never assign the parameters
    bool T = false;
    std::string E = expr(/*LowOnly=*/false, T);
    if (ForceTaint && !T) {
      E = "(" + E + " + h)";
      T = true;
    }
    line(Vars[V].Name + " := " + E + ";");
    Vars[V].Tainted = T;
  }

  void genLowIf() {
    bool T = false;
    std::string Cond = expr(/*LowOnly=*/true, T) + " > 1";
    size_t V = 2 + pick(Vars.size() - 2);
    bool T1 = false, T2 = false;
    std::string E1 = expr(false, T1);
    std::string E2 = expr(false, T2);
    line("if (" + Cond + ") {");
    ++Indent;
    line(Vars[V].Name + " := " + E1 + ";");
    --Indent;
    line("} else {");
    ++Indent;
    line(Vars[V].Name + " := " + E2 + ";");
    --Indent;
    line("}");
    Vars[V].Tainted = T1 || T2;
  }

  void genHighIf() {
    size_t V = 2 + pick(Vars.size() - 2);
    bool T = false;
    std::string E = expr(false, T);
    line("if (h % " + std::to_string(smallConst() + 2) + " == 0) {");
    ++Indent;
    line(Vars[V].Name + " := " + E + ";");
    --Indent;
    line("}");
    Vars[V].Tainted = true; // joined with the untaken branch's old value
  }

  void genLoop() {
    // Accumulation loop over a fresh counter; the accumulator must start
    // low, and the invariant re-establishes the lowness of both.
    size_t Acc = 2 + pick(Vars.size() - 2);
    if (Vars[Acc].Tainted) {
      line(Vars[Acc].Name + " := 0;");
      Vars[Acc].Tainted = false;
    }
    std::string I = fresh("i");
    bool T = false;
    std::string Step = expr(/*LowOnly=*/true, T);
    line("var " + I + ": int := 0;");
    line("while (" + I + " < " + std::to_string(smallConst() + 1) + ")");
    line("  invariant low(" + I + ") && low(" + Vars[Acc].Name + ")");
    line("{");
    ++Indent;
    line(Vars[Acc].Name + " := " + Vars[Acc].Name + " + " + Step + ";");
    line(I + " := " + I + " + 1;");
    --Indent;
    line("}");
  }

  void genCounterBlock(bool TaintArg) {
    std::string R = fresh("r");
    std::string C = fresh("c");
    bool T1 = false, T2 = false;
    std::string A1 = expr(/*LowOnly=*/!TaintArg, T1);
    std::string A2 = expr(/*LowOnly=*/true, T2);
    if (TaintArg)
      A1 = "(" + A1 + " + h)";
    line("share " + R + ": Counter := 0;");
    line("par {");
    ++Indent;
    // Secret-dependent pacing in one branch.
    std::string W = fresh("w");
    line("var " + W + ": int := 0;");
    line("while (" + W + " < h % 3) invariant " + W + " >= 0 { " + W +
         " := " + W + " + 1; }");
    line("atomic " + R + " { perform " + R + ".Add(" + A1 + "); }");
    --Indent;
    line("} and {");
    ++Indent;
    line("atomic " + R + " { perform " + R + ".Add(" + A2 + "); }");
    --Indent;
    line("}");
    line("var " + C + ": int := 0;");
    line(C + " := unshare " + R + ";");
    Vars.push_back({C, TaintArg || T1 || T2});
    // A high action argument is rejected at unshare regardless of whether
    // the counter's value reaches the output.
    ForcedReject |= TaintArg;
  }

  std::string fresh(const char *Base) {
    return std::string(Base) + std::to_string(FreshId++);
  }

  const GenConfig &Config;
  bool ForcedReject = false; ///< a leaky perform was emitted
  std::mt19937_64 Rng;
  std::vector<Var> Vars;
  std::ostringstream Body;
  unsigned Indent = 1;
  unsigned FreshId = 0;
};

GeneratedProgram Generator::run() {
  GeneratedProgram Out;

  Vars.push_back({"l", false});
  Vars.push_back({"h", true});

  // Pre-declared locals (assignment targets).
  for (unsigned I = 0; I < Config.NumLocals; ++I) {
    std::string Name = fresh("x");
    bool T = false;
    std::string Init = expr(/*LowOnly=*/coin(0.7), T);
    line("var " + Name + ": int := " + Init + ";");
    Vars.push_back({Name, T});
  }

  bool UsedCounter = false;
  for (unsigned S = 0; S < Config.TargetStatements; ++S) {
    ++Out.Statements;
    switch (pick(8)) {
    case 0:
    case 1:
    case 2:
      genAssign(/*ForceTaint=*/false);
      break;
    case 3:
      genLowIf();
      break;
    case 4:
      if (Config.EnableHighBranches)
        genHighIf();
      else
        genAssign(false);
      break;
    case 5:
      if (Config.EnableLoops)
        genLoop();
      else
        genAssign(false);
      break;
    case 6:
      if (Config.EnableConcurrency) {
        bool Leaky = Config.AllowLeakyOutput && coin(0.3);
        genCounterBlock(Leaky);
        UsedCounter = true;
      } else {
        genAssign(false);
      }
      break;
    default:
      genAssign(Config.AllowLeakyOutput && coin(0.2));
      break;
    }
  }

  // The output.
  bool WantLeak = Config.AllowLeakyOutput && coin();
  bool T = false;
  std::string OutExpr = expr(/*LowOnly=*/!WantLeak, T);
  if (WantLeak && !T) {
    OutExpr = "(" + OutExpr + " + h)";
    T = true;
  }
  line("out := " + OutExpr + ";");
  Out.OutputTainted = T || ForcedReject;

  std::ostringstream Prog;
  if (UsedCounter || Config.EnableConcurrency) {
    Prog << "resource Counter {\n"
            "  state: int;\n"
            "  alpha(v) = v;\n"
            "  shared action Add(a: int) {\n"
            "    apply(v, a) = v + a;\n"
            "    requires low(a);\n"
            "  }\n"
            "}\n\n";
  }
  Prog << "procedure main(l: int, h: int) returns (out: int)\n"
          "  requires low(l)\n"
          "  ensures low(out)\n"
          "{\n"
       << Body.str() << "}\n";
  Out.Source = Prog.str();
  return Out;
}

} // namespace

GeneratedProgram commcsl::generateProgram(const GenConfig &Config) {
  Generator G(Config);
  return G.run();
}
