//===-- testgen/ProgramGen.cpp - Random program generation -----------------===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//

#include "testgen/ProgramGen.h"

#include <random>
#include <sstream>
#include <vector>

using namespace commcsl;

namespace {

class Generator {
public:
  explicit Generator(const GenConfig &Config)
      : Config(Config), Rng(Config.Seed) {}

  GeneratedProgram run();

private:
  struct Var {
    std::string Name;
    bool Tainted;
  };

  size_t pick(size_t N) {
    return std::uniform_int_distribution<size_t>(0, N - 1)(Rng);
  }
  bool coin(double P = 0.5) {
    return std::uniform_real_distribution<double>(0, 1)(Rng) < P;
  }
  int64_t smallConst() { return static_cast<int64_t>(pick(7)); }

  /// Index of a random variable; when \p LowOnly, only untainted ones
  /// (index 0, the parameter `l`, is always available and low).
  size_t pickVar(bool LowOnly) {
    std::vector<size_t> Eligible;
    for (size_t I = 0; I < Vars.size(); ++I)
      if (!LowOnly || !Vars[I].Tainted)
        Eligible.push_back(I);
    return Eligible[pick(Eligible.size())];
  }

  /// A random arithmetic expression. Returns its taint in \p Tainted.
  std::string expr(bool LowOnly, bool &Tainted, unsigned Depth = 2) {
    Tainted = false;
    switch (Depth == 0 ? pick(2) : pick(4)) {
    case 0:
      return std::to_string(smallConst());
    case 1: {
      size_t V = pickVar(LowOnly);
      Tainted = Vars[V].Tainted;
      return Vars[V].Name;
    }
    case 2: {
      bool T1 = false, T2 = false;
      const char *Ops[] = {"+", "-", "*"};
      std::string E = "(" + expr(LowOnly, T1, Depth - 1) + " " +
                      Ops[pick(3)] + " " + expr(LowOnly, T2, Depth - 1) +
                      ")";
      Tainted = T1 || T2;
      return E;
    }
    default: {
      bool T1 = false;
      std::string E = "(" + expr(LowOnly, T1, Depth - 1) + " % " +
                      std::to_string(smallConst() + 2) + ")";
      Tainted = T1;
      return E;
    }
    }
  }

  void line(const std::string &S) {
    for (unsigned I = 0; I < Indent; ++I)
      Body << "  ";
    Body << S << "\n";
  }

  /// x := e for a random local.
  void genAssign(bool ForceTaint) {
    size_t V = FirstLocal + pick(Vars.size() - FirstLocal); // never assign params
    bool T = false;
    std::string E = expr(/*LowOnly=*/false, T);
    if (ForceTaint && !T) {
      E = "(" + E + " + h)";
      T = true;
    }
    line(Vars[V].Name + " := " + E + ";");
    Vars[V].Tainted = T;
  }

  void genLowIf() {
    bool T = false;
    std::string Cond = expr(/*LowOnly=*/true, T) + " > 1";
    size_t V = FirstLocal + pick(Vars.size() - FirstLocal);
    bool T1 = false, T2 = false;
    std::string E1 = expr(false, T1);
    std::string E2 = expr(false, T2);
    line("if (" + Cond + ") {");
    ++Indent;
    line(Vars[V].Name + " := " + E1 + ";");
    --Indent;
    line("} else {");
    ++Indent;
    line(Vars[V].Name + " := " + E2 + ";");
    --Indent;
    line("}");
    Vars[V].Tainted = T1 || T2;
  }

  void genHighIf() {
    size_t V = FirstLocal + pick(Vars.size() - FirstLocal);
    bool T = false;
    std::string E = expr(false, T);
    line("if (h % " + std::to_string(smallConst() + 2) + " == 0) {");
    ++Indent;
    line(Vars[V].Name + " := " + E + ";");
    --Indent;
    line("}");
    Vars[V].Tainted = true; // joined with the untaken branch's old value
  }

  void genLoop() {
    // Accumulation loop over a fresh counter; the accumulator must start
    // low, and the invariant re-establishes the lowness of both.
    size_t Acc = FirstLocal + pick(Vars.size() - FirstLocal);
    if (Vars[Acc].Tainted) {
      line(Vars[Acc].Name + " := 0;");
      Vars[Acc].Tainted = false;
    }
    std::string I = fresh("i");
    bool T = false;
    std::string Step = expr(/*LowOnly=*/true, T);
    line("var " + I + ": int := 0;");
    line("while (" + I + " < " + std::to_string(smallConst() + 1) + ")");
    line("  invariant low(" + I + ") && low(" + Vars[Acc].Name + ")");
    line("{");
    ++Indent;
    line(Vars[Acc].Name + " := " + Vars[Acc].Name + " + " + Step + ";");
    line(I + " := " + I + " + 1;");
    --Indent;
    line("}");
  }

  /// Secret-dependent pacing loop: amplifies internal-timing channels
  /// inside a par branch without touching any shared data.
  void genPacing(unsigned Mod) {
    std::string W = fresh("w");
    line("var " + W + ": int := 0;");
    line("while (" + W + " < h % " + std::to_string(Mod) + ") invariant " +
         W + " >= 0 { " + W + " := " + W + " + 1; }");
  }

  /// Seals \p LowE (which must be h-free, i.e. generated LowOnly) into a
  /// guaranteed-high expression. The base must be low-only: wrapping an
  /// expression that already mentions h risks arithmetic cancellation
  /// (e.g. `(e - h) + h`), which the verifier's solver normalizes away —
  /// the program would be semantically secure while the generator claims
  /// taint, breaking the exactness of the reject verdict.
  std::string sealHigh(const std::string &LowE) {
    return "(" + LowE + " + h)";
  }

  /// Seals \p LowE with the conditionally-classified parameter `c` used
  /// *outside* its level guard. The only relational fact about `c` is
  /// `l > 0 ==> cL == cR`, and `l`'s sign is free, so the verifier can
  /// never relate the two copies: an unguarded single occurrence is a
  /// guaranteed reject, with no cancellation risk (the base is low-only).
  std::string sealCond(const std::string &LowE) {
    return "(" + LowE + " + c)";
  }

  /// Guarded read of the conditionally-classified parameter: `c` flows
  /// into a fresh local only under its own level guard, with a low
  /// fallback on the refusal path. The local is low — the relational
  /// verifier discharges it from `l > 0 ==> cL == cR` plus the branch
  /// condition — so it joins the untainted pool.
  void genCondRead() {
    std::string G = fresh("g");
    bool T = false;
    std::string Fallback = expr(/*LowOnly=*/true, T);
    line("var " + G + ": int := 0;");
    line("if (l > 0) {");
    ++Indent;
    line(G + " := c;");
    --Indent;
    line("} else {");
    ++Indent;
    line(G + " := " + Fallback + ";");
    --Indent;
    line("}");
    Vars.push_back({G, false});
  }

  /// Declassify release site: the released value is low by fiat, so the
  /// fresh local joins the untainted pool. The released expression is a
  /// residue of the secret, never the secret itself: releasing an
  /// expression from which `hL == hR` is derivable (e.g. `l + h`) would
  /// let the verifier soundly accept a later sealHigh leak the generator
  /// marked tainted — laundering the exactness contract. From
  /// `hL % K == hR % K` no sound solver can recover `hL == hR`, so seals
  /// stay guaranteed rejects, while the release log still varies with h
  /// (exercising the delimited-release skip in the NI and scheduler
  /// oracles). Scalars only, so the log cannot depend on the schedule.
  void genDeclassifyStmt() {
    std::string D = fresh("d");
    bool T = false;
    std::string Low = expr(/*LowOnly=*/true, T);
    std::string E =
        "(" + Low + " + (h % " + std::to_string(2 + pick(5)) + "))";
    line("var " + D + ": int := declassify(" + E + ");");
    Vars.push_back({D, false});
    UsedDeclassify = true;
  }

  void genCounterBlock(bool TaintArg) {
    std::string R = fresh("r");
    std::string C = fresh("c");
    bool T1 = false, T2 = false;
    std::string A1 = expr(/*LowOnly=*/true, T1);
    std::string A2 = expr(/*LowOnly=*/true, T2);
    if (TaintArg)
      A1 = sealHigh(A1);
    line("share " + R + ": Counter := 0;");
    line("par {");
    ++Indent;
    // Secret-dependent pacing in one branch.
    genPacing(3);
    line("atomic " + R + " { perform " + R + ".Add(" + A1 + "); }");
    --Indent;
    line("} and {");
    ++Indent;
    line("atomic " + R + " { perform " + R + ".Add(" + A2 + "); }");
    --Indent;
    line("}");
    line("var " + C + ": int := 0;");
    line(C + " := unshare " + R + ";");
    Vars.push_back({C, TaintArg || T1 || T2});
    UsedCounter = true;
    // A high action argument is rejected at unshare regardless of whether
    // the counter's value reaches the output.
    ForcedReject |= TaintArg;
  }

  /// Shared collection block: two par branches each perform one
  /// commutative collection action (set add / map increment / multiset
  /// insert), one with secret-dependent pacing; the unshared collection's
  /// identity abstraction is low, so a scalar projection of it feeds the
  /// local pool. \p Which selects set (0), map (1), or multiset (2).
  void genCollectionBlock(unsigned Which, bool TaintArg) {
    const char *Spec = Which == 0 ? "IntSet" : Which == 1 ? "Histogram"
                                                          : "IntBag";
    const char *Action = Which == 0 ? "Add" : Which == 1 ? "Inc" : "Put";
    const char *EmptyInit = Which == 0   ? "set_empty()"
                            : Which == 1 ? "map_empty()"
                                         : "mset_empty()";
    const char *FinTy = Which == 0   ? "set<int>"
                        : Which == 1 ? "map<int, int>"
                                     : "mset<int>";
    std::string R = fresh("g");
    std::string Fin = fresh("f");
    std::string C = fresh("c");
    bool T1 = false, T2 = false;
    std::string A1 = expr(/*LowOnly=*/true, T1);
    std::string A2 = expr(/*LowOnly=*/true, T2);
    if (TaintArg)
      A1 = sealHigh(A1);
    line("share " + R + ": " + std::string(Spec) + " := " + EmptyInit + ";");
    line("par {");
    ++Indent;
    genPacing(4);
    line("atomic " + R + " { perform " + R + "." + Action + "(" + A1 +
         "); }");
    --Indent;
    line("} and {");
    ++Indent;
    line("atomic " + R + " { perform " + R + "." + Action + "(" + A2 +
         "); }");
    --Indent;
    line("}");
    line("var " + Fin + ": " + FinTy + " := " + EmptyInit + ";");
    line(Fin + " := unshare " + R + ";");
    std::string Proj = Which == 0   ? "set_size(" + Fin + ")"
                       : Which == 1 ? "map_get_or(" + Fin + ", " +
                                          std::to_string(smallConst()) +
                                          ", 0)"
                                    : "card(" + Fin + ")";
    line("var " + C + ": int := " + Proj + ";");
    // The identity abstraction makes the whole final collection low when
    // every recorded argument was low; any scalar projection is then low.
    Vars.push_back({C, TaintArg});
    (Which == 0 ? UsedSet : Which == 1 ? UsedMap : UsedBag) = true;
    ForcedReject |= TaintArg;
  }

  /// Unique-guard par block: the resource declares two unique actions that
  /// commute with each other; each par branch holds exactly one uguard, the
  /// Par rule's unique-guard distribution path.
  void genUniqueParBlock(bool TaintArg) {
    std::string R = fresh("u");
    std::string C = fresh("c");
    bool T1 = false, T2 = false;
    std::string A1 = expr(/*LowOnly=*/true, T1);
    std::string A2 = expr(/*LowOnly=*/true, T2);
    if (TaintArg)
      A1 = sealHigh(A1);
    line("share " + R + ": UniquePair := 0;");
    line("par {");
    ++Indent;
    genPacing(3);
    line("atomic " + R + " { perform " + R + ".AddL(" + A1 + "); }");
    --Indent;
    line("} and {");
    ++Indent;
    line("atomic " + R + " { perform " + R + ".AddR(" + A2 + "); }");
    --Indent;
    line("}");
    line("var " + C + ": int := 0;");
    line(C + " := unshare " + R + ";");
    Vars.push_back({C, TaintArg || T1 || T2});
    UsedUniquePair = true;
    ForcedReject |= TaintArg;
  }

  /// Value-dependent record log (Sec. 3.4): appended pairs carry their own
  /// classification flag; a false flag permits a secret payload. The
  /// published projection is the record count (`alpha = len`), which is
  /// low regardless of the payloads. The tainted variant smuggles a secret
  /// payload under a `true` flag, violating `fst(a) ==> low(snd(a))`.
  void genValueDepBlock(bool TaintPayload) {
    std::string R = fresh("g");
    std::string Fin = fresh("f");
    std::string C = fresh("c");
    bool T1 = false, T2 = false, TC = false;
    std::string Pub = expr(/*LowOnly=*/true, T1);
    // Untainted payloads may be anything (a false flag permits secrets);
    // the tainted variant seals a low-only base so the high dependence
    // cannot cancel.
    std::string Sec = TaintPayload ? sealHigh(expr(/*LowOnly=*/true, T2))
                                   : expr(/*LowOnly=*/false, T2);
    std::string Cond = expr(/*LowOnly=*/true, TC) + " > 1";
    // Under a true flag the payload must be low; under false it may be
    // anything. The tainted variant must smuggle the secret under a true
    // flag on *both* sides of the branch: a generated low condition may be
    // statically false, and the verifier correctly discharges the joined
    // Ite argument in that case — a then-branch-only violation would make
    // the taint claim inexact.
    std::string Flag = TaintPayload ? "true" : "false";
    line("share " + R + ": RecordLog := seq_empty();");
    line("par {");
    ++Indent;
    genPacing(4);
    line("atomic " + R + " { perform " + R + ".Append(pair(true, " + Pub +
         ")); }");
    --Indent;
    line("} and {");
    ++Indent;
    line("if (" + Cond + ") {");
    ++Indent;
    line("atomic " + R + " { perform " + R + ".Append(pair(" + Flag + ", " +
         Sec + ")); }");
    --Indent;
    line("} else {");
    ++Indent;
    line("atomic " + R + " { perform " + R + ".Append(pair(" + Flag + ", " +
         Sec + ")); }");
    --Indent;
    line("}");
    --Indent;
    line("}");
    line("var " + Fin + ": seq<pair<bool, int>> := seq_empty();");
    line(Fin + " := unshare " + R + ";");
    line("var " + C + ": int := len(" + Fin + ");");
    // The abstraction is the record count, so the count is low even though
    // the record sequence itself stays secret.
    Vars.push_back({C, false});
    UsedRecordLog = true;
    ForcedReject |= TaintPayload;
  }

  std::string fresh(const char *Base) {
    return std::string(Base) + std::to_string(FreshId++);
  }

  const GenConfig &Config;
  bool ForcedReject = false;     ///< a leaky perform was emitted
  bool UseCondParam = false;     ///< main takes the conditional param `c`
  bool UsedDeclassify = false;
  bool UsedCounter = false;
  bool UsedSet = false;
  bool UsedMap = false;
  bool UsedBag = false;
  bool UsedUniquePair = false;
  bool UsedRecordLog = false;
  std::mt19937_64 Rng;
  std::vector<Var> Vars;
  /// Index of the first non-parameter entry of Vars (parameters are never
  /// assignment targets).
  size_t FirstLocal = 2;
  std::ostringstream Body;
  unsigned Indent = 1;
  unsigned FreshId = 0;
};

GeneratedProgram Generator::run() {
  GeneratedProgram Out;

  Vars.push_back({"l", false});
  Vars.push_back({"h", true});

  // The conditionally-classified parameter is tainted for pool purposes:
  // only the guarded read (genCondRead) and the deliberate sealCond leak
  // may rely on its level.
  UseCondParam = Config.EnableConditionalLevels && coin(0.5);
  if (UseCondParam)
    Vars.push_back({"c", true});
  FirstLocal = Vars.size();

  // Pre-declared locals (assignment targets).
  for (unsigned I = 0; I < Config.NumLocals; ++I) {
    std::string Name = fresh("x");
    bool T = false;
    std::string Init = expr(/*LowOnly=*/coin(0.7), T);
    line("var " + Name + ": int := " + Init + ";");
    Vars.push_back({Name, T});
  }

  bool Conc = Config.EnableConcurrency;
  for (unsigned S = 0; S < Config.TargetStatements; ++S) {
    ++Out.Statements;
    bool Leaky = Config.AllowLeakyOutput && coin(0.3);
    switch (pick(13)) {
    case 0:
    case 1:
    case 2:
      genAssign(/*ForceTaint=*/false);
      break;
    case 3:
      genLowIf();
      break;
    case 4:
      if (Config.EnableHighBranches)
        genHighIf();
      else
        genAssign(false);
      break;
    case 5:
      if (Config.EnableLoops)
        genLoop();
      else
        genAssign(false);
      break;
    case 6:
      if (Conc)
        genCounterBlock(Leaky);
      else
        genAssign(false);
      break;
    case 7:
      if (Conc && Config.EnableCollections)
        genCollectionBlock(static_cast<unsigned>(pick(3)), Leaky);
      else
        genAssign(false);
      break;
    case 8:
      if (Conc && Config.EnableUniquePar)
        genUniqueParBlock(Leaky);
      else
        genAssign(false);
      break;
    case 9:
      if (Conc && Config.EnableValueDependent)
        genValueDepBlock(Leaky);
      else
        genAssign(false);
      break;
    case 10:
      if (UseCondParam)
        genCondRead();
      else
        genAssign(false);
      break;
    case 11:
      if (Config.EnableDeclassify)
        genDeclassifyStmt();
      else
        genAssign(false);
      break;
    default:
      genAssign(Config.AllowLeakyOutput && coin(0.2));
      break;
    }
  }

  // The output. A leaky output seals a low-only base (see sealHigh /
  // sealCond): the taint verdict must be exact in both directions. The
  // conditional-parameter leak exercises the other reject path — an
  // unguarded use of a value whose level guard is statically unknown.
  bool WantLeak = Config.AllowLeakyOutput && coin();
  bool T = false;
  std::string OutExpr = expr(/*LowOnly=*/true, T);
  if (WantLeak) {
    OutExpr = UseCondParam && coin(0.4) ? sealCond(OutExpr)
                                        : sealHigh(OutExpr);
    T = true;
  }
  line("out := " + OutExpr + ";");
  Out.OutputTainted = T || ForcedReject;

  std::ostringstream Prog;
  if (UsedCounter) {
    Prog << "resource Counter {\n"
            "  state: int;\n"
            "  alpha(v) = v;\n"
            "  shared action Add(a: int) {\n"
            "    apply(v, a) = v + a;\n"
            "    requires low(a);\n"
            "  }\n"
            "}\n\n";
  }
  if (UsedSet) {
    Prog << "resource IntSet {\n"
            "  state: set<int>;\n"
            "  alpha(v) = v;\n"
            "  scope int -1 .. 1;\n"
            "  scope size 2;\n"
            "  shared action Add(a: int) {\n"
            "    apply(v, a) = set_add(v, a);\n"
            "    requires low(a);\n"
            "  }\n"
            "}\n\n";
  }
  if (UsedMap) {
    Prog << "resource Histogram {\n"
            "  state: map<int, int>;\n"
            "  alpha(v) = v;\n"
            "  scope int -1 .. 1;\n"
            "  scope size 2;\n"
            "  shared action Inc(a: int) {\n"
            "    apply(v, a) = map_put(v, a, map_get_or(v, a, 0) + 1);\n"
            "    requires low(a);\n"
            "  }\n"
            "}\n\n";
  }
  if (UsedBag) {
    Prog << "resource IntBag {\n"
            "  state: mset<int>;\n"
            "  alpha(v) = v;\n"
            "  scope int -1 .. 1;\n"
            "  scope size 2;\n"
            "  shared action Put(a: int) {\n"
            "    apply(v, a) = mset_add(v, a);\n"
            "    requires low(a);\n"
            "  }\n"
            "}\n\n";
  }
  if (UsedUniquePair) {
    Prog << "resource UniquePair {\n"
            "  state: int;\n"
            "  alpha(v) = v;\n"
            "  unique action AddL(a: int) {\n"
            "    apply(v, a) = v + a;\n"
            "    requires low(a);\n"
            "  }\n"
            "  unique action AddR(a: int) {\n"
            "    apply(v, a) = v + a;\n"
            "    requires low(a);\n"
            "  }\n"
            "}\n\n";
  }
  if (UsedRecordLog) {
    Prog << "resource RecordLog {\n"
            "  state: seq<pair<bool, int>>;\n"
            "  alpha(v) = len(v);\n"
            "  scope int -1 .. 1;\n"
            "  scope size 2;\n"
            "  shared action Append(a: pair<bool, int>) {\n"
            "    apply(v, a) = append(v, a);\n"
            "    requires low(fst(a)) && fst(a) ==> low(snd(a));\n"
            "  }\n"
            "}\n\n";
  }
  Prog << "procedure main(l: int, h: int"
       << (UseCondParam ? ", c: int" : "") << ") returns (out: int)\n"
          "  requires low(l)\n";
  if (UseCondParam)
    Prog << "  requires level(c) = if l > 0 then low else high\n";
  Prog << "  ensures low(out)\n"
          "{\n"
       << Body.str() << "}\n";
  Out.Source = Prog.str();
  return Out;
}

} // namespace

GeneratedProgram commcsl::generateProgram(const GenConfig &Config) {
  Generator G(Config);
  return G.run();
}
