//===-- rspec/Suggest.cpp - Abstraction/precondition synthesis -------------===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//

#include "rspec/Suggest.h"

#include "support/ThreadPool.h"

#include <algorithm>
#include <set>

using namespace commcsl;

namespace {

ExprRef bi(BuiltinKind K, std::vector<ExprRef> Args) {
  return Expr::builtin(K, std::move(Args));
}

/// Candidate abstractions for a value of type \p T denoted by \p V,
/// ordered most-revealing first. The constant abstraction is appended only
/// at the top level (a constant component inside a pair adds nothing).
std::vector<ExprRef> candidatesFor(const TypeRef &T, const ExprRef &V,
                                   unsigned Depth) {
  std::vector<ExprRef> Out;
  Out.push_back(V); // identity: reveal the component exactly
  if (!T || Depth > 2)
    return Out;
  switch (T->kind()) {
  case TypeKind::Seq: {
    // Order-forgetting views first — they are what make concurrent appends
    // commute — then the pure size.
    Out.push_back(bi(BuiltinKind::SeqToMs, {V->clone()}));
    Out.push_back(bi(BuiltinKind::SeqToSet, {V->clone()}));
    if (T->first() && T->first()->isInt()) {
      Out.push_back(bi(BuiltinKind::SeqSum, {V->clone()}));
      Out.push_back(bi(BuiltinKind::PairMk,
                       {bi(BuiltinKind::SeqSum, {V->clone()}),
                        bi(BuiltinKind::SeqLen, {V->clone()})}));
    }
    Out.push_back(bi(BuiltinKind::SeqLen, {V->clone()}));
    break;
  }
  case TypeKind::Set:
    Out.push_back(bi(BuiltinKind::SetSize, {V->clone()}));
    break;
  case TypeKind::Multiset:
    Out.push_back(bi(BuiltinKind::MsCard, {V->clone()}));
    break;
  case TypeKind::Map:
    Out.push_back(bi(BuiltinKind::MapDom, {V->clone()}));
    Out.push_back(bi(BuiltinKind::MapSize, {V->clone()}));
    break;
  case TypeKind::Pair: {
    // Componentwise products, row-major so earlier (more revealing) left
    // components rank first; then the bare projections.
    std::vector<ExprRef> Fst = candidatesFor(
        T->first(), bi(BuiltinKind::Fst, {V->clone()}), Depth + 1);
    std::vector<ExprRef> Snd = candidatesFor(
        T->second(), bi(BuiltinKind::Snd, {V->clone()}), Depth + 1);
    for (const ExprRef &A : Fst)
      for (const ExprRef &B : Snd) {
        if (A->Kind == ExprKind::Builtin && A->Builtin == BuiltinKind::Fst &&
            B->Kind == ExprKind::Builtin && B->Builtin == BuiltinKind::Snd)
          continue; // pair(fst(v), snd(v)) is the identity already emitted
        Out.push_back(bi(BuiltinKind::PairMk, {A->clone(), B->clone()}));
      }
    Out.push_back(bi(BuiltinKind::Fst, {V->clone()}));
    Out.push_back(bi(BuiltinKind::Snd, {V->clone()}));
    break;
  }
  default:
    break;
  }
  if (Depth == 0)
    Out.push_back(Expr::intLit(0)); // reveal nothing
  return Out;
}

/// True when the action's precondition already demands an unconditionally
/// low argument.
bool hasLowArgPre(const ActionDecl &A) {
  for (const ContractAtom &At : A.Pre)
    if (At.AtomKind == ContractAtom::Kind::Low && !At.Cond && At.E &&
        At.E->Kind == ExprKind::Var && At.E->Name == A.ArgName)
      return true;
  return false;
}

} // namespace

SuggestResult commcsl::suggestSpec(const ResourceSpecDecl &Spec,
                                   const Program &Prog,
                                   const SuggestOptions &Opts) {
  SuggestResult Res;
  Res.SpecName = Spec.Name;

  std::vector<std::string> Missing; // actions lacking low(arg)
  for (const ActionDecl &A : Spec.Actions)
    if (!hasLowArgPre(A))
      Missing.push_back(A.Name);

  // Candidate list: the spec exactly as declared first, then every
  // template alpha, each with the declared preconditions and (when some
  // action lacks it) with `low(arg)` added across the board.
  struct Candidate {
    ExprRef Alpha;
    bool AddLow = false;
    bool Declared = false;
  };
  std::vector<Candidate> Cands;
  std::set<std::pair<std::string, bool>> Seen;
  auto push = [&](ExprRef Alpha, bool AddLow, bool Declared) {
    if (!Alpha)
      return;
    if (!Seen.insert({Alpha->str(), AddLow}).second)
      return;
    Cands.push_back({std::move(Alpha), AddLow, Declared});
  };
  push(Spec.Alpha, false, true);
  if (!Missing.empty())
    push(Spec.Alpha ? Spec.Alpha->clone() : nullptr, true, false);
  ExprRef V = Expr::var(Spec.AlphaParam);
  for (const ExprRef &Alpha : candidatesFor(Spec.StateTy, V, 0)) {
    push(Alpha->clone(), false, false);
    if (!Missing.empty())
      push(Alpha->clone(), true, false);
  }
  if (Opts.MaxCandidates != 0 && Cands.size() > Opts.MaxCandidates) {
    Cands.resize(Opts.MaxCandidates);
    Res.Truncated = true;
  }

  // Evaluate candidates in parallel, each writing to its generation index:
  // the ranked report is a pure function of the candidate list, so it is
  // byte-identical at any job count. Candidate specs are rebuilt per item —
  // RSpecRuntime and ValidityChecker are not shared across threads.
  Res.Ranked.resize(Cands.size());
  ThreadPool::shared().parallelForChunks(
      Cands.size(), ThreadPool::effectiveJobs(Opts.Jobs),
      [&](uint64_t Begin, uint64_t End, unsigned) {
        for (uint64_t I = Begin; I < End; ++I) {
          const Candidate &C = Cands[I];
          ResourceSpecDecl Mod = Spec; // shallow copy shares immutable exprs
          Mod.Alpha = C.Alpha;
          if (C.AddLow)
            for (ActionDecl &A : Mod.Actions)
              if (!hasLowArgPre(A))
                A.Pre.push_back(ContractAtom::low(Expr::var(A.ArgName)));

          RSpecRuntime Rt(Mod, &Prog);
          ValidityChecker Checker(Rt, Opts.Validity);
          ValidityResult R = Checker.check();

          SpecSuggestion S;
          S.AlphaText = C.Alpha->str();
          if (C.AddLow)
            S.LowPreAdded = Missing;
          S.Declared = C.Declared;
          S.Valid = R.Valid;
          S.Unbounded = R.Unbounded;
          S.BoundedChecks = R.BoundedChecks;
          S.RandomChecks = R.RandomChecks;
          S.Index = static_cast<unsigned>(I);
          Res.Ranked[I] = std::move(S);
        }
      });
  Res.CandidatesTried = Cands.size();

  std::stable_sort(Res.Ranked.begin(), Res.Ranked.end(),
                   [](const SpecSuggestion &A, const SpecSuggestion &B) {
                     if (A.Unbounded != B.Unbounded)
                       return A.Unbounded;
                     if (A.Valid != B.Valid)
                       return A.Valid;
                     if (A.LowPreAdded.empty() != B.LowPreAdded.empty())
                       return A.LowPreAdded.empty();
                     return A.Index < B.Index;
                   });
  return Res;
}

std::string commcsl::renderSuggestReport(
    const Program &Prog, const std::vector<SuggestResult> &Results,
    const std::string &Name) {
  std::string Out;
  for (const SuggestResult &R : Results) {
    std::string Param = "v";
    for (const ResourceSpecDecl &S : Prog.Specs)
      if (S.Name == R.SpecName)
        Param = S.AlphaParam;
    Out += Name + ": spec '" + R.SpecName + "': tried " +
           std::to_string(R.CandidatesTried) + " candidates";
    if (R.Truncated)
      Out += " (truncated)";
    Out += "\n";
    unsigned N = 0;
    for (const SpecSuggestion &S : R.Ranked) {
      Out += "  " + std::to_string(++N) + ". alpha(" + Param + ") = ";
      Out += S.AlphaText;
      if (!S.LowPreAdded.empty()) {
        Out += ", +low(arg) on ";
        for (size_t I = 0; I < S.LowPreAdded.size(); ++I) {
          if (I)
            Out += ", ";
          Out += S.LowPreAdded[I];
        }
      }
      if (S.Declared)
        Out += " [declared]";
      Out += S.Unbounded ? " -- valid (unbounded)"
                         : (S.Valid ? " -- valid (bounded evidence)"
                                    : " -- invalid");
      Out += "\n";
    }
  }
  return Out;
}
