//===-- rspec/RSpec.h - Runtime resource specifications ---------*- C++ -*-===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runtime view of a resource specification (Sec. 2.4 / 3.2): concrete
/// evaluation of the abstraction function `alpha`, the action functions
/// `f_a`, optional action result functions, and the *relational* action
/// preconditions `pre_a(arg, arg')`.
///
//===----------------------------------------------------------------------===//

#ifndef COMMCSL_RSPEC_RSPEC_H
#define COMMCSL_RSPEC_RSPEC_H

#include "lang/ExprEval.h"
#include "lang/Program.h"
#include "rspec/EvalCache.h"
#include "value/Value.h"

#include <memory>

namespace commcsl {

/// Evaluates a resource specification's functions on concrete values.
/// The declaration must be type-checked.
///
/// An optional `SpecEvalCache` memoizes the two hot calls, `alphaOf` and
/// `applyAction` (both pure). Copies of a runtime share the attached cache;
/// without one, every call evaluates through the expression interpreter.
class RSpecRuntime {
public:
  RSpecRuntime(const ResourceSpecDecl &Decl, const Program *Prog,
               std::shared_ptr<SpecEvalCache> Cache = nullptr)
      : Decl(Decl), Prog(Prog), Eval(Prog), Cache(std::move(Cache)) {}

  const ResourceSpecDecl &decl() const { return Decl; }

  /// The enclosing program (for inlining user functions in static tiers);
  /// may be null when the spec was built without one.
  const Program *program() const { return Prog; }

  /// Attaches (or detaches, with null) a memoization cache.
  void attachCache(std::shared_ptr<SpecEvalCache> C) { Cache = std::move(C); }
  const std::shared_ptr<SpecEvalCache> &cache() const { return Cache; }

  /// Stats of the attached cache (zeros when none is attached).
  CacheStats cacheStats() const {
    return Cache ? Cache->stats() : CacheStats{};
  }

  /// alpha(v).
  ValueRef alphaOf(const ValueRef &State) const;

  /// f_a(v, arg). \p Action must name a declared action.
  ValueRef applyAction(const ActionDecl &Action, const ValueRef &State,
                       const ValueRef &Arg) const;

  /// The action's result value on the *pre*-state, or unit if the action
  /// declares no returns clause.
  ValueRef actionResult(const ActionDecl &Action, const ValueRef &State,
                        const ValueRef &Arg) const;

  /// The relational precondition pre_a(arg1, arg2) (Sec. 3.2): `low(e)`
  /// atoms require e(arg1) == e(arg2); boolean atoms must hold of the
  /// argument in each execution; `c ==> low(e)` requires c to agree in both
  /// and, when true, e to agree.
  bool preHolds(const ActionDecl &Action, const ValueRef &Arg1,
                const ValueRef &Arg2) const;

  /// Unary projection of the precondition: whether \p Arg could legally be
  /// used in some execution pair (i.e. pre_a(Arg, Arg) holds). Useful for
  /// input generation and for the commutativity check's argument filter.
  bool preHoldsUnary(const ActionDecl &Action, const ValueRef &Arg) const {
    return preHolds(Action, Arg, Arg);
  }

  /// Whether the action is enabled in \p State (true if no enabled clause).
  bool isEnabled(const ActionDecl &Action, const ValueRef &State) const;

  /// Whether the spec's well-formedness invariant holds of \p State (true
  /// if no inv clause).
  bool invHolds(const ValueRef &State) const;

  /// The action's return-history function on \p State; only valid when the
  /// action declares one.
  ValueRef historyOf(const ActionDecl &Action, const ValueRef &State) const;

private:
  ValueRef evalAlpha(const ValueRef &State) const;
  ValueRef evalAction(const ActionDecl &Action, const ValueRef &State,
                      const ValueRef &Arg) const;

  const ResourceSpecDecl &Decl;
  const Program *Prog;
  ExprEvaluator Eval;
  std::shared_ptr<SpecEvalCache> Cache;
};

} // namespace commcsl

#endif // COMMCSL_RSPEC_RSPEC_H
