//===-- rspec/Validity.h - Resource-spec validity (Def. 3.1) ----*- C++ -*-===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Checks validity of a resource specification per Def. 3.1 of the paper:
///
///   (A) every action's relational precondition preserves low-ness of the
///       abstract view:  alpha(v) = alpha(v') and pre_a(arg, arg')  imply
///       alpha(f_a(v, arg)) = alpha(f_a(v', arg'));
///   (B) all relevant action pairs commute modulo alpha: for the shared
///       actions paired with everything (including themselves) and unique
///       actions paired with everything except themselves,
///       alpha(v) = alpha(v') implies
///       alpha(f_b(f_a(v, arg), arg')) = alpha(f_a(f_b(v', arg'), arg)).
///
/// The paper discharges these quantified properties with Z3 via Viper; this
/// implementation replaces that with three checking tiers over the pure
/// value domain: the differencing abstract interpreter (src/absint, DESIGN
/// §13), which proves obligations for *unbounded* state/argument domains;
/// bounded-exhaustive enumeration within the spec's declared scope
/// (complete for refutation in scope); and randomized sampling beyond it.
/// Obligations the abstract tier proves are skipped by the concrete tiers;
/// everything it leaves inconclusive (or merely hints is refutable) falls
/// through to them, so reported counterexamples are always concrete.
/// Invalid specifications are refuted with a concrete counterexample.
///
//===----------------------------------------------------------------------===//

#ifndef COMMCSL_RSPEC_VALIDITY_H
#define COMMCSL_RSPEC_VALIDITY_H

#include "absint/Differencing.h"
#include "rspec/RSpec.h"
#include "value/Domain.h"

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <optional>
#include <string>

namespace commcsl {

/// Cooperative wall-clock/step budget shared by every validity check one
/// service request runs. The concrete tiers consult it at instance and
/// chunk boundaries, so exhaustion drains gracefully: work already
/// dispatched to pool workers finishes, no new work starts, and nothing is
/// torn down. Memoized evaluation is pure, so entries a cut-short check
/// already wrote into the warm spec caches stay correct — a timeout never
/// requires (or performs) any cache invalidation.
///
/// Steps are concrete check instances (the same unit as BoundedChecks +
/// RandomChecks). The step cap is an atomic counter; the deadline is
/// polled only every few hundred instances because `now()` dwarfs a
/// dense-table instance check.
class CheckBudget {
public:
  /// Either bound may be 0 (unlimited). A budget with both 0 never fires.
  CheckBudget(uint64_t BudgetMs, uint64_t MaxSteps)
      : MaxSteps(MaxSteps), HasDeadline(BudgetMs != 0),
        Deadline(std::chrono::steady_clock::now() +
                 std::chrono::milliseconds(BudgetMs)) {}

  /// Charges \p N check instances; true when the step cap is now exceeded.
  bool charge(uint64_t N) {
    if (Steps.fetch_add(N, std::memory_order_relaxed) + N > MaxSteps &&
        MaxSteps != 0) {
      Fired.store(true, std::memory_order_relaxed);
      return true;
    }
    return false;
  }

  /// True when the wall-clock deadline has passed.
  bool expired() const {
    if (!HasDeadline)
      return false;
    if (std::chrono::steady_clock::now() < Deadline)
      return false;
    Fired.store(true, std::memory_order_relaxed);
    return true;
  }

  /// True when either bound has been hit (does not advance the counter).
  bool exhausted() const {
    if (MaxSteps != 0 &&
        Steps.load(std::memory_order_relaxed) >= MaxSteps) {
      Fired.store(true, std::memory_order_relaxed);
      return true;
    }
    return expired();
  }

  /// True once any bound has ever been observed exhausted — the caller's
  /// "this request timed out" signal, sticky across checks.
  bool fired() const { return Fired.load(std::memory_order_relaxed); }

  uint64_t steps() const { return Steps.load(std::memory_order_relaxed); }

private:
  uint64_t MaxSteps;
  bool HasDeadline;
  std::chrono::steady_clock::time_point Deadline;
  mutable std::atomic<uint64_t> Steps{0};
  mutable std::atomic<bool> Fired{false};
};

/// Budgets for the validity checker's tiers.
struct ValidityConfig {
  /// Cap on enumerated resource states.
  size_t MaxStates = 300;
  /// Cap on enumerated action arguments.
  size_t MaxArgs = 50;
  /// Budget of (state-pair, arg-pair) checks per property instance.
  uint64_t MaxChecksPerProperty = 150000;
  /// Number of random samples in the randomized tier.
  unsigned RandomRounds = 1500;
  uint64_t Seed = 0xC0FFEEULL;
  bool RunBoundedTier = true;
  bool RunRandomTier = true;
  /// Run the differencing abstract interpreter first and skip the concrete
  /// tiers for every obligation it proves over the unbounded domain. The
  /// analysis is pure and deterministic, so the verdict and reported
  /// counterexamples are identical with the tier on or off — only
  /// BoundedChecks/RandomChecks (fewer obligations reach them) and the
  /// Absint* counters change.
  bool RunAbsintTier = true;
  /// Budgets and fault-injection knobs for the abstract tier.
  absint::AbsOptions Absint;
  /// Optional cooperative request budget. When it fires, the concrete
  /// tiers stop early and the result comes back TimedOut (Valid = false,
  /// no counterexample) — inconclusive, not refuted. Null = unlimited.
  std::shared_ptr<CheckBudget> Budget;
  /// Worker threads for the bounded tier's instance space. 0 = hardware
  /// concurrency; 1 = fully sequential (no pool involvement). The verdict,
  /// counterexample, and check counts are identical at every setting: the
  /// surviving counterexample is always the one with the lowest global
  /// instance index.
  unsigned Jobs = 0;
  /// Memoize alpha/action evaluations in a per-checker concurrent cache.
  /// Evaluation is pure, so the verdict, counterexample, and check counts
  /// are bit-identical with memoization on or off; only speed (and the
  /// diagnostic cache counters in ValidityResult) changes.
  bool Memoize = true;
  /// Capacity bound of the memo cache (entries across both tables).
  size_t MemoMaxEntries = SpecEvalCache::DefaultMaxEntries;
};

/// A concrete refutation of validity.
struct ValidityCounterexample {
  enum class Property { Precondition, Commutativity, History, Invariant };
  Property Prop = Property::Commutativity;
  std::string ActionA;
  std::string ActionB; ///< empty for Precondition
  ValueRef V1, V2;     ///< states with equal abstraction
  ValueRef Arg1, Arg2;
  ValueRef AlphaLeft, AlphaRight; ///< the differing abstract results

  /// Human-readable description, used in diagnostics.
  std::string describe() const;
};

/// Outcome of a validity check.
struct ValidityResult {
  bool Valid = true;
  std::optional<ValidityCounterexample> CE;
  uint64_t BoundedChecks = 0;
  uint64_t RandomChecks = 0;
  /// Abstract-tier obligations attempted / proved for the property (one A'
  /// obligation per action, one B1 obligation per relevant pair).
  uint64_t AbsintObligations = 0;
  uint64_t AbsintProved = 0;
  /// Rewrite steps and case splits the abstract analysis spent. The whole
  /// spec is analyzed once (lazily); its cost is attributed to the first
  /// property that ran.
  uint64_t AbsintSteps = 0;
  uint64_t AbsintSplits = 0;
  /// True when the property (for `check()`: the whole spec) was proved for
  /// the *unbounded* state/argument domains — every obligation discharged
  /// by the abstract tier, with no history/invariant clauses left to the
  /// simulation tier. A bounded-only pass never sets this.
  bool Unbounded = false;
  /// True when ValidityConfig::Budget fired and cut the check short. The
  /// verdict is then inconclusive: Valid is false but CE is unset (a
  /// timeout is not a refutation). Counters hold whatever the partial run
  /// accumulated.
  bool TimedOut = false;
  /// The abstract analysis behind the Absint* counters, for certificate
  /// emission; null when the tier was off or never ran.
  std::shared_ptr<const absint::SpecAbsResult> Absint;
  /// Wall-clock duration of the check.
  double WallSeconds = 0;
  /// Aggregate time spent by all workers (>= WallSeconds when parallel);
  /// CpuSeconds / WallSeconds approximates the realized speedup.
  double CpuSeconds = 0;
  /// Memo-cache counters for this check (zeros when Memoize is off).
  /// Diagnostic only: hit/miss splits may vary with thread interleaving.
  CacheStats Cache;
};

/// Runs the Def. 3.1 checks for one resource specification.
class ValidityChecker {
public:
  ValidityChecker(const RSpecRuntime &Runtime, ValidityConfig Config = {});

  /// Checks both properties; stops at the first counterexample.
  ValidityResult check();

  /// Property (A) only.
  ValidityResult checkPreconditions();

  /// Property (B) only.
  ValidityResult checkCommutativity();

  /// Coherence of declared `history` clauses: simulates random sequences of
  /// enabled actions and checks that, for every unique action with a
  /// history clause, history(v) always equals history(v0) extended by the
  /// returns the action actually produced.
  ValidityResult checkHistoryCoherence();

private:
  struct Universe {
    std::vector<ValueRef> States;
    /// Indices of state pairs (I, J) with equal abstraction, I <= J.
    std::vector<std::pair<size_t, size_t>> AlphaPairs;
    std::vector<ValueRef> Args; ///< per-action argument enumerations
  };

  /// Enumerates states and same-alpha state pairs.
  void buildStateUniverse();
  std::vector<ValueRef> argsFor(const ActionDecl &A) const;

  /// Runs the abstract tier once per checker (lazily) and caches the
  /// result; returns null when Config.RunAbsintTier is off or the runtime
  /// has no program. Also folds the analysis-wide step/split counters into
  /// \p R the first time it is called.
  const absint::SpecAbsResult *absintResult(ValidityResult &R);

  bool checkPreInstance(const ActionDecl &A, const ValueRef &V1,
                        const ValueRef &V2, const ValueRef &Arg1,
                        const ValueRef &Arg2, ValidityResult &R);
  bool checkCommInstance(const ActionDecl &A, const ActionDecl &B,
                         const ValueRef &V1, const ValueRef &V2,
                         const ValueRef &ArgA, const ValueRef &ArgB,
                         ValidityResult &R);

  /// Records a property (A) counterexample with the already-computed
  /// abstract results \p L / \p Rt (shared by the direct and dense-table
  /// instance paths, so both produce bit-identical reports).
  void failPre(const ActionDecl &A, const ValueRef &V1, const ValueRef &V2,
               const ValueRef &Arg1, const ValueRef &Arg2, const ValueRef &L,
               const ValueRef &Rt, ValidityResult &R);
  /// Property (B) analogue of failPre.
  void failComm(const ActionDecl &A, const ActionDecl &B, const ValueRef &V1,
                const ValueRef &V2, const ValueRef &ArgA, const ValueRef &ArgB,
                const ValueRef &L, const ValueRef &Rt, ValidityResult &R);

  /// Total weight of the same-alpha state-pair list (diagonal pairs count
  /// one orientation, off-diagonal pairs two); the bounded-tier instance
  /// space for a property is this times its argument-pair count.
  uint64_t weightedPairTotal() const;

  /// Dense property (A) result table: cell [s * Args.size() + a] holds
  /// alpha(f_A(States[s], Args[a])). Built in parallel; every bounded-tier
  /// instance then reduces to two array loads and an interned-pointer
  /// comparison instead of two memo-cache probes.
  std::vector<ValueRef> buildPreTable(const ActionDecl &A,
                                      const std::vector<ValueRef> &Args);

  /// Dense property (B) result tables, both laid out [s][argA][argB]:
  /// TAB holds alpha(f_B(f_A(s, argA), argB)) and TBA holds
  /// alpha(f_A(f_B(s, argB), argA)). Row-major build order lets each row
  /// share the one-action intermediate state across the inner loop.
  void buildCommTables(const ActionDecl &A, const ActionDecl &B,
                       const std::vector<ValueRef> &ArgsA,
                       const std::vector<ValueRef> &ArgsB,
                       std::vector<ValueRef> &TAB, std::vector<ValueRef> &TBA);

  /// Checks one flattened bounded-tier instance: state pair \p StatePair
  /// (swapped orientation when \p Swapped), argument pair \p ArgPair.
  /// Returns false and fills \p Out with a counterexample on failure.
  using BoundedInstanceCheck = std::function<bool(
      size_t StatePair, size_t ArgPair, bool Swapped, ValidityResult &Out)>;

  /// Runs one property's bounded tier over the (same-alpha state pair x
  /// argument pair x orientation) instance space, sharded across the shared
  /// thread pool. Every instance consumes one unit of MaxChecksPerProperty.
  /// Deterministic at any job count: the reported counterexample is the one
  /// with the lowest global instance index, and BoundedChecks advances by
  /// exactly the number of instances the sequential checker would have
  /// visited. Returns true when a counterexample was recorded in \p R.
  /// \p ParWall / \p ParCpu accumulate the region's wall and aggregate
  /// worker time.
  bool runBoundedTier(size_t NumArgPairs, const BoundedInstanceCheck &Check,
                      ValidityResult &R, double &ParWall, double &ParCpu);

  /// Private copy of the caller's runtime; the constructor attaches a memo
  /// cache to it when Config.Memoize is set (and the caller didn't already
  /// attach one), leaving the caller's runtime untouched.
  RSpecRuntime Runtime;
  ValidityConfig Config;
  Type::ScopeParams Scope;

  std::vector<ValueRef> States;
  std::vector<std::pair<size_t, size_t>> SameAlphaPairs;

  /// Lazily-run abstract analysis shared by both properties.
  std::shared_ptr<const absint::SpecAbsResult> Abs;
  bool AbsRan = false;
  bool AbsCostFlushed = false;
};

/// Returns the relevant commuting pairs per Def. 3.1 (B): indices (I, J)
/// into the spec's action list with I <= J, excluding (U, U) for unique U.
std::vector<std::pair<size_t, size_t>>
relevantActionPairs(const ResourceSpecDecl &Spec);

} // namespace commcsl

#endif // COMMCSL_RSPEC_VALIDITY_H
