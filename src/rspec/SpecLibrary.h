//===-- rspec/SpecLibrary.h - Reusable resource specifications --*- C++ -*-===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A library of ready-made, validity-checked resource specifications for
/// the data-structure/abstraction combinations of the paper's evaluation
/// (Table 1). Each entry is a self-contained, type-checked Program holding
/// one resource specification; the paper's point that one specification
/// serves many client programs and implementations (Sec. 2.4) is reflected
/// here: the same `intSet()` spec backs both set examples, and `pcQueue()`
/// backs both queue patterns.
///
/// Usage:
/// \code
///   const SpecTemplate &T = SpecTemplate::mapKeySet();
///   RSpecRuntime Runtime(T.spec(), &T.program());
///   ValidityChecker Checker(Runtime);
///   assert(Checker.check().Valid);
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef COMMCSL_RSPEC_SPECLIBRARY_H
#define COMMCSL_RSPEC_SPECLIBRARY_H

#include "lang/Program.h"
#include "rspec/RSpec.h"

#include <string>
#include <vector>

namespace commcsl {

/// One parsed and type-checked specification template. Instances are
/// static singletons; references remain valid for the program lifetime.
class SpecTemplate {
public:
  /// Shared counter with `Add(a)`, identity abstraction, low argument.
  static const SpecTemplate &counterAdd();
  /// Shared counter with argument-less `Inc`, identity abstraction.
  static const SpecTemplate &counterIncrement();
  /// Integer cell with arbitrary `Set(a)` and the constant abstraction
  /// (nothing leaks) — the accepted Fig. 1 variant.
  static const SpecTemplate &blindCell();
  /// Set of ints with low `Add(a)`, identity abstraction.
  static const SpecTemplate &intSet();
  /// Map put with the key-set abstraction (Fig. 4 left).
  static const SpecTemplate &mapKeySet();
  /// Map increment-value (Salary-Histogram), identity abstraction.
  static const SpecTemplate &mapIncrement();
  /// Map add-to-value (Count-Purchases), identity abstraction.
  static const SpecTemplate &mapAddValue();
  /// Map conditional max-put (Most-Valuable-Purchase), identity
  /// abstraction.
  static const SpecTemplate &mapPutMax();
  /// List append with the multiset abstraction (Email-Metadata).
  static const SpecTemplate &listAppendMultiset();
  /// List append with the length abstraction (Patient-Statistic); the
  /// appended values may be entirely high.
  static const SpecTemplate &listAppendLength();
  /// List-of-pairs append maintaining a (sum, count) ghost aggregate
  /// (Mean-Salary / Debt-Sum family).
  static const SpecTemplate &listAppendSumCount();
  /// Single-producer single-consumer queue with ghost totalization,
  /// enabledness, and return history (App. D / Fig. 12).
  static const SpecTemplate &pcQueue();
  /// Multi-producer multi-consumer queue with the produced-multiset
  /// abstraction.
  static const SpecTemplate &mpmcQueue();

  /// All templates, for sweep-style tests and benches.
  static std::vector<const SpecTemplate *> all();

  const Program &program() const { return Prog; }
  const ResourceSpecDecl &spec() const { return Prog.Specs.front(); }
  const std::string &name() const { return spec().Name; }

  /// Convenience: a runtime bound to this template.
  RSpecRuntime runtime() const { return RSpecRuntime(spec(), &Prog); }

private:
  explicit SpecTemplate(const char *Source);
  Program Prog;
};

} // namespace commcsl

#endif // COMMCSL_RSPEC_SPECLIBRARY_H
