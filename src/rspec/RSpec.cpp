//===-- rspec/RSpec.cpp - Runtime resource specifications ------------------===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//

#include "rspec/RSpec.h"

using namespace commcsl;

ValueRef RSpecRuntime::evalAlpha(const ValueRef &State) const {
  EvalEnv Env;
  Env[Decl.AlphaParam] = State;
  return Eval.eval(*Decl.Alpha, Env);
}

ValueRef RSpecRuntime::alphaOf(const ValueRef &State) const {
  if (Cache)
    return Cache->alpha(State, [&] { return evalAlpha(State); });
  return evalAlpha(State);
}

ValueRef RSpecRuntime::evalAction(const ActionDecl &Action,
                                  const ValueRef &State,
                                  const ValueRef &Arg) const {
  EvalEnv Env;
  Env[Action.StateName] = State;
  Env[Action.ArgName] = Arg;
  return Eval.eval(*Action.Apply, Env);
}

ValueRef RSpecRuntime::applyAction(const ActionDecl &Action,
                                   const ValueRef &State,
                                   const ValueRef &Arg) const {
  if (Cache)
    return Cache->action(Action, State, Arg,
                         [&] { return evalAction(Action, State, Arg); });
  return evalAction(Action, State, Arg);
}

ValueRef RSpecRuntime::actionResult(const ActionDecl &Action,
                                    const ValueRef &State,
                                    const ValueRef &Arg) const {
  if (!Action.Returns)
    return ValueFactory::unit();
  EvalEnv Env;
  Env[Action.StateName] = State;
  Env[Action.ArgName] = Arg;
  return Eval.eval(*Action.Returns, Env);
}

bool RSpecRuntime::isEnabled(const ActionDecl &Action,
                             const ValueRef &State) const {
  if (!Action.Enabled)
    return true;
  EvalEnv Env;
  Env[Action.StateName] = State;
  return Eval.eval(*Action.Enabled, Env)->getBool();
}

bool RSpecRuntime::invHolds(const ValueRef &State) const {
  if (!Decl.Inv)
    return true;
  EvalEnv Env;
  Env[Decl.AlphaParam] = State;
  return Eval.eval(*Decl.Inv, Env)->getBool();
}

ValueRef RSpecRuntime::historyOf(const ActionDecl &Action,
                                 const ValueRef &State) const {
  assert(Action.History && "action has no history clause");
  EvalEnv Env;
  Env[Action.StateName] = State;
  return Eval.eval(*Action.History, Env);
}

bool RSpecRuntime::preHolds(const ActionDecl &Action, const ValueRef &Arg1,
                            const ValueRef &Arg2) const {
  EvalEnv Env1, Env2;
  Env1[Action.ArgName] = Arg1;
  Env2[Action.ArgName] = Arg2;
  for (const ContractAtom &A : Action.Pre) {
    switch (A.AtomKind) {
    case ContractAtom::Kind::Low: {
      if (A.Cond) {
        ValueRef C1 = Eval.eval(*A.Cond, Env1);
        ValueRef C2 = Eval.eval(*A.Cond, Env2);
        if (!Value::equal(C1, C2))
          return false;
        if (!C1->getBool())
          break; // condition false in both: nothing required
      }
      ValueRef V1 = Eval.eval(*A.E, Env1);
      ValueRef V2 = Eval.eval(*A.E, Env2);
      if (!Value::equal(V1, V2))
        return false;
      break;
    }
    case ContractAtom::Kind::Bool: {
      if (!Eval.eval(*A.E, Env1)->getBool())
        return false;
      if (!Eval.eval(*A.E, Env2)->getBool())
        return false;
      break;
    }
    case ContractAtom::Kind::SGuard:
    case ContractAtom::Kind::UGuard:
    case ContractAtom::Kind::AllPre:
      // Rejected by the type checker in action preconditions.
      break;
    }
  }
  return true;
}
