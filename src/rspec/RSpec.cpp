//===-- rspec/RSpec.cpp - Runtime resource specifications ------------------===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//

#include "rspec/RSpec.h"

using namespace commcsl;

namespace {

/// Per-thread scratch environment for spec-function evaluation. The spec
/// functions are evaluated millions of times on the interpreter's hot path,
/// and each call binds one or two parameters; reusing one environment per
/// thread avoids re-allocating the key strings on every call. Safe because
/// type-checked spec expressions can reference only their declared
/// parameters (the type checker rejects undeclared variables), and
/// `truncate` makes any stale deeper slots unobservable.
EvalEnv &specScratch() {
  static thread_local EvalEnv Env;
  return Env;
}

/// Binds scratch slot \p I to (\p K, \p V). When the slot already carries
/// key \p K (the common case: the same spec function is evaluated over and
/// over), only the value is assigned — no string copy, no scan. Otherwise
/// the stale tail is dropped and the binding goes through `operator[]`,
/// which preserves the original map semantics (a key duplicated across
/// parameters overwrites the earlier binding).
void bindSlot(EvalEnv &Env, size_t I, const std::string &K,
              const ValueRef &V) {
  if (I < Env.size()) {
    EvalEnv::value_type &Slot = Env.begin()[I];
    if (envKeyEq(Slot.first, K)) {
      Slot.second = V;
      return;
    }
    Env.truncate(I);
  }
  Env[K] = V;
}

} // namespace

ValueRef RSpecRuntime::evalAlpha(const ValueRef &State) const {
  EvalEnv &Env = specScratch();
  bindSlot(Env, 0, Decl.AlphaParam, State);
  Env.truncate(1);
  return Eval.eval(*Decl.Alpha, Env);
}

ValueRef RSpecRuntime::alphaOf(const ValueRef &State) const {
  if (Cache)
    return Cache->alpha(State, [&] { return evalAlpha(State); });
  return evalAlpha(State);
}

ValueRef RSpecRuntime::evalAction(const ActionDecl &Action,
                                  const ValueRef &State,
                                  const ValueRef &Arg) const {
  EvalEnv &Env = specScratch();
  bindSlot(Env, 0, Action.StateName, State);
  bindSlot(Env, 1, Action.ArgName, Arg);
  Env.truncate(2);
  return Eval.eval(*Action.Apply, Env);
}

ValueRef RSpecRuntime::applyAction(const ActionDecl &Action,
                                   const ValueRef &State,
                                   const ValueRef &Arg) const {
  if (Cache)
    return Cache->action(Action, State, Arg,
                         [&] { return evalAction(Action, State, Arg); });
  return evalAction(Action, State, Arg);
}

ValueRef RSpecRuntime::actionResult(const ActionDecl &Action,
                                    const ValueRef &State,
                                    const ValueRef &Arg) const {
  if (!Action.Returns)
    return ValueFactory::unit();
  EvalEnv &Env = specScratch();
  bindSlot(Env, 0, Action.StateName, State);
  bindSlot(Env, 1, Action.ArgName, Arg);
  Env.truncate(2);
  return Eval.eval(*Action.Returns, Env);
}

bool RSpecRuntime::isEnabled(const ActionDecl &Action,
                             const ValueRef &State) const {
  if (!Action.Enabled)
    return true;
  EvalEnv &Env = specScratch();
  bindSlot(Env, 0, Action.StateName, State);
  Env.truncate(1);
  return Eval.eval(*Action.Enabled, Env)->getBool();
}

bool RSpecRuntime::invHolds(const ValueRef &State) const {
  if (!Decl.Inv)
    return true;
  EvalEnv &Env = specScratch();
  bindSlot(Env, 0, Decl.AlphaParam, State);
  Env.truncate(1);
  return Eval.eval(*Decl.Inv, Env)->getBool();
}

ValueRef RSpecRuntime::historyOf(const ActionDecl &Action,
                                 const ValueRef &State) const {
  assert(Action.History && "action has no history clause");
  EvalEnv &Env = specScratch();
  bindSlot(Env, 0, Action.StateName, State);
  Env.truncate(1);
  return Eval.eval(*Action.History, Env);
}

bool RSpecRuntime::preHolds(const ActionDecl &Action, const ValueRef &Arg1,
                            const ValueRef &Arg2) const {
  EvalEnv Env1, Env2;
  Env1[Action.ArgName] = Arg1;
  Env2[Action.ArgName] = Arg2;
  for (const ContractAtom &A : Action.Pre) {
    switch (A.AtomKind) {
    case ContractAtom::Kind::Low: {
      if (A.Cond) {
        ValueRef C1 = Eval.eval(*A.Cond, Env1);
        ValueRef C2 = Eval.eval(*A.Cond, Env2);
        if (!Value::equal(C1, C2))
          return false;
        if (!C1->getBool())
          break; // condition false in both: nothing required
      }
      ValueRef V1 = Eval.eval(*A.E, Env1);
      ValueRef V2 = Eval.eval(*A.E, Env2);
      if (!Value::equal(V1, V2))
        return false;
      break;
    }
    case ContractAtom::Kind::Bool: {
      if (!Eval.eval(*A.E, Env1)->getBool())
        return false;
      if (!Eval.eval(*A.E, Env2)->getBool())
        return false;
      break;
    }
    case ContractAtom::Kind::SGuard:
    case ContractAtom::Kind::UGuard:
    case ContractAtom::Kind::AllPre:
      // Rejected by the type checker in action preconditions.
      break;
    }
  }
  return true;
}
