//===-- rspec/Validity.cpp - Resource-spec validity (Def. 3.1) -------------===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//

#include "rspec/Validity.h"

#include "value/ValueOps.h"

#include <sstream>
#include <unordered_map>

using namespace commcsl;

std::string ValidityCounterexample::describe() const {
  std::ostringstream OS;
  if (Prop == Property::Precondition) {
    OS << "action '" << ActionA
       << "' violates property (A) (precondition does not preserve low "
          "abstraction): ";
  } else if (Prop == Property::Invariant) {
    OS << "action '" << ActionA
       << "' does not preserve the spec invariant: from state " << V1->str()
       << " with argument " << Arg1->str() << " it reaches " << V2->str();
    return OS.str();
  } else if (Prop == Property::History) {
    OS << "action '" << ActionA
       << "' has an incoherent history clause: after state " << V1->str()
       << ", history claims " << AlphaLeft->str()
       << " but the actual returns were " << AlphaRight->str();
    return OS.str();
  } else {
    OS << "actions '" << ActionA << "' and '" << ActionB
       << "' do not commute modulo alpha (property (B)): ";
  }
  OS << "states v=" << V1->str() << ", v'=" << V2->str();
  OS << "; args " << Arg1->str() << ", " << Arg2->str();
  OS << "; abstractions " << AlphaLeft->str() << " != " << AlphaRight->str();
  return OS.str();
}

std::vector<std::pair<size_t, size_t>>
commcsl::relevantActionPairs(const ResourceSpecDecl &Spec) {
  std::vector<std::pair<size_t, size_t>> Pairs;
  for (size_t I = 0; I < Spec.Actions.size(); ++I) {
    for (size_t J = I; J < Spec.Actions.size(); ++J) {
      if (I == J && Spec.Actions[I].Unique)
        continue; // unique actions need not commute with themselves
      Pairs.emplace_back(I, J);
    }
  }
  return Pairs;
}

ValidityChecker::ValidityChecker(const RSpecRuntime &Runtime,
                                 ValidityConfig Config)
    : Runtime(Runtime), Config(Config) {
  const ResourceSpecDecl &Decl = Runtime.decl();
  Scope.IntLo = Decl.ScopeIntLo;
  Scope.IntHi = Decl.ScopeIntHi;
  Scope.CollectionBound = Decl.ScopeCollectionBound;
}

void ValidityChecker::buildStateUniverse() {
  if (!States.empty())
    return;
  DomainRef StateDom = Runtime.decl().StateTy->toDomain(Scope);
  States = StateDom->enumerate(Config.MaxStates);

  // Bucket states by their abstraction; same-alpha pairs come from within
  // buckets (including the diagonal).
  std::unordered_map<ValueRef, std::vector<size_t>, ValueRefHash, ValueRefEq>
      Buckets;
  for (size_t I = 0; I < States.size(); ++I)
    Buckets[Runtime.alphaOf(States[I])].push_back(I);
  for (const auto &[Alpha, Members] : Buckets) {
    (void)Alpha;
    for (size_t X = 0; X < Members.size(); ++X)
      for (size_t Y = X; Y < Members.size(); ++Y)
        SameAlphaPairs.emplace_back(Members[X], Members[Y]);
  }
}

std::vector<ValueRef> ValidityChecker::argsFor(const ActionDecl &A) const {
  DomainRef ArgDom = A.ArgTy->toDomain(Scope);
  return ArgDom->enumerate(Config.MaxArgs);
}

bool ValidityChecker::checkPreInstance(const ActionDecl &A, const ValueRef &V1,
                                       const ValueRef &V2,
                                       const ValueRef &Arg1,
                                       const ValueRef &Arg2,
                                       ValidityResult &R) {
  ValueRef L = Runtime.alphaOf(Runtime.applyAction(A, V1, Arg1));
  ValueRef Rt = Runtime.alphaOf(Runtime.applyAction(A, V2, Arg2));
  if (Value::equal(L, Rt))
    return true;
  ValidityCounterexample CE;
  CE.Prop = ValidityCounterexample::Property::Precondition;
  CE.ActionA = A.Name;
  CE.V1 = V1;
  CE.V2 = V2;
  CE.Arg1 = Arg1;
  CE.Arg2 = Arg2;
  CE.AlphaLeft = L;
  CE.AlphaRight = Rt;
  R.Valid = false;
  R.CE = CE;
  return false;
}

bool ValidityChecker::checkCommInstance(const ActionDecl &A,
                                        const ActionDecl &B,
                                        const ValueRef &V1, const ValueRef &V2,
                                        const ValueRef &ArgA,
                                        const ValueRef &ArgB,
                                        ValidityResult &R) {
  // alpha(f_b(f_a(v, argA), argB)) == alpha(f_a(f_b(v', argB), argA))
  ValueRef L =
      Runtime.alphaOf(Runtime.applyAction(B, Runtime.applyAction(A, V1, ArgA),
                                          ArgB));
  ValueRef Rt =
      Runtime.alphaOf(Runtime.applyAction(A, Runtime.applyAction(B, V2, ArgB),
                                          ArgA));
  if (Value::equal(L, Rt))
    return true;
  ValidityCounterexample CE;
  CE.Prop = ValidityCounterexample::Property::Commutativity;
  CE.ActionA = A.Name;
  CE.ActionB = B.Name;
  CE.V1 = V1;
  CE.V2 = V2;
  CE.Arg1 = ArgA;
  CE.Arg2 = ArgB;
  CE.AlphaLeft = L;
  CE.AlphaRight = Rt;
  R.Valid = false;
  R.CE = CE;
  return false;
}

ValidityResult ValidityChecker::checkPreconditions() {
  ValidityResult R;
  buildStateUniverse();
  const ResourceSpecDecl &Decl = Runtime.decl();

  for (const ActionDecl &A : Decl.Actions) {
    std::vector<ValueRef> Args = argsFor(A);
    // Precompute argument pairs that satisfy the relational precondition.
    std::vector<std::pair<size_t, size_t>> PrePairs;
    for (size_t I = 0; I < Args.size(); ++I)
      for (size_t J = 0; J < Args.size(); ++J)
        if (Runtime.preHolds(A, Args[I], Args[J]))
          PrePairs.emplace_back(I, J);

    if (Config.RunBoundedTier) {
      uint64_t Budget = Config.MaxChecksPerProperty;
      for (const auto &[SI, SJ] : SameAlphaPairs) {
        for (const auto &[AI, AJ] : PrePairs) {
          if (Budget-- == 0)
            goto bounded_done;
          ++R.BoundedChecks;
          if (!checkPreInstance(A, States[SI], States[SJ], Args[AI],
                                Args[AJ], R))
            return R;
          // Also check the symmetric state pair (v', v).
          if (SI != SJ) {
            ++R.BoundedChecks;
            if (!checkPreInstance(A, States[SJ], States[SI], Args[AI],
                                  Args[AJ], R))
              return R;
          }
        }
      }
    bounded_done:;
    }

    if (Config.RunRandomTier) {
      std::mt19937_64 Rng(Config.Seed ^ std::hash<std::string>()(A.Name));
      DomainRef StateDom = Decl.StateTy->toDomain(Scope);
      DomainRef ArgDom = A.ArgTy->toDomain(Scope);
      for (unsigned Round = 0; Round < Config.RandomRounds; ++Round) {
        ValueRef V1 = StateDom->sample(Rng);
        // Prefer pairs with equal abstraction: first try an independent
        // sample, fall back to the diagonal.
        ValueRef V2 = StateDom->sample(Rng);
        if (!Value::equal(Runtime.alphaOf(V1), Runtime.alphaOf(V2)))
          V2 = V1;
        ValueRef Arg1 = ArgDom->sample(Rng);
        ValueRef Arg2 = ArgDom->sample(Rng);
        if (!Runtime.preHolds(A, Arg1, Arg2))
          Arg2 = Arg1;
        if (!Runtime.preHolds(A, Arg1, Arg2))
          continue; // even the diagonal violates a unary constraint
        ++R.RandomChecks;
        if (!checkPreInstance(A, V1, V2, Arg1, Arg2, R))
          return R;
      }
    }
  }
  return R;
}

ValidityResult ValidityChecker::checkCommutativity() {
  ValidityResult R;
  buildStateUniverse();
  const ResourceSpecDecl &Decl = Runtime.decl();

  // Commutativity is only required for arguments satisfying the unary
  // projection of each action's precondition: at unshare time, Lemma 4.2
  // applies to argument multisets for which PRE holds, so every recorded
  // argument individually satisfies its action's (unary) constraints. This
  // is what makes disjoint-range unique puts (Fig. 4 right) valid.
  auto FilterArgs = [&](const ActionDecl &Act) {
    std::vector<ValueRef> Out;
    for (ValueRef &V : argsFor(Act))
      if (Runtime.preHoldsUnary(Act, V))
        Out.push_back(std::move(V));
    return Out;
  };

  for (const auto &[IA, IB] : relevantActionPairs(Decl)) {
    const ActionDecl &A = Decl.Actions[IA];
    const ActionDecl &B = Decl.Actions[IB];
    std::vector<ValueRef> ArgsA = FilterArgs(A);
    std::vector<ValueRef> ArgsB = FilterArgs(B);

    if (Config.RunBoundedTier) {
      uint64_t Budget = Config.MaxChecksPerProperty;
      for (const auto &[SI, SJ] : SameAlphaPairs) {
        for (const ValueRef &ArgA : ArgsA) {
          for (const ValueRef &ArgB : ArgsB) {
            if (Budget-- == 0)
              goto bounded_done;
            ++R.BoundedChecks;
            if (!checkCommInstance(A, B, States[SI], States[SJ], ArgA, ArgB,
                                   R))
              return R;
            if (SI != SJ) {
              ++R.BoundedChecks;
              if (!checkCommInstance(A, B, States[SJ], States[SI], ArgA,
                                     ArgB, R))
                return R;
            }
          }
        }
      }
    bounded_done:;
    }

    if (Config.RunRandomTier) {
      std::mt19937_64 Rng(Config.Seed ^
                          (std::hash<std::string>()(A.Name + "#" + B.Name)));
      DomainRef StateDom = Decl.StateTy->toDomain(Scope);
      DomainRef DomA = A.ArgTy->toDomain(Scope);
      DomainRef DomB = B.ArgTy->toDomain(Scope);
      for (unsigned Round = 0; Round < Config.RandomRounds; ++Round) {
        ValueRef V1 = StateDom->sample(Rng);
        ValueRef V2 = StateDom->sample(Rng);
        if (!Value::equal(Runtime.alphaOf(V1), Runtime.alphaOf(V2)))
          V2 = V1;
        ValueRef ArgA = DomA->sample(Rng);
        ValueRef ArgB = DomB->sample(Rng);
        if (!Runtime.preHoldsUnary(A, ArgA) ||
            !Runtime.preHoldsUnary(B, ArgB))
          continue;
        ++R.RandomChecks;
        if (!checkCommInstance(A, B, V1, V2, ArgA, ArgB, R))
          return R;
      }
    }
  }
  return R;
}

ValidityResult ValidityChecker::checkHistoryCoherence() {
  ValidityResult R;
  const ResourceSpecDecl &Decl = Runtime.decl();
  bool AnyHistory = Decl.Inv != nullptr;
  for (const ActionDecl &A : Decl.Actions)
    AnyHistory |= (A.History != nullptr);
  if (!AnyHistory)
    return R;

  std::mt19937_64 Rng(Config.Seed ^ 0x9157ULL);
  DomainRef StateDom = Decl.StateTy->toDomain(Scope);
  const unsigned Rounds = std::max(200u, Config.RandomRounds / 4);
  const unsigned StepsPerRound = 12;

  for (unsigned Round = 0; Round < Rounds; ++Round) {
    ValueRef V = StateDom->sample(Rng);
    // History is a statement about *reachable* executions, so start states
    // are filtered by the spec's well-formedness invariant (unlike the
    // commutativity check, which must range over all states, App. D).
    if (!Runtime.invHolds(V))
      continue;
    // Per-action collected return sequences, seeded with the history of the
    // (arbitrary) start state.
    std::vector<ValueRef> Collected(Decl.Actions.size());
    for (size_t I = 0; I < Decl.Actions.size(); ++I)
      if (Decl.Actions[I].History)
        Collected[I] = Runtime.historyOf(Decl.Actions[I], V);

    for (unsigned Step = 0; Step < StepsPerRound; ++Step) {
      size_t Pick = Rng() % Decl.Actions.size();
      const ActionDecl &A = Decl.Actions[Pick];
      DomainRef ArgDom = A.ArgTy->toDomain(Scope);
      ValueRef Arg = ArgDom->sample(Rng);
      if (!Runtime.preHoldsUnary(A, Arg) || !Runtime.isEnabled(A, V))
        continue;
      ValueRef Ret = Runtime.actionResult(A, V, Arg);
      ValueRef Prev = V;
      V = Runtime.applyAction(A, V, Arg);
      if (!Runtime.invHolds(V)) {
        ValidityCounterexample CE;
        CE.Prop = ValidityCounterexample::Property::Invariant;
        CE.ActionA = A.Name;
        CE.V1 = Prev;
        CE.V2 = V;
        CE.Arg1 = Arg;
        CE.Arg2 = Arg;
        CE.AlphaLeft = CE.AlphaRight = Runtime.alphaOf(V);
        R.Valid = false;
        R.CE = CE;
        return R;
      }
      if (A.History)
        Collected[Pick] = vops::seqAppend(Collected[Pick], Ret);
      ++R.RandomChecks;
      for (size_t I = 0; I < Decl.Actions.size(); ++I) {
        if (!Decl.Actions[I].History)
          continue;
        ValueRef Claimed = Runtime.historyOf(Decl.Actions[I], V);
        if (!Value::equal(Claimed, Collected[I])) {
          ValidityCounterexample CE;
          CE.Prop = ValidityCounterexample::Property::History;
          CE.ActionA = Decl.Actions[I].Name;
          CE.V1 = V;
          CE.V2 = V;
          CE.Arg1 = Arg;
          CE.Arg2 = Arg;
          CE.AlphaLeft = Claimed;
          CE.AlphaRight = Collected[I];
          R.Valid = false;
          R.CE = CE;
          return R;
        }
      }
    }
  }
  return R;
}

ValidityResult ValidityChecker::check() {
  ValidityResult R = checkPreconditions();
  if (!R.Valid)
    return R;
  ValidityResult C = checkCommutativity();
  C.BoundedChecks += R.BoundedChecks;
  C.RandomChecks += R.RandomChecks;
  if (!C.Valid)
    return C;
  ValidityResult H = checkHistoryCoherence();
  H.BoundedChecks += C.BoundedChecks;
  H.RandomChecks += C.RandomChecks;
  return H;
}
