//===-- rspec/Validity.cpp - Resource-spec validity (Def. 3.1) -------------===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//

#include "rspec/Validity.h"

#include "support/Arena.h"
#include "support/ThreadPool.h"
#include "support/trace/Metrics.h"
#include "support/trace/Stopwatch.h"
#include "support/trace/Trace.h"
#include "value/ValueOps.h"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <numeric>
#include <sstream>
#include <unordered_map>

using namespace commcsl;

namespace {

/// Folds one property check's result into the metrics registry. The check
/// counts are deterministic at any job count (see runBoundedTier); the
/// wall/CPU seconds are not.
void flushValidityMetrics(const char *Property, const ValidityResult &R) {
  MetricsRegistry &M = MetricsRegistry::global();
  M.counter(std::string("validity.") + Property + ".bounded_checks")
      .add(R.BoundedChecks);
  M.counter(std::string("validity.") + Property + ".random_checks")
      .add(R.RandomChecks);
  M.counter(std::string("validity.") + Property + ".counterexamples")
      .add(R.Valid ? 0 : 1);
  M.counter(std::string("validity.") + Property + ".absint_obligations")
      .add(R.AbsintObligations);
  M.counter(std::string("validity.") + Property + ".absint_proved")
      .add(R.AbsintProved);
  M.counter(std::string("validity.") + Property + ".unbounded")
      .add(R.Unbounded ? 1 : 0);
  M.gauge(std::string("validity.") + Property + ".wall_seconds")
      .add(R.WallSeconds);
  M.gauge(std::string("validity.") + Property + ".cpu_seconds")
      .add(R.CpuSeconds);
}

} // namespace

std::string ValidityCounterexample::describe() const {
  std::ostringstream OS;
  if (Prop == Property::Precondition) {
    OS << "action '" << ActionA
       << "' violates property (A) (precondition does not preserve low "
          "abstraction): ";
  } else if (Prop == Property::Invariant) {
    OS << "action '" << ActionA
       << "' does not preserve the spec invariant: from state " << V1->str()
       << " with argument " << Arg1->str() << " it reaches " << V2->str();
    return OS.str();
  } else if (Prop == Property::History) {
    OS << "action '" << ActionA
       << "' has an incoherent history clause: after state " << V1->str()
       << ", history claims " << AlphaLeft->str()
       << " but the actual returns were " << AlphaRight->str();
    return OS.str();
  } else {
    OS << "actions '" << ActionA << "' and '" << ActionB
       << "' do not commute modulo alpha (property (B)): ";
  }
  OS << "states v=" << V1->str() << ", v'=" << V2->str();
  OS << "; args " << Arg1->str() << ", " << Arg2->str();
  OS << "; abstractions " << AlphaLeft->str() << " != " << AlphaRight->str();
  return OS.str();
}

std::vector<std::pair<size_t, size_t>>
commcsl::relevantActionPairs(const ResourceSpecDecl &Spec) {
  std::vector<std::pair<size_t, size_t>> Pairs;
  for (size_t I = 0; I < Spec.Actions.size(); ++I) {
    for (size_t J = I; J < Spec.Actions.size(); ++J) {
      if (I == J && Spec.Actions[I].Unique)
        continue; // unique actions need not commute with themselves
      Pairs.emplace_back(I, J);
    }
  }
  return Pairs;
}

ValidityChecker::ValidityChecker(const RSpecRuntime &Runtime,
                                 ValidityConfig Config)
    : Runtime(Runtime), Config(Config) {
  if (Config.Memoize && !this->Runtime.cache())
    this->Runtime.attachCache(
        std::make_shared<SpecEvalCache>(Config.MemoMaxEntries));
  const ResourceSpecDecl &Decl = Runtime.decl();
  Scope.IntLo = Decl.ScopeIntLo;
  Scope.IntHi = Decl.ScopeIntHi;
  Scope.CollectionBound = Decl.ScopeCollectionBound;
}

void ValidityChecker::buildStateUniverse() {
  if (!States.empty())
    return;
  DomainRef StateDom = Runtime.decl().StateTy->toDomain(Scope);
  States = StateDom->enumerate(Config.MaxStates);

  // Bucket states by their abstraction; same-alpha pairs come from within
  // buckets (including the diagonal).
  std::unordered_map<ValueRef, std::vector<size_t>, ValueRefHash, ValueRefEq>
      Buckets;
  for (size_t I = 0; I < States.size(); ++I)
    Buckets[Runtime.alphaOf(States[I])].push_back(I);
  for (const auto &[Alpha, Members] : Buckets) {
    (void)Alpha;
    for (size_t X = 0; X < Members.size(); ++X)
      for (size_t Y = X; Y < Members.size(); ++Y)
        SameAlphaPairs.emplace_back(Members[X], Members[Y]);
  }
}

std::vector<ValueRef> ValidityChecker::argsFor(const ActionDecl &A) const {
  DomainRef ArgDom = A.ArgTy->toDomain(Scope);
  return ArgDom->enumerate(Config.MaxArgs);
}

const absint::SpecAbsResult *
ValidityChecker::absintResult(ValidityResult &R) {
  if (!Config.RunAbsintTier)
    return nullptr;
  if (!AbsRan) {
    AbsRan = true;
    TraceSpan Span("validity", "absint tier");
    auto Res = std::make_shared<absint::SpecAbsResult>(
        absint::analyzeSpec(Runtime.decl(), Runtime.program(), Config.Absint));
    Abs = Res;
    MetricsRegistry &M = MetricsRegistry::global();
    M.counter("validity.absint.specs").add(1);
    M.counter("validity.absint.applicable").add(Res->Applicable ? 1 : 0);
    M.counter("validity.absint.obligations").add(Res->Obligations);
    M.counter("validity.absint.proved").add(Res->ProvedCount);
    M.counter("validity.absint.rewrite_steps").add(Res->RewriteSteps);
    M.counter("validity.absint.splits").add(Res->Splits);
    M.counter("validity.absint.widenings").add(Res->Widenings);
  }
  if (Abs && !AbsCostFlushed) {
    // Whole-spec analysis cost, attributed to whichever property ran first.
    AbsCostFlushed = true;
    R.AbsintSteps += Abs->RewriteSteps;
    R.AbsintSplits += Abs->Splits;
  }
  R.Absint = Abs;
  return Abs.get();
}

void ValidityChecker::failPre(const ActionDecl &A, const ValueRef &V1,
                              const ValueRef &V2, const ValueRef &Arg1,
                              const ValueRef &Arg2, const ValueRef &L,
                              const ValueRef &Rt, ValidityResult &R) {
  ValidityCounterexample CE;
  CE.Prop = ValidityCounterexample::Property::Precondition;
  CE.ActionA = A.Name;
  CE.V1 = V1;
  CE.V2 = V2;
  CE.Arg1 = Arg1;
  CE.Arg2 = Arg2;
  CE.AlphaLeft = L;
  CE.AlphaRight = Rt;
  R.Valid = false;
  R.CE = CE;
}

void ValidityChecker::failComm(const ActionDecl &A, const ActionDecl &B,
                               const ValueRef &V1, const ValueRef &V2,
                               const ValueRef &ArgA, const ValueRef &ArgB,
                               const ValueRef &L, const ValueRef &Rt,
                               ValidityResult &R) {
  ValidityCounterexample CE;
  CE.Prop = ValidityCounterexample::Property::Commutativity;
  CE.ActionA = A.Name;
  CE.ActionB = B.Name;
  CE.V1 = V1;
  CE.V2 = V2;
  CE.Arg1 = ArgA;
  CE.Arg2 = ArgB;
  CE.AlphaLeft = L;
  CE.AlphaRight = Rt;
  R.Valid = false;
  R.CE = CE;
}

bool ValidityChecker::checkPreInstance(const ActionDecl &A, const ValueRef &V1,
                                       const ValueRef &V2,
                                       const ValueRef &Arg1,
                                       const ValueRef &Arg2,
                                       ValidityResult &R) {
  ValueRef L = Runtime.alphaOf(Runtime.applyAction(A, V1, Arg1));
  ValueRef Rt = Runtime.alphaOf(Runtime.applyAction(A, V2, Arg2));
  if (Value::equal(L, Rt))
    return true;
  failPre(A, V1, V2, Arg1, Arg2, L, Rt, R);
  return false;
}

bool ValidityChecker::checkCommInstance(const ActionDecl &A,
                                        const ActionDecl &B,
                                        const ValueRef &V1, const ValueRef &V2,
                                        const ValueRef &ArgA,
                                        const ValueRef &ArgB,
                                        ValidityResult &R) {
  // alpha(f_b(f_a(v, argA), argB)) == alpha(f_a(f_b(v', argB), argA))
  ValueRef L =
      Runtime.alphaOf(Runtime.applyAction(B, Runtime.applyAction(A, V1, ArgA),
                                          ArgB));
  ValueRef Rt =
      Runtime.alphaOf(Runtime.applyAction(A, Runtime.applyAction(B, V2, ArgB),
                                          ArgA));
  if (Value::equal(L, Rt))
    return true;
  failComm(A, B, V1, V2, ArgA, ArgB, L, Rt, R);
  return false;
}

uint64_t ValidityChecker::weightedPairTotal() const {
  uint64_t W = 0;
  for (const auto &P : SameAlphaPairs)
    W += P.first == P.second ? 1 : 2;
  return W;
}

std::vector<ValueRef>
ValidityChecker::buildPreTable(const ActionDecl &A,
                               const std::vector<ValueRef> &Args) {
  TraceSpan Span("validity", [&] { return "pre table " + A.Name; });
  const size_t NArgs = Args.size();
  std::vector<ValueRef> Table(States.size() * NArgs);
  unsigned Jobs = ThreadPool::effectiveJobs(Config.Jobs);
  ThreadPool::shared().parallelForChunks(
      Table.size(), Jobs, [&](uint64_t Begin, uint64_t End, unsigned) {
        // Chunk-local arena: intermediates die with the chunk, escaping
        // table cells pin only the blocks they live in.
        ArenaScope ChunkAS;
        for (uint64_t I = Begin; I < End; ++I)
          Table[I] = Runtime.alphaOf(
              Runtime.applyAction(A, States[I / NArgs], Args[I % NArgs]));
      });
  return Table;
}

void ValidityChecker::buildCommTables(const ActionDecl &A, const ActionDecl &B,
                                      const std::vector<ValueRef> &ArgsA,
                                      const std::vector<ValueRef> &ArgsB,
                                      std::vector<ValueRef> &TAB,
                                      std::vector<ValueRef> &TBA) {
  TraceSpan Span("validity",
                 [&] { return "comm tables " + A.Name + " x " + B.Name; });
  const size_t NA = ArgsA.size(), NB = ArgsB.size();
  TAB.resize(States.size() * NA * NB);
  TBA.resize(States.size() * NA * NB);
  unsigned Jobs = ThreadPool::effectiveJobs(Config.Jobs);
  // First table, one row per (state, argA): the inner loop shares the
  // one-action intermediate f_A(s, argA) across every argB.
  ThreadPool::shared().parallelForChunks(
      States.size() * NA, Jobs, [&](uint64_t Begin, uint64_t End, unsigned) {
        ArenaScope ChunkAS;
        for (uint64_t I = Begin; I < End; ++I) {
          size_t S = size_t(I / NA), AI = size_t(I % NA);
          ValueRef Mid = Runtime.applyAction(A, States[S], ArgsA[AI]);
          ValueRef *Row = &TAB[(S * NA + AI) * NB];
          for (size_t BI = 0; BI < NB; ++BI)
            Row[BI] = Runtime.alphaOf(Runtime.applyAction(B, Mid, ArgsB[BI]));
        }
      });
  // Second table, one column run per (state, argB), written strided into
  // the same [s][argA][argB] layout the lookup uses.
  ThreadPool::shared().parallelForChunks(
      States.size() * NB, Jobs, [&](uint64_t Begin, uint64_t End, unsigned) {
        ArenaScope ChunkAS;
        for (uint64_t I = Begin; I < End; ++I) {
          size_t S = size_t(I / NB), BI = size_t(I % NB);
          ValueRef Mid = Runtime.applyAction(B, States[S], ArgsB[BI]);
          for (size_t AI = 0; AI < NA; ++AI)
            TBA[(S * NA + AI) * NB + BI] =
                Runtime.alphaOf(Runtime.applyAction(A, Mid, ArgsA[AI]));
        }
      });
}

bool ValidityChecker::runBoundedTier(size_t NumArgPairs,
                                     const BoundedInstanceCheck &Check,
                                     ValidityResult &R, double &ParWall,
                                     double &ParCpu) {
  if (NumArgPairs == 0 || SameAlphaPairs.empty())
    return false;

  // Flatten the (state pair x argument pair x orientation) instance space:
  // a diagonal state pair (v, v) contributes one instance per argument
  // pair, an off-diagonal pair two — the primary orientation and, directly
  // after it, the symmetric (v', v) one — reproducing the sequential
  // checker's visit order exactly. The budget caps the flat index range, so
  // every checked instance (symmetric ones included) consumes one unit.
  std::vector<uint64_t> Offsets(SameAlphaPairs.size() + 1, 0);
  for (size_t K = 0; K < SameAlphaPairs.size(); ++K) {
    uint64_t Weight = SameAlphaPairs[K].first == SameAlphaPairs[K].second
                          ? 1
                          : 2;
    Offsets[K + 1] = Offsets[K] + Weight * NumArgPairs;
  }
  uint64_t Total =
      std::min<uint64_t>(Offsets.back(), Config.MaxChecksPerProperty);
  if (Total == 0)
    return false;

  TraceSpan Tier("validity", [&] {
    return "bounded tier (" + std::to_string(Total) + " instances)";
  });

  unsigned Jobs = ThreadPool::effectiveJobs(Config.Jobs);
  uint64_t NumChunks = ThreadPool::chunkCount(Total, Jobs);

  // The winning counterexample is the failing instance with the lowest
  // global index; workers abandon their chunk as soon as a lower index has
  // already failed, because a chunk visits ascending indices only.
  std::atomic<uint64_t> BestIdx{UINT64_MAX};
  std::mutex BestMu;
  ValidityCounterexample BestCE;
  std::vector<double> ChunkSeconds(NumChunks, 0.0);

  Stopwatch T0;
  ThreadPool::shared().parallelForChunks(
      Total, Jobs, [&](uint64_t Begin, uint64_t End, unsigned Chunk) {
        TraceSpan ChunkSpan("validity", [&] {
          return "chunk " + std::to_string(Chunk);
        });
        Stopwatch C0;
        // Values the instance checks create (intermediate states, abstract
        // results) are chunk-transient except the few that escape into a
        // counterexample; serve them from a chunk-local arena.
        ArenaScope ChunkAS;
        size_t K = static_cast<size_t>(
            std::upper_bound(Offsets.begin(), Offsets.end(), Begin) -
            Offsets.begin() - 1);
        // Budget checkpoints: steps are charged per instance (one relaxed
        // add); the deadline is polled every 512 instances. An exhausted
        // budget makes the worker abandon the rest of its chunk — the
        // graceful partial drain the serve daemon's timeout contract
        // promises.
        CheckBudget *Budget = Config.Budget.get();
        if (Budget && Budget->exhausted())
          return;
        for (uint64_t Idx = Begin; Idx < End; ++Idx) {
          if (Idx >= BestIdx.load(std::memory_order_relaxed))
            break;
          if (Budget && (Budget->charge(1) ||
                         (((Idx - Begin) & 511) == 0 && Budget->expired())))
            break;
          while (Offsets[K + 1] <= Idx)
            ++K;
          uint64_t Weight =
              SameAlphaPairs[K].first == SameAlphaPairs[K].second ? 1 : 2;
          uint64_t InBlock = Idx - Offsets[K];
          size_t ArgPair = static_cast<size_t>(InBlock / Weight);
          bool Swapped = (InBlock % Weight) != 0;
          ValidityResult Local;
          if (!Check(K, ArgPair, Swapped, Local)) {
            std::lock_guard<std::mutex> Lock(BestMu);
            if (Idx < BestIdx.load(std::memory_order_relaxed)) {
              BestIdx.store(Idx, std::memory_order_relaxed);
              BestCE = *Local.CE;
            }
            break;
          }
        }
        ChunkSeconds[Chunk] = C0.seconds();
      });
  ParWall += T0.seconds();
  ParCpu += std::accumulate(ChunkSeconds.begin(), ChunkSeconds.end(), 0.0);

  uint64_t Found = BestIdx.load(std::memory_order_relaxed);
  if (Found != UINT64_MAX) {
    // Deterministic accounting: exactly the instances a sequential run
    // would have visited before stopping, regardless of how many extra
    // instances other workers raced through.
    R.BoundedChecks += Found + 1;
    R.Valid = false;
    R.CE = BestCE;
    return true;
  }
  if (Config.Budget && Config.Budget->fired()) {
    // The sweep was cut short with no counterexample: inconclusive, not
    // valid. BoundedChecks stays at whatever was completed before the cut.
    R.TimedOut = true;
    R.Valid = false;
    return true;
  }
  R.BoundedChecks += Total;
  return false;
}

ValidityResult ValidityChecker::checkPreconditions() {
  ValidityResult R;
  TraceSpan PropSpan("validity", "preconditions");
  Stopwatch T0;
  CacheStats Cache0 = Runtime.cacheStats();
  double ParWall = 0, ParCpu = 0;
  auto Finish = [&] {
    R.WallSeconds = T0.seconds();
    R.CpuSeconds = std::max(0.0, R.WallSeconds - ParWall) + ParCpu;
    R.Cache = Runtime.cacheStats() - Cache0;
    flushValidityMetrics("preconditions", R);
  };
  const ResourceSpecDecl &Decl = Runtime.decl();
  const absint::SpecAbsResult *AbsR = absintResult(R);

  for (const ActionDecl &A : Decl.Actions) {
    // A budget exhausted by an earlier action (or an earlier spec sharing
    // the same request budget) stops the walk before any new tier starts.
    if (Config.Budget && Config.Budget->exhausted()) {
      R.TimedOut = true;
      R.Valid = false;
      Finish();
      return R;
    }
    TraceSpan ActionSpan("validity", [&] { return "pre " + A.Name; });
    if (AbsR && AbsR->Applicable) {
      const absint::ActionAbs *AA = AbsR->action(A.Name);
      if (AA) {
        ++R.AbsintObligations;
        if (AA->Pre == absint::ObStatus::Proved) {
          // Proved for every state and argument; nothing left for the
          // concrete tiers. (Refuted is only a hint — it falls through so
          // the report always carries a concrete counterexample.)
          ++R.AbsintProved;
          continue;
        }
      }
    }
    buildStateUniverse();
    std::vector<ValueRef> Args = argsFor(A);
    // Precompute argument pairs that satisfy the relational precondition.
    std::vector<std::pair<size_t, size_t>> PrePairs;
    for (size_t I = 0; I < Args.size(); ++I)
      for (size_t J = 0; J < Args.size(); ++J)
        if (Runtime.preHolds(A, Args[I], Args[J]))
          PrePairs.emplace_back(I, J);

    if (Config.RunBoundedTier) {
      // Dense fast path: when the full (state x argument) result table is no
      // larger than the budgeted instance space, precompute every
      // alpha(f_A(s, arg)) once and reduce each instance to two array loads
      // plus an interned-pointer comparison. The table performs exactly the
      // distinct evaluations the instance sweep would have routed through
      // the memo cache, so the guard can only trade probe time away.
      const size_t NArgs = Args.size();
      uint64_t Budget = std::min<uint64_t>(
          weightedPairTotal() * PrePairs.size(), Config.MaxChecksPerProperty);
      std::vector<ValueRef> PreTable;
      if (!PrePairs.empty() && NArgs != 0 &&
          uint64_t(States.size()) * NArgs <= Budget)
        PreTable = buildPreTable(A, Args);

      if (runBoundedTier(
              PrePairs.size(),
              [&](size_t K, size_t P, bool Swapped, ValidityResult &Out) {
                auto [SI, SJ] = SameAlphaPairs[K];
                size_t S1 = Swapped ? SJ : SI;
                size_t S2 = Swapped ? SI : SJ;
                size_t A1 = PrePairs[P].first, A2 = PrePairs[P].second;
                if (!PreTable.empty()) {
                  const ValueRef &L = PreTable[S1 * NArgs + A1];
                  const ValueRef &Rt = PreTable[S2 * NArgs + A2];
                  if (Value::equal(L, Rt))
                    return true;
                  failPre(A, States[S1], States[S2], Args[A1], Args[A2], L,
                          Rt, Out);
                  return false;
                }
                return checkPreInstance(A, States[S1], States[S2], Args[A1],
                                        Args[A2], Out);
              },
              R, ParWall, ParCpu)) {
        Finish();
        return R;
      }
    }

    if (Config.RunRandomTier) {
      std::mt19937_64 Rng(Config.Seed ^ std::hash<std::string>()(A.Name));
      DomainRef StateDom = Decl.StateTy->toDomain(Scope);
      DomainRef ArgDom = A.ArgTy->toDomain(Scope);
      for (unsigned Round = 0; Round < Config.RandomRounds; ++Round) {
        if (Config.Budget &&
            (Config.Budget->charge(1) ||
             ((Round & 255) == 0 && Config.Budget->expired()))) {
          R.TimedOut = true;
          R.Valid = false;
          Finish();
          return R;
        }
        ValueRef V1 = StateDom->sample(Rng);
        // Prefer pairs with equal abstraction: first try an independent
        // sample, fall back to the diagonal.
        ValueRef V2 = StateDom->sample(Rng);
        if (!Value::equal(Runtime.alphaOf(V1), Runtime.alphaOf(V2)))
          V2 = V1;
        ValueRef Arg1 = ArgDom->sample(Rng);
        ValueRef Arg2 = ArgDom->sample(Rng);
        if (!Runtime.preHolds(A, Arg1, Arg2))
          Arg2 = Arg1;
        if (!Runtime.preHolds(A, Arg1, Arg2))
          continue; // even the diagonal violates a unary constraint
        ++R.RandomChecks;
        if (!checkPreInstance(A, V1, V2, Arg1, Arg2, R)) {
          Finish();
          return R;
        }
      }
    }
  }
  R.Unbounded = R.Valid && AbsR && AbsR->Applicable &&
                R.AbsintProved == Decl.Actions.size();
  Finish();
  return R;
}

ValidityResult ValidityChecker::checkCommutativity() {
  ValidityResult R;
  TraceSpan PropSpan("validity", "commutativity");
  Stopwatch T0;
  CacheStats Cache0 = Runtime.cacheStats();
  double ParWall = 0, ParCpu = 0;
  auto Finish = [&] {
    R.WallSeconds = T0.seconds();
    R.CpuSeconds = std::max(0.0, R.WallSeconds - ParWall) + ParCpu;
    R.Cache = Runtime.cacheStats() - Cache0;
    flushValidityMetrics("commutativity", R);
  };
  const ResourceSpecDecl &Decl = Runtime.decl();
  const absint::SpecAbsResult *AbsR = absintResult(R);

  // Commutativity is only required for arguments satisfying the unary
  // projection of each action's precondition: at unshare time, Lemma 4.2
  // applies to argument multisets for which PRE holds, so every recorded
  // argument individually satisfies its action's (unary) constraints. This
  // is what makes disjoint-range unique puts (Fig. 4 right) valid.
  auto FilterArgs = [&](const ActionDecl &Act) {
    std::vector<ValueRef> Out;
    for (ValueRef &V : argsFor(Act))
      if (Runtime.preHoldsUnary(Act, V))
        Out.push_back(std::move(V));
    return Out;
  };

  for (const auto &[IA, IB] : relevantActionPairs(Decl)) {
    if (Config.Budget && Config.Budget->exhausted()) {
      R.TimedOut = true;
      R.Valid = false;
      Finish();
      return R;
    }
    const ActionDecl &A = Decl.Actions[IA];
    const ActionDecl &B = Decl.Actions[IB];
    TraceSpan PairSpan("validity",
                       [&] { return "comm " + A.Name + " x " + B.Name; });
    if (AbsR && AbsR->Applicable) {
      const absint::PairAbs *PA = AbsR->pair(A.Name, B.Name);
      if (PA) {
        ++R.AbsintObligations;
        if (PA->Comm == absint::ObStatus::Proved) {
          ++R.AbsintProved;
          continue; // commutes for all states/arguments of the types
        }
      }
    }
    buildStateUniverse();
    std::vector<ValueRef> ArgsA = FilterArgs(A);
    std::vector<ValueRef> ArgsB = FilterArgs(B);

    if (Config.RunBoundedTier) {
      // Argument pairs are the cross product ArgsA x ArgsB, flattened in
      // the sequential (ArgA-major) order.
      const size_t NA = ArgsA.size(), NB = ArgsB.size();
      const uint64_t NumArgPairs = uint64_t(NA) * NB;
      // Dense fast path (see checkPreconditions): both composition tables
      // cost 2 * |S| * |ArgsA| * |ArgsB| evaluations, each instance then
      // reduces to two loads and a pointer comparison.
      uint64_t Budget = std::min<uint64_t>(
          weightedPairTotal() * NumArgPairs, Config.MaxChecksPerProperty);
      std::vector<ValueRef> TAB, TBA;
      if (NumArgPairs != 0 &&
          2 * uint64_t(States.size()) * NumArgPairs <= Budget)
        buildCommTables(A, B, ArgsA, ArgsB, TAB, TBA);

      if (runBoundedTier(
              NA * NB,
              [&](size_t K, size_t P, bool Swapped, ValidityResult &Out) {
                auto [SI, SJ] = SameAlphaPairs[K];
                size_t S1 = Swapped ? SJ : SI;
                size_t S2 = Swapped ? SI : SJ;
                size_t AI = P / NB, BI = P % NB;
                if (!TAB.empty()) {
                  const ValueRef &L = TAB[(S1 * NA + AI) * NB + BI];
                  const ValueRef &Rt = TBA[(S2 * NA + AI) * NB + BI];
                  if (Value::equal(L, Rt))
                    return true;
                  failComm(A, B, States[S1], States[S2], ArgsA[AI], ArgsB[BI],
                           L, Rt, Out);
                  return false;
                }
                return checkCommInstance(A, B, States[S1], States[S2],
                                         ArgsA[AI], ArgsB[BI], Out);
              },
              R, ParWall, ParCpu)) {
        Finish();
        return R;
      }
    }

    if (Config.RunRandomTier) {
      std::mt19937_64 Rng(Config.Seed ^
                          (std::hash<std::string>()(A.Name + "#" + B.Name)));
      DomainRef StateDom = Decl.StateTy->toDomain(Scope);
      DomainRef DomA = A.ArgTy->toDomain(Scope);
      DomainRef DomB = B.ArgTy->toDomain(Scope);
      for (unsigned Round = 0; Round < Config.RandomRounds; ++Round) {
        if (Config.Budget &&
            (Config.Budget->charge(1) ||
             ((Round & 255) == 0 && Config.Budget->expired()))) {
          R.TimedOut = true;
          R.Valid = false;
          Finish();
          return R;
        }
        ValueRef V1 = StateDom->sample(Rng);
        ValueRef V2 = StateDom->sample(Rng);
        if (!Value::equal(Runtime.alphaOf(V1), Runtime.alphaOf(V2)))
          V2 = V1;
        ValueRef ArgA = DomA->sample(Rng);
        ValueRef ArgB = DomB->sample(Rng);
        if (!Runtime.preHoldsUnary(A, ArgA) ||
            !Runtime.preHoldsUnary(B, ArgB))
          continue;
        ++R.RandomChecks;
        if (!checkCommInstance(A, B, V1, V2, ArgA, ArgB, R)) {
          Finish();
          return R;
        }
      }
    }
  }
  R.Unbounded = R.Valid && AbsR && AbsR->Applicable &&
                R.AbsintProved == relevantActionPairs(Decl).size();
  Finish();
  return R;
}

ValidityResult ValidityChecker::checkHistoryCoherence() {
  ValidityResult R;
  TraceSpan PropSpan("validity", "history");
  Stopwatch T0;
  CacheStats Cache0 = Runtime.cacheStats();
  // Sequential tier: aggregate worker time equals wall time.
  auto Finish = [&] {
    R.CpuSeconds = R.WallSeconds = T0.seconds();
    R.Cache = Runtime.cacheStats() - Cache0;
    flushValidityMetrics("history", R);
  };
  const ResourceSpecDecl &Decl = Runtime.decl();
  bool AnyHistory = Decl.Inv != nullptr;
  for (const ActionDecl &A : Decl.Actions)
    AnyHistory |= (A.History != nullptr);
  if (!AnyHistory) {
    Finish();
    return R;
  }

  std::mt19937_64 Rng(Config.Seed ^ 0x9157ULL);
  DomainRef StateDom = Decl.StateTy->toDomain(Scope);
  const unsigned Rounds = std::max(200u, Config.RandomRounds / 4);
  const unsigned StepsPerRound = 12;

  for (unsigned Round = 0; Round < Rounds; ++Round) {
    if (Config.Budget && Config.Budget->exhausted()) {
      R.TimedOut = true;
      R.Valid = false;
      Finish();
      return R;
    }
    ValueRef V = StateDom->sample(Rng);
    // History is a statement about *reachable* executions, so start states
    // are filtered by the spec's well-formedness invariant (unlike the
    // commutativity check, which must range over all states, App. D).
    if (!Runtime.invHolds(V))
      continue;
    // Per-action collected return sequences, seeded with the history of the
    // (arbitrary) start state.
    std::vector<ValueRef> Collected(Decl.Actions.size());
    for (size_t I = 0; I < Decl.Actions.size(); ++I)
      if (Decl.Actions[I].History)
        Collected[I] = Runtime.historyOf(Decl.Actions[I], V);

    for (unsigned Step = 0; Step < StepsPerRound; ++Step) {
      size_t Pick = Rng() % Decl.Actions.size();
      const ActionDecl &A = Decl.Actions[Pick];
      DomainRef ArgDom = A.ArgTy->toDomain(Scope);
      ValueRef Arg = ArgDom->sample(Rng);
      if (!Runtime.preHoldsUnary(A, Arg) || !Runtime.isEnabled(A, V))
        continue;
      ValueRef Ret = Runtime.actionResult(A, V, Arg);
      ValueRef Prev = V;
      V = Runtime.applyAction(A, V, Arg);
      if (!Runtime.invHolds(V)) {
        ValidityCounterexample CE;
        CE.Prop = ValidityCounterexample::Property::Invariant;
        CE.ActionA = A.Name;
        CE.V1 = Prev;
        CE.V2 = V;
        CE.Arg1 = Arg;
        CE.Arg2 = Arg;
        CE.AlphaLeft = CE.AlphaRight = Runtime.alphaOf(V);
        R.Valid = false;
        R.CE = CE;
        Finish();
        return R;
      }
      if (A.History)
        Collected[Pick] = vops::seqAppend(Collected[Pick], Ret);
      ++R.RandomChecks;
      for (size_t I = 0; I < Decl.Actions.size(); ++I) {
        if (!Decl.Actions[I].History)
          continue;
        ValueRef Claimed = Runtime.historyOf(Decl.Actions[I], V);
        if (!Value::equal(Claimed, Collected[I])) {
          ValidityCounterexample CE;
          CE.Prop = ValidityCounterexample::Property::History;
          CE.ActionA = Decl.Actions[I].Name;
          CE.V1 = V;
          CE.V2 = V;
          CE.Arg1 = Arg;
          CE.Arg2 = Arg;
          CE.AlphaLeft = Claimed;
          CE.AlphaRight = Collected[I];
          R.Valid = false;
          R.CE = CE;
          Finish();
          return R;
        }
      }
    }
  }
  Finish();
  return R;
}

ValidityResult ValidityChecker::check() {
  ValidityResult R = checkPreconditions();
  if (!R.Valid)
    return R;
  ValidityResult C = checkCommutativity();
  C.BoundedChecks += R.BoundedChecks;
  C.RandomChecks += R.RandomChecks;
  C.AbsintObligations += R.AbsintObligations;
  C.AbsintProved += R.AbsintProved;
  C.AbsintSteps += R.AbsintSteps;
  C.AbsintSplits += R.AbsintSplits;
  C.WallSeconds += R.WallSeconds;
  C.CpuSeconds += R.CpuSeconds;
  C.Cache += R.Cache;
  if (!C.Valid)
    return C;
  ValidityResult H = checkHistoryCoherence();
  H.BoundedChecks += C.BoundedChecks;
  H.RandomChecks += C.RandomChecks;
  H.AbsintObligations += C.AbsintObligations;
  H.AbsintProved += C.AbsintProved;
  H.AbsintSteps += C.AbsintSteps;
  H.AbsintSplits += C.AbsintSplits;
  H.WallSeconds += C.WallSeconds;
  H.CpuSeconds += C.CpuSeconds;
  H.Cache += C.Cache;
  H.Absint = C.Absint ? C.Absint : R.Absint;
  // The spec as a whole holds on the unbounded domains only when both
  // symbolic properties were fully discharged and nothing was left to the
  // (finite, simulation-based) history/invariant tier.
  const ResourceSpecDecl &Decl = Runtime.decl();
  bool AnyHistory = Decl.Inv != nullptr;
  for (const ActionDecl &A : Decl.Actions)
    AnyHistory |= (A.History != nullptr);
  H.Unbounded = H.Valid && R.Unbounded && C.Unbounded && !AnyHistory;
  return H;
}
