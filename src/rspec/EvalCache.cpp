//===-- rspec/EvalCache.cpp - Memoized spec evaluation ---------------------===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//

#include "rspec/EvalCache.h"

#include <algorithm>

using namespace commcsl;

namespace {

/// Evicts every other entry in bucket-iteration order, so a full shard
/// sheds half its load instead of dropping everything at once (a clear()
/// forces every cached key to recompute simultaneously — a thundering
/// herd right when the cache is hottest). Returns the number evicted.
template <typename MapT> uint64_t evictHalf(MapT &Map) {
  uint64_t Evicted = 0;
  bool Drop = true;
  for (auto It = Map.begin(); It != Map.end();) {
    if (Drop) {
      It = Map.erase(It);
      ++Evicted;
    } else {
      ++It;
    }
    Drop = !Drop;
  }
  return Evicted;
}

} // namespace

SpecEvalCache::SpecEvalCache(size_t MaxEntries)
    : ShardCap(std::max<size_t>(64, MaxEntries / (2 * NumShards))) {}
// MaxEntries is split between the alpha and action tables (hence /2), then
// across shards. The floor keeps tiny configurations usable.

ValueRef SpecEvalCache::lookupAlpha(const ValueRef &State) {
  AlphaShard &S = AlphaShards[State->hash() % NumShards];
  std::lock_guard<std::mutex> Lock(S.Mu);
  auto It = S.Map.find(State);
  if (It != S.Map.end()) {
    ++S.Hits;
    return It->second;
  }
  ++S.Misses;
  return nullptr;
}

void SpecEvalCache::insertAlpha(const ValueRef &State,
                                const ValueRef &Result) {
  AlphaShard &S = AlphaShards[State->hash() % NumShards];
  std::lock_guard<std::mutex> Lock(S.Mu);
  if (S.Map.size() >= ShardCap)
    S.Evictions += evictHalf(S.Map);
  S.Map.emplace(State, Result); // a racing insert of the same key is a no-op
}

ValueRef SpecEvalCache::lookupAction(const ActionDecl &Action,
                                     const ValueRef &State,
                                     const ValueRef &Arg) {
  ActionKey K{&Action, State, Arg};
  ActionShard &S = ActionShards[ActionKeyHash()(K) % NumShards];
  std::lock_guard<std::mutex> Lock(S.Mu);
  auto It = S.Map.find(K);
  if (It != S.Map.end()) {
    ++S.Hits;
    return It->second;
  }
  ++S.Misses;
  return nullptr;
}

void SpecEvalCache::insertAction(const ActionDecl &Action,
                                 const ValueRef &State, const ValueRef &Arg,
                                 const ValueRef &Result) {
  ActionKey K{&Action, State, Arg};
  ActionShard &S = ActionShards[ActionKeyHash()(K) % NumShards];
  std::lock_guard<std::mutex> Lock(S.Mu);
  if (S.Map.size() >= ShardCap)
    S.Evictions += evictHalf(S.Map);
  S.Map.emplace(std::move(K), Result);
}

void SpecEvalCache::clear() {
  for (AlphaShard &S : AlphaShards) {
    std::lock_guard<std::mutex> Lock(S.Mu);
    S.Map.clear();
    S.Hits = S.Misses = S.Evictions = 0;
  }
  for (ActionShard &S : ActionShards) {
    std::lock_guard<std::mutex> Lock(S.Mu);
    S.Map.clear();
    S.Hits = S.Misses = S.Evictions = 0;
  }
}

CacheStats SpecEvalCache::stats() const {
  CacheStats Total;
  for (const AlphaShard &S : AlphaShards) {
    std::lock_guard<std::mutex> Lock(S.Mu);
    Total.AlphaHits += S.Hits;
    Total.AlphaMisses += S.Misses;
    Total.Entries += S.Map.size();
    Total.Evictions += S.Evictions;
  }
  for (const ActionShard &S : ActionShards) {
    std::lock_guard<std::mutex> Lock(S.Mu);
    Total.ActionHits += S.Hits;
    Total.ActionMisses += S.Misses;
    Total.Entries += S.Map.size();
    Total.Evictions += S.Evictions;
  }
  return Total;
}

std::shared_ptr<SpecEvalCache>
SpecCacheRegistry::cacheFor(const ResourceSpecDecl *Spec) {
  std::lock_guard<std::mutex> Lock(Mu);
  std::shared_ptr<SpecEvalCache> &C = Caches[Spec];
  if (!C)
    C = std::make_shared<SpecEvalCache>(MaxEntries);
  return C;
}

size_t SpecCacheRegistry::size() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Caches.size();
}

void SpecCacheRegistry::clearAll() {
  std::lock_guard<std::mutex> Lock(Mu);
  for (const auto &[Spec, Cache] : Caches) {
    (void)Spec;
    Cache->clear();
  }
}

CacheStats SpecCacheRegistry::totals() const {
  std::lock_guard<std::mutex> Lock(Mu);
  CacheStats Total;
  for (const auto &[Spec, Cache] : Caches) {
    (void)Spec;
    CacheStats S = Cache->stats();
    // Entries is a gauge per cache; summing across distinct caches is the
    // correct aggregate, so bypass the max-merge of operator+=.
    uint64_t E = Total.Entries + S.Entries;
    Total += S;
    Total.Entries = E;
  }
  return Total;
}
