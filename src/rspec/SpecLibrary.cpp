//===-- rspec/SpecLibrary.cpp - Reusable resource specifications -----------===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//

#include "rspec/SpecLibrary.h"

#include "lang/TypeChecker.h"
#include "parser/Parser.h"

#include <cassert>

using namespace commcsl;

SpecTemplate::SpecTemplate(const char *Source) {
  DiagnosticEngine Diags;
  Prog = Parser::parse(Source, Diags);
  assert(!Diags.hasErrors() && "library specification failed to parse");
  TypeChecker Checker(Prog, Diags);
  [[maybe_unused]] bool Ok = Checker.check();
  assert(Ok && "library specification failed to type-check");
  assert(!Prog.Specs.empty() && "library template without a spec");
}

#define COMMCSL_SPEC_TEMPLATE(Fn, Source)                                    \
  const SpecTemplate &SpecTemplate::Fn() {                                   \
    static const SpecTemplate T(Source);                                     \
    return T;                                                                \
  }

COMMCSL_SPEC_TEMPLATE(counterAdd, R"(
  resource CounterAdd {
    state: int;
    alpha(v) = v;
    shared action Add(a: int) {
      apply(v, a) = v + a;
      requires low(a);
    }
  }
)")

COMMCSL_SPEC_TEMPLATE(counterIncrement, R"(
  resource CounterInc {
    state: int;
    alpha(v) = v;
    shared action Inc(a: unit) {
      apply(v, a) = v + 1;
    }
  }
)")

COMMCSL_SPEC_TEMPLATE(blindCell, R"(
  resource BlindCell {
    state: int;
    alpha(v) = 0;
    shared action Set(a: int) {
      apply(v, a) = a;
    }
  }
)")

COMMCSL_SPEC_TEMPLATE(intSet, R"(
  resource IntSet {
    state: set<int>;
    alpha(v) = v;
    shared action Add(a: int) {
      apply(v, a) = set_add(v, a);
      requires low(a);
    }
  }
)")

COMMCSL_SPEC_TEMPLATE(mapKeySet, R"(
  resource MapKeySet {
    state: map<int, int>;
    alpha(v) = dom(v);
    scope int -1 .. 1;
    scope size 2;
    shared action Put(a: pair<int, int>) {
      apply(v, a) = map_put(v, fst(a), snd(a));
      requires low(fst(a));
    }
  }
)")

COMMCSL_SPEC_TEMPLATE(mapIncrement, R"(
  resource MapIncrement {
    state: map<int, int>;
    alpha(v) = v;
    scope int -1 .. 1;
    scope size 2;
    shared action Inc(a: int) {
      apply(v, a) = map_put(v, a, map_get_or(v, a, 0) + 1);
      requires low(a);
    }
  }
)")

COMMCSL_SPEC_TEMPLATE(mapAddValue, R"(
  resource MapAddValue {
    state: map<int, int>;
    alpha(v) = v;
    scope int -1 .. 1;
    scope size 2;
    shared action AddVal(a: pair<int, int>) {
      apply(v, a) = map_put(v, fst(a), map_get_or(v, fst(a), 0) + snd(a));
      requires low(fst(a)) && low(snd(a));
    }
  }
)")

COMMCSL_SPEC_TEMPLATE(mapPutMax, R"(
  resource MapPutMax {
    state: map<int, int>;
    alpha(v) = v;
    scope int -1 .. 1;
    scope size 2;
    shared action PutMax(a: pair<int, int>) {
      apply(v, a) = map_put(v, fst(a), max(snd(a), map_get_or(v, fst(a), snd(a))));
      requires low(fst(a)) && low(snd(a));
    }
  }
)")

COMMCSL_SPEC_TEMPLATE(listAppendMultiset, R"(
  resource ListMultiset {
    state: seq<int>;
    alpha(v) = seq_to_mset(v);
    shared action Append(a: int) {
      apply(v, a) = append(v, a);
      requires low(a);
    }
  }
)")

COMMCSL_SPEC_TEMPLATE(listAppendLength, R"(
  resource ListLength {
    state: seq<int>;
    alpha(v) = len(v);
    scope int -1 .. 1;
    scope size 2;
    shared action Append(a: int) {
      apply(v, a) = append(v, a);
    }
  }
)")

COMMCSL_SPEC_TEMPLATE(listAppendSumCount, R"(
  resource ListSumCount {
    state: pair<seq<pair<int, int>>, pair<int, int>>;
    alpha(v) = snd(v);
    scope int -1 .. 1;
    scope size 2;
    shared action Append(a: pair<int, int>) {
      apply(v, a) = pair(append(fst(v), a),
                         pair(fst(snd(v)) + snd(a), snd(snd(v)) + 1));
      requires low(snd(a));
    }
  }
)")

COMMCSL_SPEC_TEMPLATE(pcQueue, R"(
  resource PCQueue {
    state: pair<seq<int>, int>;
    alpha(v) = v;
    inv(v) = snd(v) >= 0 && snd(v) <= len(fst(v));
    scope size 2;
    unique action Prod(a: int) {
      apply(v, a) = pair(append(fst(v), a), snd(v));
      requires low(a);
    }
    unique action Cons(a: unit) {
      apply(v, a) = pair(fst(v), snd(v) + 1);
      returns(v, a) = at(fst(v), snd(v));
      enabled(v) = snd(v) < len(fst(v));
      history(v) = take(fst(v), snd(v));
    }
  }
)")

COMMCSL_SPEC_TEMPLATE(mpmcQueue, R"(
  resource MPMCQueue {
    state: pair<seq<int>, int>;
    alpha(v) = pair(seq_to_mset(fst(v)), snd(v));
    inv(v) = snd(v) >= 0 && snd(v) <= len(fst(v));
    scope size 2;
    shared action Prod(a: int) {
      apply(v, a) = pair(append(fst(v), a), snd(v));
      requires low(a);
    }
    shared action Cons(a: unit) {
      apply(v, a) = pair(fst(v), snd(v) + 1);
      returns(v, a) = at(fst(v), snd(v));
      enabled(v) = snd(v) < len(fst(v));
    }
  }
)")

#undef COMMCSL_SPEC_TEMPLATE

std::vector<const SpecTemplate *> SpecTemplate::all() {
  return {&counterAdd(),         &counterIncrement(),
          &blindCell(),          &intSet(),
          &mapKeySet(),          &mapIncrement(),
          &mapAddValue(),        &mapPutMax(),
          &listAppendMultiset(), &listAppendLength(),
          &listAppendSumCount(), &pcQueue(),
          &mpmcQueue()};
}
