//===-- rspec/EvalCache.h - Memoized spec evaluation ------------*- C++ -*-===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Concurrent memoization of the two hot resource-specification
/// evaluations: `alpha(v)` and `f_a(v, arg)`. The Def. 3.1 validity checker
/// and the empirical NI harness evaluate these millions of times over a
/// small universe of values, so both calls are cached per specification in
/// sharded hash tables keyed by the (interned, hence pointer-comparable)
/// argument values.
///
/// Evaluation is pure and deterministic, so memoization cannot change any
/// verdict, counterexample, or report — only the hit/miss counters (which
/// are diagnostic and may vary with thread interleaving when two workers
/// race to compute the same key).
///
/// Each shard is capacity-bounded: on overflow half of the shard's entries
/// are evicted (an every-other sweep in bucket order), so long-running
/// processes cannot grow the cache without bound yet a full shard keeps
/// half its working set instead of recomputing everything at once.
///
//===----------------------------------------------------------------------===//

#ifndef COMMCSL_RSPEC_EVALCACHE_H
#define COMMCSL_RSPEC_EVALCACHE_H

#include "lang/Program.h"
#include "value/Value.h"

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>

namespace commcsl {

/// Counters surfaced in `ValidityResult`, `NIReport`, and the driver's
/// metrics output. Hits/Misses/Evictions are monotone counters; Entries is
/// a gauge (current number of cached results).
struct CacheStats {
  uint64_t AlphaHits = 0;
  uint64_t AlphaMisses = 0;
  uint64_t ActionHits = 0;
  uint64_t ActionMisses = 0;
  uint64_t Entries = 0;
  uint64_t Evictions = 0;

  uint64_t hits() const { return AlphaHits + ActionHits; }
  uint64_t misses() const { return AlphaMisses + ActionMisses; }

  /// Counter-wise sum; Entries takes the maximum (a gauge cannot be
  /// meaningfully added across snapshots of the same cache).
  CacheStats &operator+=(const CacheStats &O) {
    AlphaHits += O.AlphaHits;
    AlphaMisses += O.AlphaMisses;
    ActionHits += O.ActionHits;
    ActionMisses += O.ActionMisses;
    Entries = Entries > O.Entries ? Entries : O.Entries;
    Evictions += O.Evictions;
    return *this;
  }

  /// Counter-wise delta against an earlier snapshot; Entries keeps the
  /// later (this) gauge value. Deltas clamp at zero: a cache cleared or
  /// reset between the two snapshots (a long-lived server evicting a cold
  /// program, `SpecEvalCache::clear`) makes the later counters smaller
  /// than the earlier ones, and an unclamped subtraction would wrap to a
  /// huge uint64 in per-request delta reports.
  CacheStats operator-(const CacheStats &O) const {
    auto Sub = [](uint64_t A, uint64_t B) { return A >= B ? A - B : 0; };
    CacheStats R = *this;
    R.AlphaHits = Sub(AlphaHits, O.AlphaHits);
    R.AlphaMisses = Sub(AlphaMisses, O.AlphaMisses);
    R.ActionHits = Sub(ActionHits, O.ActionHits);
    R.ActionMisses = Sub(ActionMisses, O.ActionMisses);
    R.Evictions = Sub(Evictions, O.Evictions);
    return R;
  }
};

/// Per-specification concurrent memo for `alpha` and action applications.
/// Thread-safe; shards keep lock contention negligible at `--jobs N`.
class SpecEvalCache {
public:
  static constexpr size_t DefaultMaxEntries = size_t(1) << 20;

  explicit SpecEvalCache(size_t MaxEntries = DefaultMaxEntries);

  /// Returns the cached `alpha(State)`, or computes, caches, and returns
  /// it. \p Compute must be a pure function of \p State.
  template <typename ComputeFn>
  ValueRef alpha(const ValueRef &State, ComputeFn &&Compute) {
    if (ValueRef Hit = lookupAlpha(State))
      return Hit;
    ValueRef R = Compute();
    insertAlpha(State, R);
    return R;
  }

  /// Returns the cached `f_Action(State, Arg)`, or computes, caches, and
  /// returns it. \p Compute must be a pure function of the key.
  template <typename ComputeFn>
  ValueRef action(const ActionDecl &Action, const ValueRef &State,
                  const ValueRef &Arg, ComputeFn &&Compute) {
    if (ValueRef Hit = lookupAction(Action, State, Arg))
      return Hit;
    ValueRef R = Compute();
    insertAction(Action, State, Arg, R);
    return R;
  }

  CacheStats stats() const;

  /// Drops every cached entry and zeroes the per-shard counters — a full
  /// reset, as when a long-lived server recycles a spec family's cache.
  /// Snapshots taken across a clear() must go through the clamped
  /// CacheStats::operator- (deltas would otherwise wrap).
  void clear();

  /// Per-shard entry bound (exposed so tests can assert the capacity
  /// invariant: `stats().Entries <= 2 * numShards() * shardCap()`).
  size_t shardCap() const { return ShardCap; }
  static constexpr size_t numShards() { return NumShards; }

private:
  static constexpr unsigned NumShards = 16;

  /// Keys hold strong references: a live key can never be a stale pointer,
  /// so pointer-equality fast paths in Value::equal stay sound even though
  /// the interner only tracks live values.
  struct AlphaShard {
    mutable std::mutex Mu;
    std::unordered_map<ValueRef, ValueRef, ValueRefHash, ValueRefEq> Map;
    uint64_t Hits = 0;
    uint64_t Misses = 0;
    uint64_t Evictions = 0;
  };

  struct ActionKey {
    const ActionDecl *Action = nullptr;
    ValueRef State;
    ValueRef Arg;
  };
  struct ActionKeyHash {
    size_t operator()(const ActionKey &K) const {
      size_t H = std::hash<const void *>()(K.Action);
      H ^= K.State->hash() + 0x9e3779b97f4a7c15ULL + (H << 6) + (H >> 2);
      H ^= K.Arg->hash() + 0x9e3779b97f4a7c15ULL + (H << 6) + (H >> 2);
      return H;
    }
  };
  struct ActionKeyEq {
    bool operator()(const ActionKey &A, const ActionKey &B) const {
      return A.Action == B.Action && Value::equal(A.State, B.State) &&
             Value::equal(A.Arg, B.Arg);
    }
  };
  struct ActionShard {
    mutable std::mutex Mu;
    std::unordered_map<ActionKey, ValueRef, ActionKeyHash, ActionKeyEq> Map;
    uint64_t Hits = 0;
    uint64_t Misses = 0;
    uint64_t Evictions = 0;
  };

  ValueRef lookupAlpha(const ValueRef &State);
  void insertAlpha(const ValueRef &State, const ValueRef &Result);
  ValueRef lookupAction(const ActionDecl &Action, const ValueRef &State,
                        const ValueRef &Arg);
  void insertAction(const ActionDecl &Action, const ValueRef &State,
                    const ValueRef &Arg, const ValueRef &Result);

  size_t ShardCap; ///< per-shard entry bound; evict half on overflow
  std::array<AlphaShard, NumShards> AlphaShards;
  std::array<ActionShard, NumShards> ActionShards;
};

/// Maps resource-spec declarations to their shared evaluation caches, so
/// transient `RSpecRuntime` instances (e.g. one per interpreted `perform`)
/// reuse one cache per spec. The registry must not outlive the program
/// owning the spec declarations it has seen.
class SpecCacheRegistry {
public:
  explicit SpecCacheRegistry(
      size_t MaxEntriesPerSpec = SpecEvalCache::DefaultMaxEntries)
      : MaxEntries(MaxEntriesPerSpec) {}

  /// The cache for \p Spec, created on first use. Thread-safe.
  std::shared_ptr<SpecEvalCache> cacheFor(const ResourceSpecDecl *Spec);

  /// Summed stats over every cache created so far.
  CacheStats totals() const;

  /// Number of distinct specs with a cache.
  size_t size() const;

  /// Clears every cache in the registry (the caches themselves stay
  /// attached to any runtimes that hold them).
  void clearAll();

private:
  size_t MaxEntries;
  mutable std::mutex Mu;
  std::map<const ResourceSpecDecl *, std::shared_ptr<SpecEvalCache>> Caches;
};

} // namespace commcsl

#endif // COMMCSL_RSPEC_EVALCACHE_H
