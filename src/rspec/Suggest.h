//===-- rspec/Suggest.h - Abstraction/precondition synthesis ----*- C++ -*-===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Specification suggestion (`hyperviper suggest-spec`): enumerates
/// candidate abstraction functions for a resource specification's state
/// type — identity, order-forgetting collection views, sizes, component
/// projections, the constant abstraction — optionally strengthening action
/// preconditions with `low(arg)`, and runs the validity tiers on every
/// candidate. The ranked result puts certified unbounded proofs first,
/// then bounded-evidence validity, preferring candidates that reveal more
/// (earlier templates) and demand less (no added preconditions).
///
/// Everything is deterministic: candidate order is fixed by the template
/// table, verdicts come from the (deterministic) validity tiers, and ties
/// rank by generation index — the report is byte-identical at any --jobs.
///
//===----------------------------------------------------------------------===//

#ifndef COMMCSL_RSPEC_SUGGEST_H
#define COMMCSL_RSPEC_SUGGEST_H

#include "rspec/Validity.h"

#include <string>
#include <vector>

namespace commcsl {

struct SuggestOptions {
  /// Cap on candidates *tried* per spec (enumeration is cut off, not
  /// sampled, so the prefix is always the same). 0 means no cap: every
  /// enumerated candidate is tried. A cap at or above the pool size is
  /// equivalent to no cap and never marks the result truncated.
  unsigned MaxCandidates = 24;
  /// Worker threads for evaluating candidates. 1 = sequential (default),
  /// 0 = hardware concurrency. Every candidate's verdict is computed
  /// independently and written to its generation index, so the ranked
  /// report is byte-identical at any job count.
  unsigned Jobs = 1;
  /// Validity configuration used for every candidate run.
  ValidityConfig Validity;
};

/// One evaluated candidate specification.
struct SpecSuggestion {
  std::string AlphaText; ///< candidate alpha in surface syntax
  /// Actions that gained a `requires low(<arg>)` atom (empty: declared
  /// preconditions were used unchanged).
  std::vector<std::string> LowPreAdded;
  bool Declared = false; ///< candidate is the spec exactly as written
  bool Valid = false;
  bool Unbounded = false; ///< proved by the differencing tier, all domains
  uint64_t BoundedChecks = 0;
  uint64_t RandomChecks = 0;
  unsigned Index = 0; ///< generation index (deterministic tie-break)
};

struct SuggestResult {
  std::string SpecName;
  uint64_t CandidatesTried = 0;
  bool Truncated = false; ///< enumeration hit MaxCandidates
  /// Best first: unbounded proofs, then valid, then the rest; ties in
  /// generation order.
  std::vector<SpecSuggestion> Ranked;
};

/// Enumerates and evaluates candidates for one spec. Deterministic.
SuggestResult suggestSpec(const ResourceSpecDecl &Spec, const Program &Prog,
                          const SuggestOptions &Opts = {});

/// Renders results for every spec of \p Prog as the CLI report (one header
/// line per spec, one line per candidate).
std::string renderSuggestReport(const Program &Prog,
                                const std::vector<SuggestResult> &Results,
                                const std::string &Name);

} // namespace commcsl

#endif // COMMCSL_RSPEC_SUGGEST_H
