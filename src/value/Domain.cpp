//===-- value/Domain.cpp - Value-domain enumeration & sampling ------------===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//

#include "value/Domain.h"

#include <algorithm>
#include <cassert>

using namespace commcsl;

DomainRef Domain::unit() {
  return DomainRef(new Domain(DomainKind::Unit));
}

DomainRef Domain::intRange(int64_t Lo, int64_t Hi) {
  assert(Lo <= Hi && "empty integer domain");
  auto *D = new Domain(DomainKind::Int);
  D->Lo = Lo;
  D->Hi = Hi;
  return DomainRef(D);
}

DomainRef Domain::boolean() {
  return DomainRef(new Domain(DomainKind::Bool));
}

DomainRef Domain::pair(DomainRef Fst, DomainRef Snd) {
  auto *D = new Domain(DomainKind::Pair);
  D->Children = {std::move(Fst), std::move(Snd)};
  return DomainRef(D);
}

DomainRef Domain::seq(DomainRef Elem, unsigned MaxLen) {
  auto *D = new Domain(DomainKind::Seq);
  D->Children = {std::move(Elem)};
  D->MaxSize = MaxLen;
  return DomainRef(D);
}

DomainRef Domain::set(DomainRef Elem, unsigned MaxSize) {
  auto *D = new Domain(DomainKind::Set);
  D->Children = {std::move(Elem)};
  D->MaxSize = MaxSize;
  return DomainRef(D);
}

DomainRef Domain::multiset(DomainRef Elem, unsigned MaxSize) {
  auto *D = new Domain(DomainKind::Multiset);
  D->Children = {std::move(Elem)};
  D->MaxSize = MaxSize;
  return DomainRef(D);
}

DomainRef Domain::map(DomainRef Key, DomainRef Val, unsigned MaxSize) {
  auto *D = new Domain(DomainKind::Map);
  D->Children = {std::move(Key), std::move(Val)};
  D->MaxSize = MaxSize;
  return DomainRef(D);
}

uint64_t Domain::count(uint64_t Cap) const {
  auto SatMul = [Cap](uint64_t A, uint64_t B) -> uint64_t {
    if (A == 0 || B == 0)
      return 0;
    if (A > Cap / B)
      return Cap;
    return std::min(Cap, A * B);
  };
  auto SatAdd = [Cap](uint64_t A, uint64_t B) -> uint64_t {
    uint64_t S = A + B;
    return (S < A || S > Cap) ? Cap : S;
  };
  switch (Kind) {
  case DomainKind::Unit:
    return 1;
  case DomainKind::Bool:
    return 2;
  case DomainKind::Int: {
    // Width computed in uint64_t: Hi - Lo is modular and, since Lo <= Hi,
    // equals the true width even for intRange(INT64_MIN, INT64_MAX), where
    // the old `Hi - Lo + 1` overflowed int64_t (UB).
    uint64_t Width = static_cast<uint64_t>(Hi) - static_cast<uint64_t>(Lo);
    return Width >= Cap ? Cap : Width + 1;
  }
  case DomainKind::Pair:
    return SatMul(Children[0]->count(Cap), Children[1]->count(Cap));
  case DomainKind::Seq: {
    uint64_t E = Children[0]->count(Cap);
    uint64_t Total = 0, Pow = 1;
    for (unsigned L = 0; L <= MaxSize; ++L) {
      Total = SatAdd(Total, Pow);
      Pow = SatMul(Pow, E);
    }
    return Total;
  }
  case DomainKind::Set:
  case DomainKind::Multiset: {
    // Upper bound: sequences count dominates; a precise count is not needed
    // by clients, only a saturating estimate for budgeting.
    uint64_t E = Children[0]->count(Cap);
    uint64_t Total = 0, Pow = 1;
    for (unsigned L = 0; L <= MaxSize; ++L) {
      Total = SatAdd(Total, Pow);
      Pow = SatMul(Pow, E);
    }
    return Total;
  }
  case DomainKind::Map: {
    uint64_t K = Children[0]->count(Cap);
    uint64_t V = Children[1]->count(Cap);
    uint64_t Total = 0, Pow = 1;
    for (unsigned L = 0; L <= MaxSize && L <= K; ++L) {
      Total = SatAdd(Total, Pow);
      Pow = SatMul(Pow, SatMul(K, V));
    }
    return Total;
  }
  }
  return Cap;
}

namespace {

/// Streams all tuples of length \p Len over \p Elems (with repetition,
/// order significant; odometer order, last position fastest) into \p Emit,
/// at most \p MaxCount of them.  \p Scratch is the reused tuple buffer; it
/// is only valid for the duration of each Emit call.  Emit returns false to
/// stop early.
template <typename EmitFn>
void forEachTuple(const std::vector<ValueRef> &Elems, unsigned Len,
                  size_t MaxCount, std::vector<ValueRef> &Scratch,
                  EmitFn &&Emit) {
  if (MaxCount == 0)
    return;
  if (Len == 0) {
    Scratch.clear();
    Emit(Scratch);
    return;
  }
  if (Elems.empty())
    return;
  std::vector<size_t> Idx(Len, 0);
  size_t Emitted = 0;
  while (true) {
    Scratch.clear();
    for (size_t I : Idx)
      Scratch.push_back(Elems[I]);
    if (!Emit(Scratch) || ++Emitted >= MaxCount)
      return;
    // Odometer increment.
    unsigned Pos = Len;
    while (Pos > 0) {
      --Pos;
      if (++Idx[Pos] < Elems.size())
        break;
      Idx[Pos] = 0;
      if (Pos == 0)
        return;
    }
  }
}

/// Streams all non-decreasing (\p Strict: strictly increasing) tuples of
/// length \p Len — multicombinations resp. combinations — in lexicographic
/// order, at most \p MaxCount of them.  Same Emit/Scratch contract as
/// forEachTuple.
template <typename EmitFn>
void forEachMulticombo(const std::vector<ValueRef> &Elems, unsigned Len,
                       size_t MaxCount, bool Strict,
                       std::vector<ValueRef> &Scratch, EmitFn &&Emit) {
  if (MaxCount == 0)
    return;
  if (Len == 0) {
    Scratch.clear();
    Emit(Scratch);
    return;
  }
  if (Elems.empty())
    return;
  if (Strict && Len > Elems.size())
    return;
  std::vector<size_t> Idx;
  // Initialize to the lexicographically-first valid tuple.
  for (unsigned I = 0; I < Len; ++I)
    Idx.push_back(Strict ? I : 0);
  size_t Emitted = 0;
  while (true) {
    Scratch.clear();
    for (size_t I : Idx)
      Scratch.push_back(Elems[I]);
    if (!Emit(Scratch) || ++Emitted >= MaxCount)
      return;
    // Find rightmost position that can be incremented.
    int Pos = static_cast<int>(Len) - 1;
    while (Pos >= 0) {
      size_t Limit = Elems.size() - (Strict ? (Len - 1 - Pos) : 0);
      if (Idx[Pos] + 1 < Limit) {
        ++Idx[Pos];
        for (unsigned J = Pos + 1; J < Len; ++J)
          Idx[J] = Strict ? Idx[J - 1] + 1 : Idx[Pos];
        break;
      }
      --Pos;
    }
    if (Pos < 0)
      return;
  }
}

} // namespace

std::vector<ValueRef> Domain::enumerate(size_t MaxCount) const {
  std::vector<ValueRef> Out;
  enumerateInto(MaxCount, Out);
  return Out;
}

size_t Domain::enumerateInto(size_t MaxCount,
                             std::vector<ValueRef> &Out) const {
  const size_t Start = Out.size();
  // Remaining budget; every push below is guarded by it, so no kind can
  // overshoot MaxCount (enumerate(0) is empty for every kind).
  auto Remaining = [&] { return MaxCount - (Out.size() - Start); };
  switch (Kind) {
  case DomainKind::Unit:
    if (MaxCount > 0)
      Out.push_back(ValueFactory::unit());
    break;
  case DomainKind::Bool:
    if (MaxCount > 0)
      Out.push_back(ValueFactory::boolV(false));
    if (MaxCount > 1)
      Out.push_back(ValueFactory::boolV(true));
    break;
  case DomainKind::Int:
    for (int64_t I = Lo; Remaining() > 0; ++I) {
      Out.push_back(ValueFactory::intV(I));
      if (I == Hi) // break before ++I: Hi may be INT64_MAX
        break;
    }
    break;
  case DomainKind::Pair: {
    std::vector<ValueRef> Fsts, Snds;
    Children[0]->enumerateInto(MaxCount, Fsts);
    Children[1]->enumerateInto(MaxCount, Snds);
    for (const ValueRef &F : Fsts) {
      for (const ValueRef &S : Snds) {
        if (Remaining() == 0)
          return Out.size() - Start;
        Out.push_back(ValueFactory::pair(F, S));
      }
    }
    break;
  }
  case DomainKind::Seq: {
    std::vector<ValueRef> Elems;
    Children[0]->enumerateInto(MaxCount, Elems);
    std::vector<ValueRef> Scratch;
    for (unsigned L = 0; L <= MaxSize && Remaining() > 0; ++L)
      forEachTuple(Elems, L, Remaining(), Scratch,
                   [&](const std::vector<ValueRef> &T) {
                     Out.push_back(ValueFactory::seq(T.data(), T.size()));
                     return true;
                   });
    break;
  }
  case DomainKind::Set: {
    std::vector<ValueRef> Elems;
    Children[0]->enumerateInto(MaxCount, Elems);
    std::vector<ValueRef> Scratch;
    for (unsigned L = 0; L <= MaxSize && Remaining() > 0; ++L)
      forEachMulticombo(Elems, L, Remaining(), /*Strict=*/true, Scratch,
                        [&](const std::vector<ValueRef> &T) {
                          // Strictly increasing already: canonical as-is.
                          Out.push_back(ValueFactory::set(T.data(), T.size()));
                          return true;
                        });
    break;
  }
  case DomainKind::Multiset: {
    std::vector<ValueRef> Elems;
    Children[0]->enumerateInto(MaxCount, Elems);
    std::vector<ValueRef> Scratch;
    for (unsigned L = 0; L <= MaxSize && Remaining() > 0; ++L)
      forEachMulticombo(
          Elems, L, Remaining(), /*Strict=*/false, Scratch,
          [&](const std::vector<ValueRef> &T) {
            Out.push_back(ValueFactory::multiset(T.data(), T.size()));
            return true;
          });
    break;
  }
  case DomainKind::Map: {
    std::vector<ValueRef> Keys, Vals;
    Children[0]->enumerateInto(MaxCount, Keys);
    Children[1]->enumerateInto(MaxCount, Vals);
    std::vector<ValueRef> KeyScratch, ValScratch;
    std::vector<std::pair<ValueRef, ValueRef>> Entries;
    for (unsigned L = 0; L <= MaxSize && Remaining() > 0; ++L) {
      // Choose L distinct keys (strict combos), then all value assignments.
      // Each key combo yields at least one map, so the remaining budget
      // (not the full MaxCount) bounds the combos worth generating.
      forEachMulticombo(
          Keys, L, Remaining(), /*Strict=*/true, KeyScratch,
          [&](const std::vector<ValueRef> &KC) {
            if (Remaining() == 0)
              return false;
            forEachTuple(Vals, L, Remaining(), ValScratch,
                         [&](const std::vector<ValueRef> &VT) {
                           Entries.clear();
                           for (unsigned I = 0; I < L; ++I)
                             Entries.emplace_back(KC[I], VT[I]);
                           Out.push_back(ValueFactory::map(Entries));
                           return true;
                         });
            return true;
          });
    }
    break;
  }
  }
  return Out.size() - Start;
}

ValueRef Domain::sample(std::mt19937_64 &Rng) const {
  switch (Kind) {
  case DomainKind::Unit:
    return ValueFactory::unit();
  case DomainKind::Bool:
    return ValueFactory::boolV(Rng() & 1);
  case DomainKind::Int: {
    std::uniform_int_distribution<int64_t> Dist(Lo, Hi);
    return ValueFactory::intV(Dist(Rng));
  }
  case DomainKind::Pair:
    return ValueFactory::pair(Children[0]->sample(Rng),
                              Children[1]->sample(Rng));
  case DomainKind::Seq: {
    std::uniform_int_distribution<unsigned> LenDist(0, MaxSize);
    unsigned Len = LenDist(Rng);
    std::vector<ValueRef> Elems;
    for (unsigned I = 0; I < Len; ++I)
      Elems.push_back(Children[0]->sample(Rng));
    return ValueFactory::seq(std::move(Elems));
  }
  case DomainKind::Set: {
    std::uniform_int_distribution<unsigned> LenDist(0, MaxSize);
    unsigned Len = LenDist(Rng);
    // Deduplicate on insertion: independent draws would silently realize a
    // smaller set than drawn whenever they collide. Resample a bounded
    // number of times per element; if the element domain is too small to
    // yield a fresh value, shrink deterministically (drop the slot).
    std::vector<ValueRef> Elems;
    for (unsigned I = 0; I < Len; ++I) {
      for (unsigned Try = 0; Try < 2 * MaxSize + 4; ++Try) {
        ValueRef E = Children[0]->sample(Rng);
        bool Fresh = true;
        for (const ValueRef &Seen : Elems)
          Fresh &= !Value::equal(Seen, E);
        if (Fresh) {
          Elems.push_back(std::move(E));
          break;
        }
      }
    }
    return ValueFactory::set(std::move(Elems));
  }
  case DomainKind::Multiset: {
    // Duplicates are semantically meaningful in a multiset (realized size
    // always equals the drawn length), so no deduplication here.
    std::uniform_int_distribution<unsigned> LenDist(0, MaxSize);
    unsigned Len = LenDist(Rng);
    std::vector<ValueRef> Elems;
    for (unsigned I = 0; I < Len; ++I)
      Elems.push_back(Children[0]->sample(Rng));
    return ValueFactory::multiset(std::move(Elems));
  }
  case DomainKind::Map: {
    std::uniform_int_distribution<unsigned> LenDist(0, MaxSize);
    unsigned Len = LenDist(Rng);
    // Keys are deduplicated on insertion like Set elements: independent key
    // draws would collide and silently shrink the map (the factory's
    // later-entry-wins canonicalization would drop entries).
    std::vector<std::pair<ValueRef, ValueRef>> Entries;
    for (unsigned I = 0; I < Len; ++I) {
      for (unsigned Try = 0; Try < 2 * MaxSize + 4; ++Try) {
        ValueRef K = Children[0]->sample(Rng);
        bool Fresh = true;
        for (const auto &Entry : Entries)
          Fresh &= !Value::equal(Entry.first, K);
        if (Fresh) {
          Entries.emplace_back(std::move(K), Children[1]->sample(Rng));
          break;
        }
      }
    }
    return ValueFactory::map(std::move(Entries));
  }
  }
  return ValueFactory::unit();
}
