//===-- value/Domain.cpp - Value-domain enumeration & sampling ------------===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//

#include "value/Domain.h"

#include <algorithm>
#include <cassert>

using namespace commcsl;

DomainRef Domain::unit() {
  return DomainRef(new Domain(DomainKind::Unit));
}

DomainRef Domain::intRange(int64_t Lo, int64_t Hi) {
  assert(Lo <= Hi && "empty integer domain");
  auto *D = new Domain(DomainKind::Int);
  D->Lo = Lo;
  D->Hi = Hi;
  return DomainRef(D);
}

DomainRef Domain::boolean() {
  return DomainRef(new Domain(DomainKind::Bool));
}

DomainRef Domain::pair(DomainRef Fst, DomainRef Snd) {
  auto *D = new Domain(DomainKind::Pair);
  D->Children = {std::move(Fst), std::move(Snd)};
  return DomainRef(D);
}

DomainRef Domain::seq(DomainRef Elem, unsigned MaxLen) {
  auto *D = new Domain(DomainKind::Seq);
  D->Children = {std::move(Elem)};
  D->MaxSize = MaxLen;
  return DomainRef(D);
}

DomainRef Domain::set(DomainRef Elem, unsigned MaxSize) {
  auto *D = new Domain(DomainKind::Set);
  D->Children = {std::move(Elem)};
  D->MaxSize = MaxSize;
  return DomainRef(D);
}

DomainRef Domain::multiset(DomainRef Elem, unsigned MaxSize) {
  auto *D = new Domain(DomainKind::Multiset);
  D->Children = {std::move(Elem)};
  D->MaxSize = MaxSize;
  return DomainRef(D);
}

DomainRef Domain::map(DomainRef Key, DomainRef Val, unsigned MaxSize) {
  auto *D = new Domain(DomainKind::Map);
  D->Children = {std::move(Key), std::move(Val)};
  D->MaxSize = MaxSize;
  return DomainRef(D);
}

uint64_t Domain::count(uint64_t Cap) const {
  auto SatMul = [Cap](uint64_t A, uint64_t B) -> uint64_t {
    if (A == 0 || B == 0)
      return 0;
    if (A > Cap / B)
      return Cap;
    return std::min(Cap, A * B);
  };
  auto SatAdd = [Cap](uint64_t A, uint64_t B) -> uint64_t {
    uint64_t S = A + B;
    return (S < A || S > Cap) ? Cap : S;
  };
  switch (Kind) {
  case DomainKind::Unit:
    return 1;
  case DomainKind::Bool:
    return 2;
  case DomainKind::Int:
    return std::min<uint64_t>(Cap, static_cast<uint64_t>(Hi - Lo + 1));
  case DomainKind::Pair:
    return SatMul(Children[0]->count(Cap), Children[1]->count(Cap));
  case DomainKind::Seq: {
    uint64_t E = Children[0]->count(Cap);
    uint64_t Total = 0, Pow = 1;
    for (unsigned L = 0; L <= MaxSize; ++L) {
      Total = SatAdd(Total, Pow);
      Pow = SatMul(Pow, E);
    }
    return Total;
  }
  case DomainKind::Set:
  case DomainKind::Multiset: {
    // Upper bound: sequences count dominates; a precise count is not needed
    // by clients, only a saturating estimate for budgeting.
    uint64_t E = Children[0]->count(Cap);
    uint64_t Total = 0, Pow = 1;
    for (unsigned L = 0; L <= MaxSize; ++L) {
      Total = SatAdd(Total, Pow);
      Pow = SatMul(Pow, E);
    }
    return Total;
  }
  case DomainKind::Map: {
    uint64_t K = Children[0]->count(Cap);
    uint64_t V = Children[1]->count(Cap);
    uint64_t Total = 0, Pow = 1;
    for (unsigned L = 0; L <= MaxSize && L <= K; ++L) {
      Total = SatAdd(Total, Pow);
      Pow = SatMul(Pow, SatMul(K, V));
    }
    return Total;
  }
  }
  return Cap;
}

namespace {

/// Appends to \p Out all tuples of length \p Len over \p Elems (with
/// repetition, order significant), bounded by \p MaxCount total results.
void enumTuples(const std::vector<ValueRef> &Elems, unsigned Len,
                size_t MaxCount, std::vector<std::vector<ValueRef>> &Out) {
  std::vector<size_t> Idx(Len, 0);
  if (Len == 0) {
    Out.push_back({});
    return;
  }
  if (Elems.empty())
    return;
  while (Out.size() < MaxCount) {
    std::vector<ValueRef> Tuple;
    Tuple.reserve(Len);
    for (size_t I : Idx)
      Tuple.push_back(Elems[I]);
    Out.push_back(std::move(Tuple));
    // Odometer increment.
    unsigned Pos = Len;
    while (Pos > 0) {
      --Pos;
      if (++Idx[Pos] < Elems.size())
        break;
      Idx[Pos] = 0;
      if (Pos == 0)
        return;
    }
  }
}

/// Appends all non-decreasing tuples (multicombinations) of length \p Len.
void enumMulticombos(const std::vector<ValueRef> &Elems, unsigned Len,
                     size_t MaxCount, std::vector<std::vector<ValueRef>> &Out,
                     bool Strict) {
  if (Len == 0) {
    Out.push_back({});
    return;
  }
  if (Elems.empty())
    return;
  std::vector<size_t> Idx;
  // Initialize to the lexicographically-first valid tuple.
  for (unsigned I = 0; I < Len; ++I)
    Idx.push_back(Strict ? I : 0);
  if (Strict && Len > Elems.size())
    return;
  while (Out.size() < MaxCount) {
    std::vector<ValueRef> Tuple;
    Tuple.reserve(Len);
    for (size_t I : Idx)
      Tuple.push_back(Elems[I]);
    Out.push_back(std::move(Tuple));
    // Find rightmost position that can be incremented.
    int Pos = static_cast<int>(Len) - 1;
    while (Pos >= 0) {
      size_t Limit = Elems.size() - (Strict ? (Len - 1 - Pos) : 0);
      if (Idx[Pos] + 1 < Limit) {
        ++Idx[Pos];
        for (unsigned J = Pos + 1; J < Len; ++J)
          Idx[J] = Strict ? Idx[J - 1] + 1 : Idx[Pos];
        break;
      }
      --Pos;
    }
    if (Pos < 0)
      return;
  }
}

} // namespace

std::vector<ValueRef> Domain::enumerate(size_t MaxCount) const {
  std::vector<ValueRef> Out;
  switch (Kind) {
  case DomainKind::Unit:
    Out.push_back(ValueFactory::unit());
    break;
  case DomainKind::Bool:
    Out.push_back(ValueFactory::boolV(false));
    if (MaxCount > 1)
      Out.push_back(ValueFactory::boolV(true));
    break;
  case DomainKind::Int:
    for (int64_t I = Lo; I <= Hi && Out.size() < MaxCount; ++I)
      Out.push_back(ValueFactory::intV(I));
    break;
  case DomainKind::Pair: {
    std::vector<ValueRef> Fsts = Children[0]->enumerate(MaxCount);
    std::vector<ValueRef> Snds = Children[1]->enumerate(MaxCount);
    for (const ValueRef &F : Fsts) {
      for (const ValueRef &S : Snds) {
        if (Out.size() >= MaxCount)
          return Out;
        Out.push_back(ValueFactory::pair(F, S));
      }
    }
    break;
  }
  case DomainKind::Seq: {
    std::vector<ValueRef> Elems = Children[0]->enumerate(MaxCount);
    for (unsigned L = 0; L <= MaxSize && Out.size() < MaxCount; ++L) {
      std::vector<std::vector<ValueRef>> Tuples;
      enumTuples(Elems, L, MaxCount - Out.size(), Tuples);
      for (auto &T : Tuples)
        Out.push_back(ValueFactory::seq(std::move(T)));
    }
    break;
  }
  case DomainKind::Set: {
    std::vector<ValueRef> Elems = Children[0]->enumerate(MaxCount);
    for (unsigned L = 0; L <= MaxSize && Out.size() < MaxCount; ++L) {
      std::vector<std::vector<ValueRef>> Combos;
      enumMulticombos(Elems, L, MaxCount - Out.size(), Combos,
                      /*Strict=*/true);
      for (auto &T : Combos)
        Out.push_back(ValueFactory::set(std::move(T)));
    }
    break;
  }
  case DomainKind::Multiset: {
    std::vector<ValueRef> Elems = Children[0]->enumerate(MaxCount);
    for (unsigned L = 0; L <= MaxSize && Out.size() < MaxCount; ++L) {
      std::vector<std::vector<ValueRef>> Combos;
      enumMulticombos(Elems, L, MaxCount - Out.size(), Combos,
                      /*Strict=*/false);
      for (auto &T : Combos)
        Out.push_back(ValueFactory::multiset(std::move(T)));
    }
    break;
  }
  case DomainKind::Map: {
    std::vector<ValueRef> Keys = Children[0]->enumerate(MaxCount);
    std::vector<ValueRef> Vals = Children[1]->enumerate(MaxCount);
    for (unsigned L = 0; L <= MaxSize && Out.size() < MaxCount; ++L) {
      // Choose L distinct keys (strict combos), then all value assignments.
      // Each key combo yields at least one map, so the remaining budget
      // (not the full MaxCount) bounds the combos worth generating.
      std::vector<std::vector<ValueRef>> KeyCombos;
      enumMulticombos(Keys, L, MaxCount - Out.size(), KeyCombos,
                      /*Strict=*/true);
      for (const auto &KC : KeyCombos) {
        std::vector<std::vector<ValueRef>> ValTuples;
        enumTuples(Vals, L, MaxCount - Out.size(), ValTuples);
        for (const auto &VT : ValTuples) {
          if (Out.size() >= MaxCount)
            return Out;
          std::vector<std::pair<ValueRef, ValueRef>> Entries;
          for (unsigned I = 0; I < L; ++I)
            Entries.emplace_back(KC[I], VT[I]);
          Out.push_back(ValueFactory::map(std::move(Entries)));
        }
        if (Out.size() >= MaxCount)
          return Out;
      }
    }
    break;
  }
  }
  return Out;
}

ValueRef Domain::sample(std::mt19937_64 &Rng) const {
  switch (Kind) {
  case DomainKind::Unit:
    return ValueFactory::unit();
  case DomainKind::Bool:
    return ValueFactory::boolV(Rng() & 1);
  case DomainKind::Int: {
    std::uniform_int_distribution<int64_t> Dist(Lo, Hi);
    return ValueFactory::intV(Dist(Rng));
  }
  case DomainKind::Pair:
    return ValueFactory::pair(Children[0]->sample(Rng),
                              Children[1]->sample(Rng));
  case DomainKind::Seq: {
    std::uniform_int_distribution<unsigned> LenDist(0, MaxSize);
    unsigned Len = LenDist(Rng);
    std::vector<ValueRef> Elems;
    for (unsigned I = 0; I < Len; ++I)
      Elems.push_back(Children[0]->sample(Rng));
    return ValueFactory::seq(std::move(Elems));
  }
  case DomainKind::Set: {
    std::uniform_int_distribution<unsigned> LenDist(0, MaxSize);
    unsigned Len = LenDist(Rng);
    // Deduplicate on insertion: independent draws would silently realize a
    // smaller set than drawn whenever they collide. Resample a bounded
    // number of times per element; if the element domain is too small to
    // yield a fresh value, shrink deterministically (drop the slot).
    std::vector<ValueRef> Elems;
    for (unsigned I = 0; I < Len; ++I) {
      for (unsigned Try = 0; Try < 2 * MaxSize + 4; ++Try) {
        ValueRef E = Children[0]->sample(Rng);
        bool Fresh = true;
        for (const ValueRef &Seen : Elems)
          Fresh &= !Value::equal(Seen, E);
        if (Fresh) {
          Elems.push_back(std::move(E));
          break;
        }
      }
    }
    return ValueFactory::set(std::move(Elems));
  }
  case DomainKind::Multiset: {
    // Duplicates are semantically meaningful in a multiset (realized size
    // always equals the drawn length), so no deduplication here.
    std::uniform_int_distribution<unsigned> LenDist(0, MaxSize);
    unsigned Len = LenDist(Rng);
    std::vector<ValueRef> Elems;
    for (unsigned I = 0; I < Len; ++I)
      Elems.push_back(Children[0]->sample(Rng));
    return ValueFactory::multiset(std::move(Elems));
  }
  case DomainKind::Map: {
    std::uniform_int_distribution<unsigned> LenDist(0, MaxSize);
    unsigned Len = LenDist(Rng);
    // Keys are deduplicated on insertion like Set elements: independent key
    // draws would collide and silently shrink the map (the factory's
    // later-entry-wins canonicalization would drop entries).
    std::vector<std::pair<ValueRef, ValueRef>> Entries;
    for (unsigned I = 0; I < Len; ++I) {
      for (unsigned Try = 0; Try < 2 * MaxSize + 4; ++Try) {
        ValueRef K = Children[0]->sample(Rng);
        bool Fresh = true;
        for (const auto &Entry : Entries)
          Fresh &= !Value::equal(Entry.first, K);
        if (Fresh) {
          Entries.emplace_back(std::move(K), Children[1]->sample(Rng));
          break;
        }
      }
    }
    return ValueFactory::map(std::move(Entries));
  }
  }
  return ValueFactory::unit();
}
