//===-- value/ValueOps.cpp - Operations on pure values --------------------===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//

#include "value/ValueOps.h"

#include <algorithm>

using namespace commcsl;

namespace {
using VF = ValueFactory;

int64_t asInt(const ValueRef &V) { return V->getInt(); }
bool asBool(const ValueRef &V) { return V->getBool(); }
} // namespace

//===----------------------------------------------------------------------===//
// Integer arithmetic
//===----------------------------------------------------------------------===//

ValueRef vops::add(const ValueRef &A, const ValueRef &B) {
  return VF::intV(asInt(A) + asInt(B));
}

ValueRef vops::sub(const ValueRef &A, const ValueRef &B) {
  return VF::intV(asInt(A) - asInt(B));
}

ValueRef vops::mul(const ValueRef &A, const ValueRef &B) {
  return VF::intV(asInt(A) * asInt(B));
}

ValueRef vops::divT(const ValueRef &A, const ValueRef &B) {
  int64_t D = asInt(B);
  return VF::intV(D == 0 ? 0 : asInt(A) / D);
}

ValueRef vops::modT(const ValueRef &A, const ValueRef &B) {
  int64_t D = asInt(B);
  return VF::intV(D == 0 ? 0 : asInt(A) % D);
}

ValueRef vops::neg(const ValueRef &A) { return VF::intV(-asInt(A)); }

ValueRef vops::minV(const ValueRef &A, const ValueRef &B) {
  return VF::intV(std::min(asInt(A), asInt(B)));
}

ValueRef vops::maxV(const ValueRef &A, const ValueRef &B) {
  return VF::intV(std::max(asInt(A), asInt(B)));
}

ValueRef vops::absV(const ValueRef &A) {
  int64_t I = asInt(A);
  return VF::intV(I < 0 ? -I : I);
}

//===----------------------------------------------------------------------===//
// Comparisons and logic
//===----------------------------------------------------------------------===//

ValueRef vops::eq(const ValueRef &A, const ValueRef &B) {
  return VF::boolV(Value::equal(A, B));
}

ValueRef vops::ne(const ValueRef &A, const ValueRef &B) {
  return VF::boolV(!Value::equal(A, B));
}

ValueRef vops::lt(const ValueRef &A, const ValueRef &B) {
  return VF::boolV(Value::compare(A, B) < 0);
}

ValueRef vops::le(const ValueRef &A, const ValueRef &B) {
  return VF::boolV(Value::compare(A, B) <= 0);
}

ValueRef vops::gt(const ValueRef &A, const ValueRef &B) {
  return VF::boolV(Value::compare(A, B) > 0);
}

ValueRef vops::ge(const ValueRef &A, const ValueRef &B) {
  return VF::boolV(Value::compare(A, B) >= 0);
}

ValueRef vops::logAnd(const ValueRef &A, const ValueRef &B) {
  return VF::boolV(asBool(A) && asBool(B));
}

ValueRef vops::logOr(const ValueRef &A, const ValueRef &B) {
  return VF::boolV(asBool(A) || asBool(B));
}

ValueRef vops::logNot(const ValueRef &A) { return VF::boolV(!asBool(A)); }

//===----------------------------------------------------------------------===//
// Pairs
//===----------------------------------------------------------------------===//

ValueRef vops::fst(const ValueRef &P) {
  assert(P->kind() == ValueKind::Pair && "fst on non-pair");
  return P->elems()[0];
}

ValueRef vops::snd(const ValueRef &P) {
  assert(P->kind() == ValueKind::Pair && "snd on non-pair");
  return P->elems()[1];
}

//===----------------------------------------------------------------------===//
// Sequences
//===----------------------------------------------------------------------===//

ValueRef vops::seqLen(const ValueRef &S) {
  assert(S->kind() == ValueKind::Seq && "len on non-seq");
  return VF::intV(static_cast<int64_t>(S->elems().size()));
}

ValueRef vops::seqAppend(const ValueRef &S, const ValueRef &V) {
  assert(S->kind() == ValueKind::Seq && "append on non-seq");
  std::vector<ValueRef> Elems = S->elems();
  Elems.push_back(V);
  return VF::seq(std::move(Elems));
}

ValueRef vops::seqConcat(const ValueRef &A, const ValueRef &B) {
  assert(A->kind() == ValueKind::Seq && B->kind() == ValueKind::Seq &&
         "concat on non-seq");
  std::vector<ValueRef> Elems = A->elems();
  Elems.insert(Elems.end(), B->elems().begin(), B->elems().end());
  return VF::seq(std::move(Elems));
}

std::optional<ValueRef> vops::seqAt(const ValueRef &S, int64_t I) {
  assert(S->kind() == ValueKind::Seq && "at on non-seq");
  if (I < 0 || static_cast<size_t>(I) >= S->elems().size())
    return std::nullopt;
  return S->elems()[static_cast<size_t>(I)];
}

ValueRef vops::seqAtOr(const ValueRef &S, const ValueRef &I,
                       const ValueRef &Default) {
  std::optional<ValueRef> E = seqAt(S, I->getInt());
  return E ? *E : Default;
}

std::optional<ValueRef> vops::seqHead(const ValueRef &S) {
  assert(S->kind() == ValueKind::Seq && "head on non-seq");
  if (S->elems().empty())
    return std::nullopt;
  return S->elems().front();
}

std::optional<ValueRef> vops::seqLast(const ValueRef &S) {
  assert(S->kind() == ValueKind::Seq && "last on non-seq");
  if (S->elems().empty())
    return std::nullopt;
  return S->elems().back();
}

ValueRef vops::seqTail(const ValueRef &S) {
  assert(S->kind() == ValueKind::Seq && "tail on non-seq");
  ValueElems E = S->elems();
  if (E.empty())
    return S;
  return VF::seq(E.begin() + 1, E.size() - 1);
}

ValueRef vops::seqInit(const ValueRef &S) {
  assert(S->kind() == ValueKind::Seq && "init on non-seq");
  ValueElems E = S->elems();
  if (E.empty())
    return S;
  return VF::seq(E.begin(), E.size() - 1);
}

ValueRef vops::seqContains(const ValueRef &S, const ValueRef &V) {
  assert(S->kind() == ValueKind::Seq && "contains on non-seq");
  for (const ValueRef &E : S->elems())
    if (Value::equal(E, V))
      return VF::boolV(true);
  return VF::boolV(false);
}

ValueRef vops::seqTake(const ValueRef &S, const ValueRef &N) {
  assert(S->kind() == ValueKind::Seq && "take on non-seq");
  ValueElems E = S->elems();
  int64_t K =
      std::clamp<int64_t>(N->getInt(), 0, static_cast<int64_t>(E.size()));
  return VF::seq(E.begin(), static_cast<size_t>(K));
}

ValueRef vops::seqDrop(const ValueRef &S, const ValueRef &N) {
  assert(S->kind() == ValueKind::Seq && "drop on non-seq");
  ValueElems E = S->elems();
  int64_t K =
      std::clamp<int64_t>(N->getInt(), 0, static_cast<int64_t>(E.size()));
  return VF::seq(E.begin() + K, E.size() - static_cast<size_t>(K));
}

ValueRef vops::seqSort(const ValueRef &S) {
  assert(S->kind() == ValueKind::Seq && "sort on non-seq");
  std::vector<ValueRef> Elems = S->elems();
  std::sort(Elems.begin(), Elems.end(), ValueRefLess());
  return VF::seq(std::move(Elems));
}

ValueRef vops::seqToMultiset(const ValueRef &S) {
  assert(S->kind() == ValueKind::Seq && "to_mset on non-seq");
  return VF::multiset(S->elems());
}

ValueRef vops::seqToSet(const ValueRef &S) {
  assert(S->kind() == ValueKind::Seq && "to_set on non-seq");
  return VF::set(S->elems());
}

namespace {
/// Saturating signed addition: overflow clamps to the int64_t range in the
/// direction of the overflow instead of wrapping (the old unguarded
/// `Sum += x` was signed-overflow UB).
int64_t satAdd(int64_t A, int64_t B) {
  int64_t R;
  if (!__builtin_add_overflow(A, B, &R))
    return R;
  return B > 0 ? INT64_MAX : INT64_MIN;
}
} // namespace

ValueRef vops::seqSum(const ValueRef &S) {
  assert(S->kind() == ValueKind::Seq && "sum on non-seq");
  int64_t Sum = 0;
  for (const ValueRef &E : S->elems())
    Sum = satAdd(Sum, E->getInt());
  return VF::intV(Sum);
}

ValueRef vops::seqMean(const ValueRef &S) {
  assert(S->kind() == ValueKind::Seq && "mean on non-seq");
  ValueElems Elems = S->elems();
  if (Elems.empty())
    return VF::intV(0);
  int64_t Sum = 0;
  for (const ValueRef &E : Elems)
    Sum = satAdd(Sum, E->getInt());
  // Floor division (round toward -inf), matching the mathematical mean on
  // negatives: mean([-3, -4]) is -4, not the old truncation's -3.  N > 0 and
  // positive, so only the sign of the remainder matters.
  int64_t N = static_cast<int64_t>(Elems.size());
  int64_t Q = Sum / N;
  if (Sum % N != 0 && Sum < 0)
    --Q;
  return VF::intV(Q);
}

//===----------------------------------------------------------------------===//
// Sets
//===----------------------------------------------------------------------===//

ValueRef vops::setAdd(const ValueRef &S, const ValueRef &V) {
  assert(S->kind() == ValueKind::Set && "set_add on non-set");
  std::vector<ValueRef> Elems = S->elems();
  Elems.push_back(V);
  return VF::set(std::move(Elems));
}

ValueRef vops::setUnion(const ValueRef &A, const ValueRef &B) {
  assert(A->kind() == ValueKind::Set && B->kind() == ValueKind::Set &&
         "set_union on non-set");
  std::vector<ValueRef> Elems = A->elems();
  Elems.insert(Elems.end(), B->elems().begin(), B->elems().end());
  return VF::set(std::move(Elems));
}

ValueRef vops::setInter(const ValueRef &A, const ValueRef &B) {
  assert(A->kind() == ValueKind::Set && B->kind() == ValueKind::Set &&
         "set_inter on non-set");
  std::vector<ValueRef> Elems;
  for (const ValueRef &E : A->elems())
    if (asBool(setMember(B, E)))
      Elems.push_back(E);
  return VF::set(std::move(Elems));
}

ValueRef vops::setDiff(const ValueRef &A, const ValueRef &B) {
  assert(A->kind() == ValueKind::Set && B->kind() == ValueKind::Set &&
         "set_diff on non-set");
  std::vector<ValueRef> Elems;
  for (const ValueRef &E : A->elems())
    if (!asBool(setMember(B, E)))
      Elems.push_back(E);
  return VF::set(std::move(Elems));
}

ValueRef vops::setMember(const ValueRef &S, const ValueRef &V) {
  assert(S->kind() == ValueKind::Set && "set_member on non-set");
  // Elements are sorted; binary search.
  const auto &Elems = S->elems();
  auto It = std::lower_bound(Elems.begin(), Elems.end(), V,
                             [](const ValueRef &A, const ValueRef &B) {
                               return Value::compare(A, B) < 0;
                             });
  return VF::boolV(It != Elems.end() && Value::equal(*It, V));
}

ValueRef vops::setSize(const ValueRef &S) {
  assert(S->kind() == ValueKind::Set && "set_size on non-set");
  return VF::intV(static_cast<int64_t>(S->elems().size()));
}

ValueRef vops::setToSeq(const ValueRef &S) {
  assert(S->kind() == ValueKind::Set && "set_to_seq on non-set");
  return VF::seq(S->elems());
}

//===----------------------------------------------------------------------===//
// Multisets
//===----------------------------------------------------------------------===//

ValueRef vops::msAdd(const ValueRef &M, const ValueRef &V) {
  assert(M->kind() == ValueKind::Multiset && "mset_add on non-mset");
  std::vector<ValueRef> Elems = M->elems();
  Elems.push_back(V);
  return VF::multiset(std::move(Elems));
}

ValueRef vops::msUnion(const ValueRef &A, const ValueRef &B) {
  assert(A->kind() == ValueKind::Multiset &&
         B->kind() == ValueKind::Multiset && "mset_union on non-mset");
  std::vector<ValueRef> Elems = A->elems();
  Elems.insert(Elems.end(), B->elems().begin(), B->elems().end());
  return VF::multiset(std::move(Elems));
}

ValueRef vops::msDiff(const ValueRef &A, const ValueRef &B) {
  assert(A->kind() == ValueKind::Multiset &&
         B->kind() == ValueKind::Multiset && "mset_diff on non-mset");
  // Both are sorted; subtract multiplicities with a merge walk.
  std::vector<ValueRef> Elems;
  size_t I = 0, J = 0;
  const auto &AE = A->elems();
  const auto &BE = B->elems();
  while (I < AE.size() && J < BE.size()) {
    int C = Value::compare(AE[I], BE[J]);
    if (C < 0) {
      Elems.push_back(AE[I++]);
    } else if (C > 0) {
      ++J;
    } else {
      ++I;
      ++J;
    }
  }
  for (; I < AE.size(); ++I)
    Elems.push_back(AE[I]);
  return VF::multiset(std::move(Elems));
}

ValueRef vops::msCard(const ValueRef &M) {
  assert(M->kind() == ValueKind::Multiset && "mset_card on non-mset");
  return VF::intV(static_cast<int64_t>(M->elems().size()));
}

ValueRef vops::msCount(const ValueRef &M, const ValueRef &V) {
  assert(M->kind() == ValueKind::Multiset && "mset_count on non-mset");
  int64_t N = 0;
  for (const ValueRef &E : M->elems())
    if (Value::equal(E, V))
      ++N;
  return VF::intV(N);
}

ValueRef vops::msToSeq(const ValueRef &M) {
  assert(M->kind() == ValueKind::Multiset && "mset_to_seq on non-mset");
  return VF::seq(M->elems());
}

//===----------------------------------------------------------------------===//
// Maps
//===----------------------------------------------------------------------===//

ValueRef vops::mapPut(const ValueRef &M, const ValueRef &K,
                      const ValueRef &V) {
  assert(M->kind() == ValueKind::Map && "map_put on non-map");
  std::vector<std::pair<ValueRef, ValueRef>> Entries = M->mapEntries();
  Entries.emplace_back(K, V);
  return VF::map(std::move(Entries));
}

std::optional<ValueRef> vops::mapGet(const ValueRef &M, const ValueRef &K) {
  assert(M->kind() == ValueKind::Map && "map_get on non-map");
  const auto &Entries = M->mapEntries();
  auto It = std::lower_bound(Entries.begin(), Entries.end(), K,
                             [](const auto &E, const ValueRef &Key) {
                               return Value::compare(E.first, Key) < 0;
                             });
  if (It != Entries.end() && Value::equal(It->first, K))
    return It->second;
  return std::nullopt;
}

ValueRef vops::mapGetOr(const ValueRef &M, const ValueRef &K,
                        const ValueRef &Default) {
  std::optional<ValueRef> V = mapGet(M, K);
  return V ? *V : Default;
}

ValueRef vops::mapHas(const ValueRef &M, const ValueRef &K) {
  return ValueFactory::boolV(mapGet(M, K).has_value());
}

ValueRef vops::mapRemove(const ValueRef &M, const ValueRef &K) {
  assert(M->kind() == ValueKind::Map && "map_remove on non-map");
  std::vector<std::pair<ValueRef, ValueRef>> Entries;
  for (const auto &E : M->mapEntries())
    if (!Value::equal(E.first, K))
      Entries.push_back(E);
  return VF::map(std::move(Entries));
}

ValueRef vops::mapDom(const ValueRef &M) {
  assert(M->kind() == ValueKind::Map && "dom on non-map");
  std::vector<ValueRef> Keys;
  Keys.reserve(M->mapEntries().size());
  for (const auto &E : M->mapEntries())
    Keys.push_back(E.first);
  return VF::set(std::move(Keys));
}

ValueRef vops::mapValuesMs(const ValueRef &M) {
  assert(M->kind() == ValueKind::Map && "values on non-map");
  std::vector<ValueRef> Vals;
  Vals.reserve(M->mapEntries().size());
  for (const auto &E : M->mapEntries())
    Vals.push_back(E.second);
  return VF::multiset(std::move(Vals));
}

ValueRef vops::mapSize(const ValueRef &M) {
  assert(M->kind() == ValueKind::Map && "map_size on non-map");
  return VF::intV(static_cast<int64_t>(M->mapEntries().size()));
}
