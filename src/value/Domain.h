//===-- value/Domain.h - Value-domain enumeration & sampling ----*- C++ -*-===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Bounded-exhaustive enumeration and random sampling of values of a given
/// shape. This is the engine behind the resource-specification validity
/// checker (Def. 3.1): where the paper discharges the validity quantifiers
/// with Z3, we enumerate all values within a small scope (and additionally
/// sample larger random values), which refutes invalid specifications with a
/// concrete counterexample and validates the rest for the explored scopes.
///
//===----------------------------------------------------------------------===//

#ifndef COMMCSL_VALUE_DOMAIN_H
#define COMMCSL_VALUE_DOMAIN_H

#include "value/Value.h"

#include <cstdint>
#include <memory>
#include <random>
#include <vector>

namespace commcsl {

class Domain;
using DomainRef = std::shared_ptr<const Domain>;

/// Shape of a generated value, mirroring the surface-language types.
enum class DomainKind : uint8_t {
  Unit,
  Int,
  Bool,
  Pair,
  Seq,
  Set,
  Multiset,
  Map,
};

/// A description of a set of values, with explicit small-scope bounds:
/// integer domains carry a range, collection domains carry a maximum size.
class Domain {
public:
  static DomainRef unit();
  static DomainRef intRange(int64_t Lo, int64_t Hi);
  static DomainRef boolean();
  static DomainRef pair(DomainRef Fst, DomainRef Snd);
  static DomainRef seq(DomainRef Elem, unsigned MaxLen);
  static DomainRef set(DomainRef Elem, unsigned MaxSize);
  static DomainRef multiset(DomainRef Elem, unsigned MaxSize);
  static DomainRef map(DomainRef Key, DomainRef Val, unsigned MaxSize);

  DomainKind kind() const { return Kind; }
  int64_t intLo() const { return Lo; }
  int64_t intHi() const { return Hi; }
  unsigned maxSize() const { return MaxSize; }
  const DomainRef &first() const { return Children[0]; }
  const DomainRef &second() const { return Children[1]; }

  /// Enumerates values in this domain in a deterministic order, stopping at
  /// \p MaxCount values. Collections of every size up to the bound are
  /// produced smallest-first.
  std::vector<ValueRef> enumerate(size_t MaxCount) const;

  /// Buffer-filling form of `enumerate`: appends at most \p MaxCount values
  /// to \p Out (same values, same order) and returns the number appended.
  /// This is the hot-path entry point — values are streamed straight into
  /// the caller's buffer with no per-size intermediate vectors, and nested
  /// tuples are built in reused scratch storage.  Every domain kind honors
  /// the budget exactly, including `MaxCount == 0` (historically Unit/Bool
  /// and the empty-collection cases overshot it).
  size_t enumerateInto(size_t MaxCount, std::vector<ValueRef> &Out) const;

  /// Draws a uniformly-ish random value from this domain.
  ValueRef sample(std::mt19937_64 &Rng) const;

  /// Number of values in this domain, saturating at \p Cap. Exact for
  /// Unit/Bool/Int/Pair/Seq (of exact children); an upper bound for
  /// Set/Multiset/Map, which are budgeted by their sequence counts.
  uint64_t count(uint64_t Cap = 1'000'000) const;

private:
  explicit Domain(DomainKind Kind) : Kind(Kind) {}

  DomainKind Kind;
  int64_t Lo = 0;
  int64_t Hi = 0;
  unsigned MaxSize = 0;
  std::vector<DomainRef> Children;
};

} // namespace commcsl

#endif // COMMCSL_VALUE_DOMAIN_H
