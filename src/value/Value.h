//===-- value/Value.h - Pure mathematical value domain ----------*- C++ -*-===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The pure mathematical value domain over which resource specifications are
/// defined (Sec. 2.4 / 3.2 of the paper). Resource specifications map heap
/// data structures to values of this domain via separation-logic predicates;
/// abstraction functions and action functions are total functions on it.
///
/// Values are immutable and shared via `ValueRef`. Sets are kept as sorted
/// unique vectors, multisets as sorted vectors, and maps as key-sorted entry
/// vectors, so structural equality coincides with mathematical equality and
/// hashing/printing are canonical.
///
//===----------------------------------------------------------------------===//

#ifndef COMMCSL_VALUE_VALUE_H
#define COMMCSL_VALUE_VALUE_H

#include <cassert>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace commcsl {

class Value;

/// Shared immutable reference to a Value.
using ValueRef = std::shared_ptr<const Value>;

/// Discriminator for the value domain.
enum class ValueKind : uint8_t {
  Unit,
  Int,
  Bool,
  String,
  Pair,     ///< ordered pair <fst, snd>
  Seq,      ///< finite sequence
  Set,      ///< finite set (canonical: sorted, unique)
  Multiset, ///< finite multiset (canonical: sorted)
  Map,      ///< finite partial map (canonical: key-sorted entries)
};

/// Returns a printable name for \p Kind ("int", "seq", ...).
const char *valueKindName(ValueKind Kind);

/// An immutable mathematical value. Construct through the factory functions
/// below; they maintain the canonical-form invariants for collections.
class Value {
public:
  ValueKind kind() const { return Kind; }

  bool isInt() const { return Kind == ValueKind::Int; }
  bool isBool() const { return Kind == ValueKind::Bool; }

  /// Integer payload; only valid for Int values.
  int64_t getInt() const {
    assert(Kind == ValueKind::Int && "not an int");
    return IntVal;
  }

  /// Boolean payload; only valid for Bool values.
  bool getBool() const {
    assert(Kind == ValueKind::Bool && "not a bool");
    return IntVal != 0;
  }

  /// String payload; only valid for String values.
  const std::string &getString() const {
    assert(Kind == ValueKind::String && "not a string");
    return StrVal;
  }

  /// Elements of a Pair (size 2), Seq, Set or Multiset.
  const std::vector<ValueRef> &elems() const {
    assert((Kind == ValueKind::Pair || Kind == ValueKind::Seq ||
            Kind == ValueKind::Set || Kind == ValueKind::Multiset) &&
           "no element payload");
    return Elems;
  }

  /// Entries of a Map, sorted by key.
  const std::vector<std::pair<ValueRef, ValueRef>> &mapEntries() const {
    assert(Kind == ValueKind::Map && "not a map");
    return MapElems;
  }

  /// Total order over all values: first by kind, then by payload. This is the
  /// order used to canonicalize sets/multisets/maps.
  static int compare(const Value &A, const Value &B);
  static int compare(const ValueRef &A, const ValueRef &B) {
    return compare(*A, *B);
  }

  static bool equal(const ValueRef &A, const ValueRef &B) {
    return compare(*A, *B) == 0;
  }

  /// Structural hash consistent with `equal`.
  size_t hash() const;

  /// Canonical textual rendering, e.g. `ms{1, 1, 2}` or `map{1 -> 2}`.
  std::string str() const;

private:
  friend class ValueFactory;

  explicit Value(ValueKind Kind) : Kind(Kind) {}

  ValueKind Kind;
  int64_t IntVal = 0; ///< Int payload; Bool payload (0/1).
  std::string StrVal;
  std::vector<ValueRef> Elems;
  std::vector<std::pair<ValueRef, ValueRef>> MapElems;
};

/// Factory namespace-like helper building canonical values. All collection
/// constructors canonicalize their input (sorting sets/multisets, sorting
/// and de-duplicating map entries by key with later entries winning).
class ValueFactory {
public:
  static ValueRef unit();
  static ValueRef intV(int64_t V);
  static ValueRef boolV(bool V);
  static ValueRef stringV(std::string V);
  static ValueRef pair(ValueRef Fst, ValueRef Snd);
  static ValueRef seq(std::vector<ValueRef> Elems);
  static ValueRef set(std::vector<ValueRef> Elems);
  static ValueRef multiset(std::vector<ValueRef> Elems);
  static ValueRef map(std::vector<std::pair<ValueRef, ValueRef>> Entries);

  static ValueRef emptySeq() { return seq({}); }
  static ValueRef emptySet() { return set({}); }
  static ValueRef emptyMultiset() { return multiset({}); }
  static ValueRef emptyMap() { return map({}); }
};

/// Ordering functor for ValueRef, for use in std::map / sort.
struct ValueRefLess {
  bool operator()(const ValueRef &A, const ValueRef &B) const {
    return Value::compare(A, B) < 0;
  }
};

/// Hash functor for ValueRef, for use in unordered containers.
struct ValueRefHash {
  size_t operator()(const ValueRef &V) const { return V->hash(); }
};

/// Equality functor for ValueRef.
struct ValueRefEq {
  bool operator()(const ValueRef &A, const ValueRef &B) const {
    return Value::equal(A, B);
  }
};

} // namespace commcsl

#endif // COMMCSL_VALUE_VALUE_H
