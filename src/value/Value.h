//===-- value/Value.h - Pure mathematical value domain ----------*- C++ -*-===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The pure mathematical value domain over which resource specifications are
/// defined (Sec. 2.4 / 3.2 of the paper). Resource specifications map heap
/// data structures to values of this domain via separation-logic predicates;
/// abstraction functions and action functions are total functions on it.
///
/// Values are immutable and shared via `ValueRef`. Sets are kept as sorted
/// unique vectors, multisets as sorted vectors, and maps as key-sorted entry
/// vectors, so structural equality coincides with mathematical equality and
/// hashing/printing are canonical.
///
/// Construction is hash-consed through the global `ValueInterner` (see
/// value/Intern.h): while interning is enabled (the default), structurally
/// equal values share one canonical `Value` object, so `Value::equal` and
/// `ValueRefHash` are O(1) pointer/word operations. The structural hash is
/// computed once at construction and stored.
///
//===----------------------------------------------------------------------===//

#ifndef COMMCSL_VALUE_VALUE_H
#define COMMCSL_VALUE_VALUE_H

#include <cassert>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace commcsl {

class Value;

/// Shared immutable reference to a Value.
using ValueRef = std::shared_ptr<const Value>;

/// Discriminator for the value domain.
enum class ValueKind : uint8_t {
  Unit,
  Int,
  Bool,
  String,
  Pair,     ///< ordered pair <fst, snd>
  Seq,      ///< finite sequence
  Set,      ///< finite set (canonical: sorted, unique)
  Multiset, ///< finite multiset (canonical: sorted)
  Map,      ///< finite partial map (canonical: key-sorted entries)
};

/// Returns a printable name for \p Kind ("int", "seq", ...).
const char *valueKindName(ValueKind Kind);

/// An immutable mathematical value. Construct through the factory functions
/// below; they maintain the canonical-form invariants for collections.
class Value {
public:
  ValueKind kind() const { return Kind; }

  bool isInt() const { return Kind == ValueKind::Int; }
  bool isBool() const { return Kind == ValueKind::Bool; }

  /// Integer payload; only valid for Int values.
  int64_t getInt() const {
    assert(Kind == ValueKind::Int && "not an int");
    return IntVal;
  }

  /// Boolean payload; only valid for Bool values.
  bool getBool() const {
    assert(Kind == ValueKind::Bool && "not a bool");
    return IntVal != 0;
  }

  /// String payload; only valid for String values.
  const std::string &getString() const {
    assert(Kind == ValueKind::String && "not a string");
    return StrVal;
  }

  /// Elements of a Pair (size 2), Seq, Set or Multiset.
  const std::vector<ValueRef> &elems() const {
    assert((Kind == ValueKind::Pair || Kind == ValueKind::Seq ||
            Kind == ValueKind::Set || Kind == ValueKind::Multiset) &&
           "no element payload");
    return Elems;
  }

  /// Entries of a Map, sorted by key.
  const std::vector<std::pair<ValueRef, ValueRef>> &mapEntries() const {
    assert(Kind == ValueKind::Map && "not a map");
    return MapElems;
  }

  /// Total order over all values: first by kind, then by payload. This is the
  /// order used to canonicalize sets/multisets/maps.
  static int compare(const Value &A, const Value &B);
  static int compare(const ValueRef &A, const ValueRef &B) {
    return compare(*A, *B);
  }

  /// Structural equality. Fast paths: identical pointers are equal; values
  /// with different stored hashes are unequal; two *interned* values with
  /// different pointers are unequal (the interner guarantees that live
  /// structurally-equal interned values share one object).
  static bool equal(const ValueRef &A, const ValueRef &B) {
    const Value *PA = A.get(), *PB = B.get();
    if (PA == PB)
      return true;
    if (PA->HashVal != PB->HashVal)
      return false;
    if (PA->Interned && PB->Interned)
      return false;
    return compare(*PA, *PB) == 0;
  }

  /// Structural hash consistent with `equal`; computed once at construction.
  size_t hash() const { return HashVal; }

  /// Whether this value is the canonical interned representative.
  bool isInterned() const { return Interned; }

  /// Canonical textual rendering, e.g. `ms{1, 1, 2}` or `map{1 -> 2}`.
  std::string str() const;

private:
  friend class ValueFactory;
  friend class ValueInterner;

  explicit Value(ValueKind Kind) : Kind(Kind) {}

  /// Computes and stores the structural hash from the payload (using the
  /// children's already-stored hashes). Called once, after the payload is
  /// final and before the value is published.
  void computeHash();

  ValueKind Kind;
  bool Interned = false; ///< set by the interner on the canonical object
  int64_t IntVal = 0;    ///< Int payload; Bool payload (0/1).
  size_t HashVal = 0;    ///< structural hash, fixed at construction
  std::string StrVal;
  std::vector<ValueRef> Elems;
  std::vector<std::pair<ValueRef, ValueRef>> MapElems;
};

/// Factory namespace-like helper building canonical values. All collection
/// constructors canonicalize their input (sorting sets/multisets, sorting
/// and de-duplicating map entries by key with later entries winning).
class ValueFactory {
public:
  static ValueRef unit();
  static ValueRef intV(int64_t V);
  static ValueRef boolV(bool V);
  static ValueRef stringV(std::string V);
  static ValueRef pair(ValueRef Fst, ValueRef Snd);
  static ValueRef seq(std::vector<ValueRef> Elems);
  static ValueRef set(std::vector<ValueRef> Elems);
  static ValueRef multiset(std::vector<ValueRef> Elems);
  static ValueRef map(std::vector<std::pair<ValueRef, ValueRef>> Entries);

  static ValueRef emptySeq() { return seq({}); }
  static ValueRef emptySet() { return set({}); }
  static ValueRef emptyMultiset() { return multiset({}); }
  static ValueRef emptyMap() { return map({}); }

private:
  /// Fixes the structural hash of \p V and hash-conses it through the
  /// global interner.
  static ValueRef finish(Value *V);
};

/// Ordering functor for ValueRef, for use in std::map / sort.
struct ValueRefLess {
  bool operator()(const ValueRef &A, const ValueRef &B) const {
    return Value::compare(A, B) < 0;
  }
};

/// Hash functor for ValueRef, for use in unordered containers.
struct ValueRefHash {
  size_t operator()(const ValueRef &V) const { return V->hash(); }
};

/// Equality functor for ValueRef.
struct ValueRefEq {
  bool operator()(const ValueRef &A, const ValueRef &B) const {
    return Value::equal(A, B);
  }
};

} // namespace commcsl

#endif // COMMCSL_VALUE_VALUE_H
