//===-- value/Value.h - Pure mathematical value domain ----------*- C++ -*-===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The pure mathematical value domain over which resource specifications are
/// defined (Sec. 2.4 / 3.2 of the paper). Resource specifications map heap
/// data structures to values of this domain via separation-logic predicates;
/// abstraction functions and action functions are total functions on it.
///
/// Values are immutable and shared via `ValueRef`. Sets are kept as sorted
/// unique element runs, multisets as sorted runs, and maps as key-sorted
/// entry runs, so structural equality coincides with mathematical equality
/// and hashing/printing are canonical.
///
/// Representation: a `Value` is a flat tagged union.  Scalar payloads live
/// in dedicated fields; collection children live in a single run of
/// `ValueRef` slots that is stored *inline* (up to `NumInlineSlots`) and
/// spills to one heap array only for wide collections.  Map entries are the
/// alternating run [k0, v0, k1, v1, ...].  This removes a `std::vector`
/// allocation (two for maps) and a cache-missing indirection per value
/// compared to the original vector-of-children layout; the enumeration and
/// interpretation hot paths construct and compare millions of small values,
/// so the children are now on the same cache line as the tag and hash.
/// `elems()` / `mapEntries()` return lightweight views over the slot run
/// that still convert implicitly to the old vector types where needed.
///
/// Construction is hash-consed through the global `ValueInterner` (see
/// value/Intern.h): while interning is enabled (the default), structurally
/// equal values share one canonical `Value` object, so `Value::equal` and
/// `ValueRefHash` are O(1) pointer/word operations. The structural hash is
/// computed once at construction and stored.  Values are staged on the
/// stack and only materialized on the heap (or the active `ArenaScope`'s
/// bump arena — see support/Arena.h) on an interner miss, so a hash-cons
/// hit performs no allocation at all.
///
//===----------------------------------------------------------------------===//

#ifndef COMMCSL_VALUE_VALUE_H
#define COMMCSL_VALUE_VALUE_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <iterator>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace commcsl {

class Value;

/// Shared immutable reference to a Value.
using ValueRef = std::shared_ptr<const Value>;

/// Discriminator for the value domain.
enum class ValueKind : uint8_t {
  Unit,
  Int,
  Bool,
  String,
  Pair,     ///< ordered pair <fst, snd>
  Seq,      ///< finite sequence
  Set,      ///< finite set (canonical: sorted, unique)
  Multiset, ///< finite multiset (canonical: sorted)
  Map,      ///< finite partial map (canonical: key-sorted entries)
};

/// Returns a printable name for \p Kind ("int", "seq", ...).
const char *valueKindName(ValueKind Kind);

/// Contiguous view over the element run of a Pair/Seq/Set/Multiset.
/// Converts implicitly to `std::vector<ValueRef>` so legacy call sites that
/// want an owned copy keep working.
class ValueElems {
public:
  using value_type = ValueRef;
  using const_iterator = const ValueRef *;
  using iterator = const_iterator;

  ValueElems(const ValueRef *Data, size_t N) : Data(Data), N(N) {}

  const ValueRef *begin() const { return Data; }
  const ValueRef *end() const { return Data + N; }
  size_t size() const { return N; }
  bool empty() const { return N == 0; }
  const ValueRef &operator[](size_t I) const { return Data[I]; }
  const ValueRef &front() const { return Data[0]; }
  const ValueRef &back() const { return Data[N - 1]; }

  operator std::vector<ValueRef>() const {
    return std::vector<ValueRef>(Data, Data + N);
  }

private:
  const ValueRef *Data;
  size_t N;
};

/// Random-access view over a Map's alternating [k, v, k, v, ...] slot run,
/// presenting it as a range of key/value pairs.  Iterators dereference to a
/// pair of references (no materialized std::pair storage), which supports
/// the same `It->first` / `Entry.second` idioms as the old entry vector.
class ValueMapEntries {
public:
  class iterator {
  public:
    using iterator_category = std::random_access_iterator_tag;
    using value_type = std::pair<ValueRef, ValueRef>;
    using difference_type = ptrdiff_t;
    using reference = std::pair<const ValueRef &, const ValueRef &>;
    struct pointer {
      reference Ref;
      const reference *operator->() const { return &Ref; }
    };

    iterator() : P(nullptr) {}
    explicit iterator(const ValueRef *P) : P(P) {}

    reference operator*() const { return {P[0], P[1]}; }
    pointer operator->() const { return pointer{{P[0], P[1]}}; }
    reference operator[](difference_type I) const {
      return {P[2 * I], P[2 * I + 1]};
    }

    iterator &operator++() { P += 2; return *this; }
    iterator operator++(int) { iterator T = *this; P += 2; return T; }
    iterator &operator--() { P -= 2; return *this; }
    iterator operator--(int) { iterator T = *this; P -= 2; return T; }
    iterator &operator+=(difference_type I) { P += 2 * I; return *this; }
    iterator &operator-=(difference_type I) { P -= 2 * I; return *this; }
    iterator operator+(difference_type I) const { return iterator(P + 2 * I); }
    iterator operator-(difference_type I) const { return iterator(P - 2 * I); }
    difference_type operator-(const iterator &O) const {
      return (P - O.P) / 2;
    }
    friend iterator operator+(difference_type I, const iterator &It) {
      return It + I;
    }

    bool operator==(const iterator &O) const { return P == O.P; }
    bool operator!=(const iterator &O) const { return P != O.P; }
    bool operator<(const iterator &O) const { return P < O.P; }
    bool operator>(const iterator &O) const { return P > O.P; }
    bool operator<=(const iterator &O) const { return P <= O.P; }
    bool operator>=(const iterator &O) const { return P >= O.P; }

  private:
    const ValueRef *P;
  };
  using const_iterator = iterator;

  /// \p Slots is the alternating k/v run; \p NumSlots its slot (not entry)
  /// count.
  ValueMapEntries(const ValueRef *Slots, size_t NumSlots)
      : Slots(Slots), NumSlots(NumSlots) {}

  iterator begin() const { return iterator(Slots); }
  iterator end() const { return iterator(Slots + NumSlots); }
  size_t size() const { return NumSlots / 2; }
  bool empty() const { return NumSlots == 0; }
  iterator::reference operator[](size_t I) const {
    return {Slots[2 * I], Slots[2 * I + 1]};
  }

  operator std::vector<std::pair<ValueRef, ValueRef>>() const {
    std::vector<std::pair<ValueRef, ValueRef>> Out;
    Out.reserve(size());
    for (size_t I = 0; I < NumSlots; I += 2)
      Out.emplace_back(Slots[I], Slots[I + 1]);
    return Out;
  }

private:
  const ValueRef *Slots;
  size_t NumSlots;
};

/// An immutable mathematical value. Construct through the factory functions
/// below; they maintain the canonical-form invariants for collections.
class Value {
public:
  /// Collections with at most this many slots (map entries count two) are
  /// stored inline with no separate child allocation.  Six slots cover
  /// pairs, the bounded-enumeration scopes in the examples, and 3-entry
  /// maps while keeping sizeof(Value) near one cache line pair.
  static constexpr uint32_t NumInlineSlots = 6;

  ValueKind kind() const { return Kind; }

  bool isInt() const { return Kind == ValueKind::Int; }
  bool isBool() const { return Kind == ValueKind::Bool; }

  /// Integer payload; only valid for Int values.
  int64_t getInt() const {
    assert(Kind == ValueKind::Int && "not an int");
    return IntVal;
  }

  /// Boolean payload; only valid for Bool values.
  bool getBool() const {
    assert(Kind == ValueKind::Bool && "not a bool");
    return IntVal != 0;
  }

  /// String payload; only valid for String values.
  const std::string &getString() const {
    assert(Kind == ValueKind::String && "not a string");
    return StrVal;
  }

  /// Elements of a Pair (size 2), Seq, Set or Multiset.
  ValueElems elems() const {
    assert((Kind == ValueKind::Pair || Kind == ValueKind::Seq ||
            Kind == ValueKind::Set || Kind == ValueKind::Multiset) &&
           "no element payload");
    return ValueElems(slots(), NumSlots);
  }

  /// Entries of a Map, sorted by key.
  ValueMapEntries mapEntries() const {
    assert(Kind == ValueKind::Map && "not a map");
    return ValueMapEntries(slots(), NumSlots);
  }

  /// Total order over all values: first by kind, then by payload. This is the
  /// order used to canonicalize sets/multisets/maps.
  static int compare(const Value &A, const Value &B);
  static int compare(const ValueRef &A, const ValueRef &B) {
    return compare(*A, *B);
  }

  /// Structural equality. Fast paths: identical pointers are equal; values
  /// with different stored hashes are unequal; two *interned* values with
  /// different pointers are unequal (the interner guarantees that live
  /// structurally-equal interned values share one object).
  static bool equal(const ValueRef &A, const ValueRef &B) {
    const Value *PA = A.get(), *PB = B.get();
    if (PA == PB)
      return true;
    if (PA->HashVal != PB->HashVal)
      return false;
    if (PA->Interned && PB->Interned)
      return false;
    return compare(*PA, *PB) == 0;
  }

  /// Structural hash consistent with `equal`; computed once at construction.
  size_t hash() const { return HashVal; }

  /// Whether this value is the canonical interned representative.
  bool isInterned() const { return Interned; }

  /// Canonical textual rendering, e.g. `ms{1, 1, 2}` or `map{1 -> 2}`.
  std::string str() const;

  /// Public so staged stack values can be materialized by the interner via
  /// std::allocate_shared; not meant for general use (copying is deleted,
  /// Values are immutable once published).
  Value(Value &&O) noexcept
      : Kind(O.Kind), Interned(O.Interned), NumSlots(O.NumSlots),
        IntVal(O.IntVal), HashVal(O.HashVal), StrVal(std::move(O.StrVal)),
        HeapSlots(O.HeapSlots) {
    if (!HeapSlots)
      for (uint32_t I = 0; I < NumSlots; ++I)
        InlineSlots[I] = std::move(O.InlineSlots[I]);
    O.HeapSlots = nullptr;
    O.NumSlots = 0;
  }

  Value(const Value &) = delete;
  Value &operator=(const Value &) = delete;
  Value &operator=(Value &&) = delete;

  ~Value() { delete[] HeapSlots; }

private:
  friend class ValueFactory;
  friend class ValueInterner;

  explicit Value(ValueKind Kind) : Kind(Kind) {}

  /// The element/entry slot run, inline or spilled.
  const ValueRef *slots() const { return HeapSlots ? HeapSlots : InlineSlots; }
  ValueRef *slotsMut() { return HeapSlots ? HeapSlots : InlineSlots; }

  /// Sizes the slot run to \p N default-constructed slots.  Called once per
  /// value, before the payload is filled in.
  void initSlots(uint32_t N) {
    assert(NumSlots == 0 && !HeapSlots && "slots already initialized");
    if (N > NumInlineSlots)
      HeapSlots = new ValueRef[N];
    NumSlots = N;
  }

  /// Logically shrinks the slot run after canonicalization dropped
  /// duplicates; the now-unused tail slots are cleared so they pin nothing.
  void shrinkSlots(uint32_t N) {
    assert(N <= NumSlots && "shrink cannot grow");
    ValueRef *S = slotsMut();
    for (uint32_t I = N; I < NumSlots; ++I)
      S[I] = nullptr;
    NumSlots = N;
  }

  /// Computes and stores the structural hash from the payload (using the
  /// children's already-stored hashes). Called once, after the payload is
  /// final and before the value is published.
  void computeHash();

  ValueKind Kind;
  bool Interned = false; ///< set by the interner on the canonical object
  uint32_t NumSlots = 0; ///< slot count (map entries occupy two slots)
  int64_t IntVal = 0;    ///< Int payload; Bool payload (0/1).
  size_t HashVal = 0;    ///< structural hash, fixed at construction
  std::string StrVal;
  ValueRef *HeapSlots = nullptr; ///< spill array iff NumSlots > NumInlineSlots
  ValueRef InlineSlots[NumInlineSlots];
};

/// Factory namespace-like helper building canonical values. All collection
/// constructors canonicalize their input (sorting sets/multisets, sorting
/// and de-duplicating map entries by key with later entries winning).
class ValueFactory {
public:
  static ValueRef unit();
  /// Small integers (loop counters, accumulators, sequence elements) are
  /// served inline from a pre-interned cache: one bounds check plus a
  /// refcount bump, no call. The null check covers early static
  /// initialization in other translation units (the slow path interns and
  /// yields the same canonical value, so order does not matter).
  static ValueRef intV(int64_t V) {
    const ValueRef *C = SmallIntCache;
    if (C && V >= SmallIntMin && V <= SmallIntMax)
      return C[V - SmallIntMin];
    return intVSlow(V);
  }
  static ValueRef boolV(bool V);
  static ValueRef stringV(std::string V);
  static ValueRef pair(ValueRef Fst, ValueRef Snd);
  static ValueRef seq(std::vector<ValueRef> Elems);
  static ValueRef set(std::vector<ValueRef> Elems);
  static ValueRef multiset(std::vector<ValueRef> Elems);
  static ValueRef map(std::vector<std::pair<ValueRef, ValueRef>> Entries);

  /// Span-style constructors for hot paths: build directly from a borrowed
  /// run of refs with no intermediate vector.
  static ValueRef seq(const ValueRef *Data, size_t N);
  static ValueRef set(const ValueRef *Data, size_t N);
  static ValueRef multiset(const ValueRef *Data, size_t N);

  /// View conveniences so e.g. `seq(V->elems())` skips the vector copy.
  static ValueRef seq(ValueElems E) { return seq(E.begin(), E.size()); }
  static ValueRef set(ValueElems E) { return set(E.begin(), E.size()); }
  static ValueRef multiset(ValueElems E) {
    return multiset(E.begin(), E.size());
  }

  static ValueRef emptySeq();
  static ValueRef emptySet();
  static ValueRef emptyMultiset();
  static ValueRef emptyMap();

private:
  /// Fixes the structural hash of the staged value \p V and hash-conses it
  /// through the global interner (which materializes it only on a miss).
  static ValueRef finish(Value &&V);

  /// Out-of-line intV: interns the integer (cache miss or pre-init call).
  static ValueRef intVSlow(int64_t V);

  static constexpr int64_t SmallIntMin = -8192;
  static constexpr int64_t SmallIntMax = 8192;
  /// Points at the pre-interned [SmallIntMin, SmallIntMax] cache once
  /// Value.cpp's dynamic initialization has run; null before that.
  static const ValueRef *SmallIntCache;
};

/// Ordering functor for ValueRef, for use in std::map / sort.
struct ValueRefLess {
  bool operator()(const ValueRef &A, const ValueRef &B) const {
    return Value::compare(A, B) < 0;
  }
};

/// Hash functor for ValueRef, for use in unordered containers.
struct ValueRefHash {
  size_t operator()(const ValueRef &V) const { return V->hash(); }
};

/// Equality functor for ValueRef.
struct ValueRefEq {
  bool operator()(const ValueRef &A, const ValueRef &B) const {
    return Value::equal(A, B);
  }
};

} // namespace commcsl

#endif // COMMCSL_VALUE_VALUE_H
