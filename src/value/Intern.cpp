//===-- value/Intern.cpp - Hash-consed value interning ---------------------===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//

#include "value/Intern.h"

#include <algorithm>

using namespace commcsl;

std::atomic<bool> ValueInterner::Enabled{true};

ValueInterner &ValueInterner::global() {
  // Leaked on purpose: values may be destroyed during static teardown, and
  // destruction never touches the table (entries are weak and swept
  // lazily), but keeping the interner alive avoids any ordering questions
  // for values interned from other static objects.
  static ValueInterner *I = new ValueInterner();
  return *I;
}

ValueRef ValueInterner::intern(Value *Fresh) {
  if (!enabled())
    return ValueRef(Fresh);

  size_t H = Fresh->hash();
  Shard &S = Shards[H & (NumShards - 1)];
  std::lock_guard<std::mutex> Lock(S.Mu);

  auto Range = S.Table.equal_range(H);
  for (auto It = Range.first; It != Range.second;) {
    if (ValueRef Existing = It->second.lock()) {
      if (Value::compare(*Existing, *Fresh) == 0) {
        ++S.Hits;
        delete Fresh;
        return Existing;
      }
      ++It;
    } else {
      // Expired slot in this bucket; reclaim it opportunistically.
      It = S.Table.erase(It);
      ++S.Purged;
    }
  }

  ++S.Misses;
  Fresh->Interned = true;
  ValueRef Ref(Fresh);
  S.Table.emplace(H, Ref);

  if (S.Table.size() >= S.PurgeAt) {
    for (auto It = S.Table.begin(); It != S.Table.end();) {
      if (It->second.expired()) {
        It = S.Table.erase(It);
        ++S.Purged;
      } else {
        ++It;
      }
    }
    S.PurgeAt = std::max<size_t>(1024, 2 * S.Table.size());
  }
  return Ref;
}

ValueInterner::Stats ValueInterner::stats() const {
  Stats Total;
  for (const Shard &S : Shards) {
    std::lock_guard<std::mutex> Lock(S.Mu);
    Total.Hits += S.Hits;
    Total.Misses += S.Misses;
    Total.Purged += S.Purged;
    Total.Live += S.Table.size();
  }
  return Total;
}
