//===-- value/Intern.cpp - Hash-consed value interning ---------------------===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//

#include "value/Intern.h"

#include "support/Arena.h"

#include <algorithm>

using namespace commcsl;

std::atomic<bool> ValueInterner::Enabled{true};

ValueInterner &ValueInterner::global() {
  // Leaked on purpose: values may be destroyed during static teardown, and
  // destruction never touches the table (entries are weak and swept
  // lazily), but keeping the interner alive avoids any ordering questions
  // for values interned from other static objects.
  static ValueInterner *I = new ValueInterner();
  return *I;
}

namespace {

/// Moves a staged value to its final storage: the calling thread's active
/// arena when an ArenaScope is installed, the plain heap otherwise.  With an
/// arena, std::allocate_shared places the control block and the Value in the
/// same bump block, and the allocator copy stored in the control block pins
/// that block for exactly as long as the value lives.
std::shared_ptr<Value> materialize(Value &&Staged) {
  if (Arena *A = ArenaScope::current()) {
    // Slack covers the shared_ptr control block and alignment.
    ArenaAllocator<Value> Alloc(A->currentBlock(sizeof(Value) + 64));
    return std::allocate_shared<Value>(Alloc, std::move(Staged));
  }
  return std::make_shared<Value>(std::move(Staged));
}

} // namespace

ValueRef ValueInterner::intern(Value &&Staged) {
  if (!enabled())
    return materialize(std::move(Staged));

  size_t H = Staged.hash();
  Shard &S = Shards[H & (NumShards - 1)];
  std::lock_guard<std::mutex> Lock(S.Mu);

  auto Range = S.Table.equal_range(H);
  for (auto It = Range.first; It != Range.second;) {
    if (ValueRef Existing = It->second.lock()) {
      if (Value::compare(*Existing, Staged) == 0) {
        ++S.Hits;
        return Existing;
      }
      ++It;
    } else {
      // Expired slot in this bucket; reclaim it opportunistically.
      It = S.Table.erase(It);
      ++S.Purged;
    }
  }

  ++S.Misses;
  std::shared_ptr<Value> Fresh = materialize(std::move(Staged));
  Fresh->Interned = true;
  ValueRef Ref = std::move(Fresh);
  S.Table.emplace(H, Ref);

  if (S.Table.size() >= S.PurgeAt) {
    for (auto It = S.Table.begin(); It != S.Table.end();) {
      if (It->second.expired()) {
        It = S.Table.erase(It);
        ++S.Purged;
      } else {
        ++It;
      }
    }
    S.PurgeAt = std::max<size_t>(1024, 2 * S.Table.size());
  }
  return Ref;
}

ValueInterner::Stats ValueInterner::stats() const {
  Stats Total;
  for (const Shard &S : Shards) {
    std::lock_guard<std::mutex> Lock(S.Mu);
    Total.Hits += S.Hits;
    Total.Misses += S.Misses;
    Total.Purged += S.Purged;
    Total.Live += S.Table.size();
  }
  return Total;
}
