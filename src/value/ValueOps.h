//===-- value/ValueOps.h - Operations on pure values ------------*- C++ -*-===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The operation library over the pure value domain. These operations back
/// the expression language's builtins, the interpreter, the resource-spec
/// action functions, and the validity checker.
///
/// Every operation is *total* on well-typed inputs: partial operations
/// (indexing, head, map lookup, division) either take an explicit default or
/// return a conventional default (0 for integer division by zero). Totality
/// matters: the paper requires action functions to be total on the resource
/// value (App. D), and expression evaluation in the semantics is total.
///
/// Operations that are type-incorrect (e.g. `add` on a Seq) assert; the
/// surface language is type-checked before evaluation.
///
//===----------------------------------------------------------------------===//

#ifndef COMMCSL_VALUE_VALUEOPS_H
#define COMMCSL_VALUE_VALUEOPS_H

#include "value/Value.h"

#include <optional>

namespace commcsl {
namespace vops {

//===----------------------------------------------------------------------===//
// Integer arithmetic (total; division/modulo by zero yield 0).
//===----------------------------------------------------------------------===//

ValueRef add(const ValueRef &A, const ValueRef &B);
ValueRef sub(const ValueRef &A, const ValueRef &B);
ValueRef mul(const ValueRef &A, const ValueRef &B);
ValueRef divT(const ValueRef &A, const ValueRef &B);
ValueRef modT(const ValueRef &A, const ValueRef &B);
ValueRef neg(const ValueRef &A);
ValueRef minV(const ValueRef &A, const ValueRef &B);
ValueRef maxV(const ValueRef &A, const ValueRef &B);
ValueRef absV(const ValueRef &A);

//===----------------------------------------------------------------------===//
// Comparisons and logical operations.
//===----------------------------------------------------------------------===//

ValueRef eq(const ValueRef &A, const ValueRef &B);
ValueRef ne(const ValueRef &A, const ValueRef &B);
ValueRef lt(const ValueRef &A, const ValueRef &B);
ValueRef le(const ValueRef &A, const ValueRef &B);
ValueRef gt(const ValueRef &A, const ValueRef &B);
ValueRef ge(const ValueRef &A, const ValueRef &B);
ValueRef logAnd(const ValueRef &A, const ValueRef &B);
ValueRef logOr(const ValueRef &A, const ValueRef &B);
ValueRef logNot(const ValueRef &A);

//===----------------------------------------------------------------------===//
// Pairs.
//===----------------------------------------------------------------------===//

ValueRef fst(const ValueRef &P);
ValueRef snd(const ValueRef &P);

//===----------------------------------------------------------------------===//
// Sequences.
//===----------------------------------------------------------------------===//

ValueRef seqLen(const ValueRef &S);
ValueRef seqAppend(const ValueRef &S, const ValueRef &V);
ValueRef seqConcat(const ValueRef &A, const ValueRef &B);
/// Element at \p I, or std::nullopt when out of range.
std::optional<ValueRef> seqAt(const ValueRef &S, int64_t I);
/// Element at \p I, or \p Default when out of range (total version).
ValueRef seqAtOr(const ValueRef &S, const ValueRef &I, const ValueRef &Default);
std::optional<ValueRef> seqHead(const ValueRef &S);
std::optional<ValueRef> seqLast(const ValueRef &S);
/// All but the first element; empty sequence stays empty.
ValueRef seqTail(const ValueRef &S);
/// All but the last element; empty sequence stays empty.
ValueRef seqInit(const ValueRef &S);
ValueRef seqContains(const ValueRef &S, const ValueRef &V);
/// First min(max(N,0), len) elements.
ValueRef seqTake(const ValueRef &S, const ValueRef &N);
/// All but the first min(max(N,0), len) elements.
ValueRef seqDrop(const ValueRef &S, const ValueRef &N);
/// Ascending sort by the canonical value order. `sort(s)` equals the sorted
/// sequence of `seqToMultiset(s)`, the identity the paper's Email-Metadata
/// example relies on.
ValueRef seqSort(const ValueRef &S);
ValueRef seqToMultiset(const ValueRef &S);
ValueRef seqToSet(const ValueRef &S);
/// Sum of an integer sequence (0 if empty).  The sum saturates at the
/// int64_t bounds instead of overflowing: partial sums are clamped to
/// [INT64_MIN, INT64_MAX] in the direction of the overflow.  (Saturation is
/// unobservable unless a sequence's true sum leaves the int64 range, which
/// bounded-enumeration scopes never produce; it exists to give the former
/// signed-overflow UB a defined total semantics.)
ValueRef seqSum(const ValueRef &S);
/// Integer mean of an integer sequence (0 if empty): the saturating seqSum
/// divided by the length with *floor* division (round toward -inf), so
/// negative means agree with the mathematical mean: mean([-3, -4]) = -4.
/// Both the interpreter and the spec evaluator funnel through this
/// function (and the solver's constant folder calls it via applyBuiltinOp),
/// so all evaluation paths agree by construction.
ValueRef seqMean(const ValueRef &S);

//===----------------------------------------------------------------------===//
// Sets.
//===----------------------------------------------------------------------===//

ValueRef setAdd(const ValueRef &S, const ValueRef &V);
ValueRef setUnion(const ValueRef &A, const ValueRef &B);
ValueRef setInter(const ValueRef &A, const ValueRef &B);
ValueRef setDiff(const ValueRef &A, const ValueRef &B);
ValueRef setMember(const ValueRef &S, const ValueRef &V);
ValueRef setSize(const ValueRef &S);
/// Ascending enumeration of the set as a sequence.
ValueRef setToSeq(const ValueRef &S);

//===----------------------------------------------------------------------===//
// Multisets.
//===----------------------------------------------------------------------===//

ValueRef msAdd(const ValueRef &M, const ValueRef &V);
ValueRef msUnion(const ValueRef &A, const ValueRef &B);
/// Multiset difference A \# B.
ValueRef msDiff(const ValueRef &A, const ValueRef &B);
ValueRef msCard(const ValueRef &M);
/// Multiplicity of \p V in \p M.
ValueRef msCount(const ValueRef &M, const ValueRef &V);
/// Ascending enumeration of the multiset as a sequence.
ValueRef msToSeq(const ValueRef &M);

//===----------------------------------------------------------------------===//
// Maps.
//===----------------------------------------------------------------------===//

ValueRef mapPut(const ValueRef &M, const ValueRef &K, const ValueRef &V);
std::optional<ValueRef> mapGet(const ValueRef &M, const ValueRef &K);
ValueRef mapGetOr(const ValueRef &M, const ValueRef &K,
                  const ValueRef &Default);
ValueRef mapHas(const ValueRef &M, const ValueRef &K);
ValueRef mapRemove(const ValueRef &M, const ValueRef &K);
/// Domain of the map as a set.
ValueRef mapDom(const ValueRef &M);
/// Multiset of the map's values.
ValueRef mapValuesMs(const ValueRef &M);
ValueRef mapSize(const ValueRef &M);

} // namespace vops
} // namespace commcsl

#endif // COMMCSL_VALUE_VALUEOPS_H
