//===-- value/Intern.h - Hash-consed value interning ------------*- C++ -*-===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A thread-safe, sharded hash-cons table for the value domain. Every value
/// built through `ValueFactory` is routed here; while interning is enabled
/// (the default), structurally equal values share one canonical `Value`
/// object. That upgrades `Value::equal`, `ValueRefHash`-based bucketing
/// (e.g. the validity checker's same-alpha grouping), and the evaluation
/// memo caches' key comparisons to O(1) pointer/word operations.
///
/// The table holds weak references only, so it never extends a value's
/// lifetime: memory stays bounded by the set of live values, and expired
/// slots are swept lazily whenever a shard grows past an adaptive
/// threshold. The canonicity invariant is therefore: any two *live*
/// interned values that are structurally equal are the same object. (Dead
/// values cannot be observed, so the invariant is exactly what
/// `Value::equal`'s pointer fast path needs.)
///
/// Interning can be disabled (`setEnabled(false)`) for ablation; values
/// built while disabled are ordinary uninterned objects and equality falls
/// back to hash-filtered structural comparison. Toggling is safe at any
/// quiescent point: the interned flag is only ever set by the table, so the
/// invariant above survives arbitrary enable/disable sequences. (The
/// scalar singletons `ValueFactory` caches — unit, the booleans, small
/// integers — are built once at first use and served from their caches
/// regardless of the toggle, exactly like the pre-existing `unit()` cache.)
///
//===----------------------------------------------------------------------===//

#ifndef COMMCSL_VALUE_INTERN_H
#define COMMCSL_VALUE_INTERN_H

#include "value/Value.h"

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <unordered_map>

namespace commcsl {

/// Process-wide hash-cons table, sharded to stay contention-free under
/// concurrent construction from pool workers.
class ValueInterner {
public:
  /// Aggregate counters across all shards. Hits count constructions that
  /// found an existing canonical object; Misses count adoptions of a new
  /// one; Purged counts swept expired slots; Live is the current number of
  /// (possibly expired) table slots.
  struct Stats {
    uint64_t Hits = 0;
    uint64_t Misses = 0;
    uint64_t Purged = 0;
    uint64_t Live = 0;
  };

  /// The process-wide interner used by `ValueFactory`.
  static ValueInterner &global();

  /// Whether hash-consing is active. When off, `intern` just wraps the
  /// fresh value without canonicalizing it.
  static bool enabled() { return Enabled.load(std::memory_order_relaxed); }

  /// Enables/disables hash-consing. Call only at quiescent points (no
  /// concurrent value construction); intended for benchmarks and tests.
  static void setEnabled(bool On) {
    Enabled.store(On, std::memory_order_relaxed);
  }

  /// Canonicalizes a staged (stack-built) value: returns the existing
  /// canonical representative, performing no allocation at all on a hit, or
  /// materializes \p Staged on the heap — or the calling thread's active
  /// `ArenaScope` arena — and adopts it as canonical. \p Staged must have
  /// its hash fixed.
  ValueRef intern(Value &&Staged);

  Stats stats() const;

private:
  static constexpr size_t ShardBits = 6;
  static constexpr size_t NumShards = size_t(1) << ShardBits;

  struct Shard {
    mutable std::mutex Mu;
    /// Structural hash -> weak ref to the canonical value. A multimap
    /// because distinct values may collide on the hash.
    std::unordered_multimap<size_t, std::weak_ptr<const Value>> Table;
    /// Sweep expired slots when the table grows past this; re-armed to
    /// twice the surviving size.
    size_t PurgeAt = 1024;
    uint64_t Hits = 0;
    uint64_t Misses = 0;
    uint64_t Purged = 0;
  };

  std::array<Shard, NumShards> Shards;
  static std::atomic<bool> Enabled;
};

} // namespace commcsl

#endif // COMMCSL_VALUE_INTERN_H
