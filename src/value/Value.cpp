//===-- value/Value.cpp - Pure mathematical value domain ------------------===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//

#include "value/Value.h"

#include "support/StringUtils.h"
#include "value/Intern.h"

#include <algorithm>
#include <functional>
#include <sstream>

using namespace commcsl;

const char *commcsl::valueKindName(ValueKind Kind) {
  switch (Kind) {
  case ValueKind::Unit:
    return "unit";
  case ValueKind::Int:
    return "int";
  case ValueKind::Bool:
    return "bool";
  case ValueKind::String:
    return "string";
  case ValueKind::Pair:
    return "pair";
  case ValueKind::Seq:
    return "seq";
  case ValueKind::Set:
    return "set";
  case ValueKind::Multiset:
    return "mset";
  case ValueKind::Map:
    return "map";
  }
  return "invalid";
}

int Value::compare(const Value &A, const Value &B) {
  if (&A == &B)
    return 0; // shared canonical objects compare equal in O(1)
  if (A.Kind != B.Kind)
    return A.Kind < B.Kind ? -1 : 1;
  switch (A.Kind) {
  case ValueKind::Unit:
    return 0;
  case ValueKind::Int:
  case ValueKind::Bool:
    if (A.IntVal != B.IntVal)
      return A.IntVal < B.IntVal ? -1 : 1;
    return 0;
  case ValueKind::String:
    return A.StrVal.compare(B.StrVal) < 0   ? -1
           : A.StrVal.compare(B.StrVal) > 0 ? 1
                                            : 0;
  case ValueKind::Pair:
  case ValueKind::Seq:
  case ValueKind::Set:
  case ValueKind::Multiset: {
    size_t N = std::min(A.Elems.size(), B.Elems.size());
    for (size_t I = 0; I < N; ++I) {
      int C = compare(*A.Elems[I], *B.Elems[I]);
      if (C != 0)
        return C;
    }
    if (A.Elems.size() != B.Elems.size())
      return A.Elems.size() < B.Elems.size() ? -1 : 1;
    return 0;
  }
  case ValueKind::Map: {
    size_t N = std::min(A.MapElems.size(), B.MapElems.size());
    for (size_t I = 0; I < N; ++I) {
      int C = compare(*A.MapElems[I].first, *B.MapElems[I].first);
      if (C != 0)
        return C;
      C = compare(*A.MapElems[I].second, *B.MapElems[I].second);
      if (C != 0)
        return C;
    }
    if (A.MapElems.size() != B.MapElems.size())
      return A.MapElems.size() < B.MapElems.size() ? -1 : 1;
    return 0;
  }
  }
  return 0;
}

void Value::computeHash() {
  size_t Seed = static_cast<size_t>(Kind) * 0x9e3779b9u;
  switch (Kind) {
  case ValueKind::Unit:
    break;
  case ValueKind::Int:
  case ValueKind::Bool:
    hashCombine(Seed, std::hash<int64_t>()(IntVal));
    break;
  case ValueKind::String:
    hashCombine(Seed, std::hash<std::string>()(StrVal));
    break;
  case ValueKind::Pair:
  case ValueKind::Seq:
  case ValueKind::Set:
  case ValueKind::Multiset:
    for (const ValueRef &E : Elems)
      hashCombine(Seed, E->HashVal);
    break;
  case ValueKind::Map:
    for (const auto &[K, V] : MapElems) {
      hashCombine(Seed, K->HashVal);
      hashCombine(Seed, V->HashVal);
    }
    break;
  }
  HashVal = Seed;
}

std::string Value::str() const {
  std::ostringstream OS;
  switch (Kind) {
  case ValueKind::Unit:
    OS << "unit";
    break;
  case ValueKind::Int:
    OS << IntVal;
    break;
  case ValueKind::Bool:
    OS << (IntVal ? "true" : "false");
    break;
  case ValueKind::String:
    OS << '"' << StrVal << '"';
    break;
  case ValueKind::Pair:
    OS << "(" << Elems[0]->str() << ", " << Elems[1]->str() << ")";
    break;
  case ValueKind::Seq: {
    OS << "[";
    for (size_t I = 0; I < Elems.size(); ++I)
      OS << (I ? ", " : "") << Elems[I]->str();
    OS << "]";
    break;
  }
  case ValueKind::Set: {
    OS << "{";
    for (size_t I = 0; I < Elems.size(); ++I)
      OS << (I ? ", " : "") << Elems[I]->str();
    OS << "}";
    break;
  }
  case ValueKind::Multiset: {
    OS << "ms{";
    for (size_t I = 0; I < Elems.size(); ++I)
      OS << (I ? ", " : "") << Elems[I]->str();
    OS << "}";
    break;
  }
  case ValueKind::Map: {
    OS << "map{";
    for (size_t I = 0; I < MapElems.size(); ++I)
      OS << (I ? ", " : "") << MapElems[I].first->str() << " -> "
         << MapElems[I].second->str();
    OS << "}";
    break;
  }
  }
  return OS.str();
}

//===----------------------------------------------------------------------===//
// ValueFactory
//===----------------------------------------------------------------------===//

// Seals a freshly-built value: fixes its structural hash and hands it to
// the interner, which either adopts it as the canonical object or returns
// the existing canonical representative.
ValueRef ValueFactory::finish(Value *V) {
  V->computeHash();
  return ValueInterner::global().intern(V);
}

ValueRef ValueFactory::unit() {
  static ValueRef Cached = [] {
    auto *V = new Value(ValueKind::Unit);
    return finish(V);
  }();
  return Cached;
}

ValueRef ValueFactory::intV(int64_t I) {
  auto *V = new Value(ValueKind::Int);
  V->IntVal = I;
  return finish(V);
}

ValueRef ValueFactory::boolV(bool B) {
  auto *V = new Value(ValueKind::Bool);
  V->IntVal = B ? 1 : 0;
  return finish(V);
}

ValueRef ValueFactory::stringV(std::string S) {
  auto *V = new Value(ValueKind::String);
  V->StrVal = std::move(S);
  return finish(V);
}

ValueRef ValueFactory::pair(ValueRef Fst, ValueRef Snd) {
  assert(Fst && Snd && "null pair component");
  auto *V = new Value(ValueKind::Pair);
  V->Elems = {std::move(Fst), std::move(Snd)};
  return finish(V);
}

ValueRef ValueFactory::seq(std::vector<ValueRef> Elems) {
  auto *V = new Value(ValueKind::Seq);
  V->Elems = std::move(Elems);
  return finish(V);
}

ValueRef ValueFactory::set(std::vector<ValueRef> Elems) {
  std::sort(Elems.begin(), Elems.end(), ValueRefLess());
  Elems.erase(std::unique(Elems.begin(), Elems.end(),
                          [](const ValueRef &A, const ValueRef &B) {
                            return Value::equal(A, B);
                          }),
              Elems.end());
  auto *V = new Value(ValueKind::Set);
  V->Elems = std::move(Elems);
  return finish(V);
}

ValueRef ValueFactory::multiset(std::vector<ValueRef> Elems) {
  std::sort(Elems.begin(), Elems.end(), ValueRefLess());
  auto *V = new Value(ValueKind::Multiset);
  V->Elems = std::move(Elems);
  return finish(V);
}

ValueRef
ValueFactory::map(std::vector<std::pair<ValueRef, ValueRef>> Entries) {
  // Later entries win, matching repeated map_put semantics: stable-sort by
  // key and keep the last entry of each equal-key run.
  std::stable_sort(Entries.begin(), Entries.end(),
                   [](const auto &A, const auto &B) {
                     return Value::compare(A.first, B.first) < 0;
                   });
  std::vector<std::pair<ValueRef, ValueRef>> Canon;
  for (size_t I = 0; I < Entries.size(); ++I) {
    if (!Canon.empty() && Value::equal(Canon.back().first, Entries[I].first))
      Canon.back().second = Entries[I].second;
    else
      Canon.push_back(Entries[I]);
  }
  auto *V = new Value(ValueKind::Map);
  V->MapElems = std::move(Canon);
  return finish(V);
}
