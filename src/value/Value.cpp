//===-- value/Value.cpp - Pure mathematical value domain ------------------===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//

#include "value/Value.h"

#include "support/Arena.h"
#include "support/StringUtils.h"
#include "value/Intern.h"

#include <algorithm>
#include <array>
#include <functional>
#include <sstream>

using namespace commcsl;

const char *commcsl::valueKindName(ValueKind Kind) {
  switch (Kind) {
  case ValueKind::Unit:
    return "unit";
  case ValueKind::Int:
    return "int";
  case ValueKind::Bool:
    return "bool";
  case ValueKind::String:
    return "string";
  case ValueKind::Pair:
    return "pair";
  case ValueKind::Seq:
    return "seq";
  case ValueKind::Set:
    return "set";
  case ValueKind::Multiset:
    return "mset";
  case ValueKind::Map:
    return "map";
  }
  return "invalid";
}

int Value::compare(const Value &A, const Value &B) {
  if (&A == &B)
    return 0; // shared canonical objects compare equal in O(1)
  if (A.Kind != B.Kind)
    return A.Kind < B.Kind ? -1 : 1;
  switch (A.Kind) {
  case ValueKind::Unit:
    return 0;
  case ValueKind::Int:
  case ValueKind::Bool:
    if (A.IntVal != B.IntVal)
      return A.IntVal < B.IntVal ? -1 : 1;
    return 0;
  case ValueKind::String:
    return A.StrVal.compare(B.StrVal) < 0   ? -1
           : A.StrVal.compare(B.StrVal) > 0 ? 1
                                            : 0;
  case ValueKind::Pair:
  case ValueKind::Seq:
  case ValueKind::Set:
  case ValueKind::Multiset:
  case ValueKind::Map: {
    // One loop serves both element runs and alternating map-entry runs: for
    // maps it visits k0, v0, k1, v1, ..., which is exactly the entrywise
    // key-then-value order, and the slot-count tiebreak has the same sign as
    // the entry-count tiebreak (slots = 2 * entries).
    const ValueRef *SA = A.slots(), *SB = B.slots();
    size_t N = std::min(A.NumSlots, B.NumSlots);
    for (size_t I = 0; I < N; ++I) {
      int C = compare(*SA[I], *SB[I]);
      if (C != 0)
        return C;
    }
    if (A.NumSlots != B.NumSlots)
      return A.NumSlots < B.NumSlots ? -1 : 1;
    return 0;
  }
  }
  return 0;
}

void Value::computeHash() {
  size_t Seed = static_cast<size_t>(Kind) * 0x9e3779b9u;
  switch (Kind) {
  case ValueKind::Unit:
    break;
  case ValueKind::Int:
  case ValueKind::Bool:
    hashCombine(Seed, std::hash<int64_t>()(IntVal));
    break;
  case ValueKind::String:
    hashCombine(Seed, std::hash<std::string>()(StrVal));
    break;
  case ValueKind::Pair:
  case ValueKind::Seq:
  case ValueKind::Set:
  case ValueKind::Multiset:
  case ValueKind::Map: {
    // Maps hash k0, v0, k1, v1, ... — the same sequence the original
    // entrywise loop produced.
    const ValueRef *S = slots();
    for (uint32_t I = 0; I < NumSlots; ++I)
      hashCombine(Seed, S[I]->HashVal);
    break;
  }
  }
  HashVal = Seed;
}

std::string Value::str() const {
  std::ostringstream OS;
  const ValueRef *S = slots();
  switch (Kind) {
  case ValueKind::Unit:
    OS << "unit";
    break;
  case ValueKind::Int:
    OS << IntVal;
    break;
  case ValueKind::Bool:
    OS << (IntVal ? "true" : "false");
    break;
  case ValueKind::String:
    OS << '"' << StrVal << '"';
    break;
  case ValueKind::Pair:
    OS << "(" << S[0]->str() << ", " << S[1]->str() << ")";
    break;
  case ValueKind::Seq: {
    OS << "[";
    for (uint32_t I = 0; I < NumSlots; ++I)
      OS << (I ? ", " : "") << S[I]->str();
    OS << "]";
    break;
  }
  case ValueKind::Set: {
    OS << "{";
    for (uint32_t I = 0; I < NumSlots; ++I)
      OS << (I ? ", " : "") << S[I]->str();
    OS << "}";
    break;
  }
  case ValueKind::Multiset: {
    OS << "ms{";
    for (uint32_t I = 0; I < NumSlots; ++I)
      OS << (I ? ", " : "") << S[I]->str();
    OS << "}";
    break;
  }
  case ValueKind::Map: {
    OS << "map{";
    for (uint32_t I = 0; I < NumSlots; I += 2)
      OS << (I ? ", " : "") << S[I]->str() << " -> " << S[I + 1]->str();
    OS << "}";
    break;
  }
  }
  return OS.str();
}

//===----------------------------------------------------------------------===//
// ValueFactory
//===----------------------------------------------------------------------===//

// Seals a freshly-staged value: fixes its structural hash and hands it to
// the interner, which either returns the existing canonical representative
// (no allocation) or materializes the staged value as the canonical object.
ValueRef ValueFactory::finish(Value &&V) {
  V.computeHash();
  return ValueInterner::global().intern(std::move(V));
}

ValueRef ValueFactory::unit() {
  static ValueRef Cached = [] {
    ArenaSuspend Suspend; // process-lifetime singleton: never arena-placed
    return finish(Value(ValueKind::Unit));
  }();
  return Cached;
}

namespace {
// Scalar singleton caches.  The enumeration and interpretation hot loops
// construct the same small integers and booleans millions of times; serving
// them from a one-time table skips both the interner shard lock and the
// staged construction entirely.  Like `unit()`, the cached objects are
// process-lifetime singletons and are returned regardless of the interner
// enable toggle.
// The range is sized so that typical loop counters, sequence indices, and
// running accumulators (e.g. a counter resource summing a few thousand
// small additions) stay inside it; the table costs well under a megabyte.
} // namespace

// Dynamic initialization fills the table and publishes it to the inline
// intV fast path; until then the null check in intV routes every call
// through intVSlow, which produces the same canonical (interned) values.
const ValueRef *ValueFactory::SmallIntCache = [] {
  ArenaSuspend Suspend;
  static std::array<ValueRef, size_t(SmallIntMax - SmallIntMin + 1)> Table;
  for (int64_t K = SmallIntMin; K <= SmallIntMax; ++K) {
    Value V(ValueKind::Int);
    V.IntVal = K;
    Table[size_t(K - SmallIntMin)] = finish(std::move(V));
  }
  return Table.data();
}();

ValueRef ValueFactory::intVSlow(int64_t I) {
  Value V(ValueKind::Int);
  V.IntVal = I;
  return finish(std::move(V));
}

ValueRef ValueFactory::boolV(bool B) {
  static ValueRef CachedFalse = [] {
    ArenaSuspend Suspend;
    Value V(ValueKind::Bool);
    V.IntVal = 0;
    return finish(std::move(V));
  }();
  static ValueRef CachedTrue = [] {
    ArenaSuspend Suspend;
    Value V(ValueKind::Bool);
    V.IntVal = 1;
    return finish(std::move(V));
  }();
  return B ? CachedTrue : CachedFalse;
}

ValueRef ValueFactory::stringV(std::string S) {
  Value V(ValueKind::String);
  V.StrVal = std::move(S);
  return finish(std::move(V));
}

ValueRef ValueFactory::pair(ValueRef Fst, ValueRef Snd) {
  assert(Fst && Snd && "null pair component");
  Value V(ValueKind::Pair);
  V.initSlots(2);
  ValueRef *S = V.slotsMut();
  S[0] = std::move(Fst);
  S[1] = std::move(Snd);
  return finish(std::move(V));
}

ValueRef ValueFactory::seq(const ValueRef *Data, size_t N) {
  Value V(ValueKind::Seq);
  V.initSlots(uint32_t(N));
  std::copy(Data, Data + N, V.slotsMut());
  return finish(std::move(V));
}

ValueRef ValueFactory::seq(std::vector<ValueRef> Elems) {
  Value V(ValueKind::Seq);
  V.initSlots(uint32_t(Elems.size()));
  std::move(Elems.begin(), Elems.end(), V.slotsMut());
  return finish(std::move(V));
}

ValueRef ValueFactory::set(const ValueRef *Data, size_t N) {
  Value V(ValueKind::Set);
  V.initSlots(uint32_t(N));
  ValueRef *S = V.slotsMut();
  std::copy(Data, Data + N, S);
  std::sort(S, S + N, ValueRefLess());
  ValueRef *End =
      std::unique(S, S + N, [](const ValueRef &A, const ValueRef &B) {
        return Value::equal(A, B);
      });
  V.shrinkSlots(uint32_t(End - S));
  return finish(std::move(V));
}

ValueRef ValueFactory::set(std::vector<ValueRef> Elems) {
  Value V(ValueKind::Set);
  V.initSlots(uint32_t(Elems.size()));
  ValueRef *S = V.slotsMut();
  std::move(Elems.begin(), Elems.end(), S);
  std::sort(S, S + Elems.size(), ValueRefLess());
  ValueRef *End = std::unique(S, S + Elems.size(),
                              [](const ValueRef &A, const ValueRef &B) {
                                return Value::equal(A, B);
                              });
  V.shrinkSlots(uint32_t(End - S));
  return finish(std::move(V));
}

ValueRef ValueFactory::multiset(const ValueRef *Data, size_t N) {
  Value V(ValueKind::Multiset);
  V.initSlots(uint32_t(N));
  ValueRef *S = V.slotsMut();
  std::copy(Data, Data + N, S);
  std::sort(S, S + N, ValueRefLess());
  return finish(std::move(V));
}

ValueRef ValueFactory::multiset(std::vector<ValueRef> Elems) {
  Value V(ValueKind::Multiset);
  V.initSlots(uint32_t(Elems.size()));
  ValueRef *S = V.slotsMut();
  std::move(Elems.begin(), Elems.end(), S);
  std::sort(S, S + Elems.size(), ValueRefLess());
  return finish(std::move(V));
}

ValueRef
ValueFactory::map(std::vector<std::pair<ValueRef, ValueRef>> Entries) {
  // Later entries win, matching repeated map_put semantics: stable-sort by
  // key and keep the last entry of each equal-key run.
  std::stable_sort(Entries.begin(), Entries.end(),
                   [](const auto &A, const auto &B) {
                     return Value::compare(A.first, B.first) < 0;
                   });
  size_t Canon = 0; // number of surviving entries, compacted in place
  for (size_t I = 0; I < Entries.size(); ++I) {
    if (Canon != 0 &&
        Value::equal(Entries[Canon - 1].first, Entries[I].first))
      Entries[Canon - 1].second = std::move(Entries[I].second);
    else
      Entries[Canon++] = std::move(Entries[I]);
  }
  Value V(ValueKind::Map);
  V.initSlots(uint32_t(2 * Canon));
  ValueRef *S = V.slotsMut();
  for (size_t I = 0; I < Canon; ++I) {
    S[2 * I] = std::move(Entries[I].first);
    S[2 * I + 1] = std::move(Entries[I].second);
  }
  return finish(std::move(V));
}

ValueRef ValueFactory::emptySeq() {
  static ValueRef Cached = [] {
    ArenaSuspend Suspend;
    return seq(nullptr, size_t(0));
  }();
  return Cached;
}

ValueRef ValueFactory::emptySet() {
  static ValueRef Cached = [] {
    ArenaSuspend Suspend;
    return set(nullptr, size_t(0));
  }();
  return Cached;
}

ValueRef ValueFactory::emptyMultiset() {
  static ValueRef Cached = [] {
    ArenaSuspend Suspend;
    return multiset(nullptr, size_t(0));
  }();
  return Cached;
}

ValueRef ValueFactory::emptyMap() {
  static ValueRef Cached = [] {
    ArenaSuspend Suspend;
    return map({});
  }();
  return Cached;
}
