//===-- lang/Type.cpp - Surface-language types ----------------------------===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//

#include "lang/Type.h"

using namespace commcsl;

TypeRef Type::unit() {
  static TypeRef T(new Type(TypeKind::Unit));
  return T;
}

TypeRef Type::intTy() {
  static TypeRef T(new Type(TypeKind::Int));
  return T;
}

TypeRef Type::boolTy() {
  static TypeRef T(new Type(TypeKind::Bool));
  return T;
}

TypeRef Type::stringTy() {
  static TypeRef T(new Type(TypeKind::String));
  return T;
}

TypeRef Type::pair(TypeRef Fst, TypeRef Snd) {
  auto *T = new Type(TypeKind::Pair);
  T->Args = {std::move(Fst), std::move(Snd)};
  return TypeRef(T);
}

TypeRef Type::seq(TypeRef Elem) {
  auto *T = new Type(TypeKind::Seq);
  T->Args = {std::move(Elem)};
  return TypeRef(T);
}

TypeRef Type::set(TypeRef Elem) {
  auto *T = new Type(TypeKind::Set);
  T->Args = {std::move(Elem)};
  return TypeRef(T);
}

TypeRef Type::multiset(TypeRef Elem) {
  auto *T = new Type(TypeKind::Multiset);
  T->Args = {std::move(Elem)};
  return TypeRef(T);
}

TypeRef Type::map(TypeRef Key, TypeRef Val) {
  auto *T = new Type(TypeKind::Map);
  T->Args = {std::move(Key), std::move(Val)};
  return TypeRef(T);
}

TypeRef Type::resource(std::string SpecName) {
  auto *T = new Type(TypeKind::Resource);
  T->ResSpec = std::move(SpecName);
  return TypeRef(T);
}

bool Type::equal(const TypeRef &A, const TypeRef &B) {
  if (A.get() == B.get())
    return true;
  if (!A || !B || A->Kind != B->Kind)
    return false;
  if (A->ResSpec != B->ResSpec)
    return false;
  if (A->Args.size() != B->Args.size())
    return false;
  for (size_t I = 0; I < A->Args.size(); ++I)
    if (!equal(A->Args[I], B->Args[I]))
      return false;
  return true;
}

std::string Type::str() const {
  switch (Kind) {
  case TypeKind::Unit:
    return "unit";
  case TypeKind::Int:
    return "int";
  case TypeKind::Bool:
    return "bool";
  case TypeKind::String:
    return "string";
  case TypeKind::Pair:
    return "pair<" + Args[0]->str() + ", " + Args[1]->str() + ">";
  case TypeKind::Seq:
    return "seq<" + Args[0]->str() + ">";
  case TypeKind::Set:
    return "set<" + Args[0]->str() + ">";
  case TypeKind::Multiset:
    return "mset<" + Args[0]->str() + ">";
  case TypeKind::Map:
    return "map<" + Args[0]->str() + ", " + Args[1]->str() + ">";
  case TypeKind::Resource:
    return "resource<" + ResSpec + ">";
  }
  return "<invalid>";
}

ValueRef Type::defaultValue() const {
  switch (Kind) {
  case TypeKind::Unit:
    return ValueFactory::unit();
  case TypeKind::Int:
    return ValueFactory::intV(0);
  case TypeKind::Bool:
    return ValueFactory::boolV(false);
  case TypeKind::String:
    return ValueFactory::stringV("");
  case TypeKind::Pair:
    return ValueFactory::pair(Args[0]->defaultValue(), Args[1]->defaultValue());
  case TypeKind::Seq:
    return ValueFactory::emptySeq();
  case TypeKind::Set:
    return ValueFactory::emptySet();
  case TypeKind::Multiset:
    return ValueFactory::emptyMultiset();
  case TypeKind::Map:
    return ValueFactory::emptyMap();
  case TypeKind::Resource:
    // Resource handles are runtime indices into the resource table; the
    // default is an invalid handle.
    return ValueFactory::intV(-1);
  }
  return ValueFactory::unit();
}

DomainRef Type::toDomain(const ScopeParams &Scope) const {
  switch (Kind) {
  case TypeKind::Unit:
    return Domain::unit();
  case TypeKind::Int:
    return Domain::intRange(Scope.IntLo, Scope.IntHi);
  case TypeKind::Bool:
    return Domain::boolean();
  case TypeKind::String:
    // Strings are modeled as a tiny enumerable alphabet via ints; specs in
    // this codebase use ints for identifiers. Treat as small int domain.
    return Domain::intRange(0, 2);
  case TypeKind::Pair:
    return Domain::pair(Args[0]->toDomain(Scope), Args[1]->toDomain(Scope));
  case TypeKind::Seq:
    return Domain::seq(Args[0]->toDomain(Scope), Scope.CollectionBound);
  case TypeKind::Set:
    return Domain::set(Args[0]->toDomain(Scope), Scope.CollectionBound);
  case TypeKind::Multiset:
    return Domain::multiset(Args[0]->toDomain(Scope), Scope.CollectionBound);
  case TypeKind::Map:
    return Domain::map(Args[0]->toDomain(Scope), Args[1]->toDomain(Scope),
                       Scope.CollectionBound);
  case TypeKind::Resource:
    assert(false && "resource handles have no enumeration domain");
    return Domain::unit();
  }
  return Domain::unit();
}
