//===-- lang/TypeChecker.cpp - Type checking of surface programs -----------===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//

#include "lang/TypeChecker.h"

#include <set>

using namespace commcsl;

//===----------------------------------------------------------------------===//
// Scope management
//===----------------------------------------------------------------------===//

bool TypeChecker::declare(const std::string &Name, TypeRef Ty,
                          SourceLoc Loc) {
  assert(!Scopes.empty() && "no active scope");
  for (const auto &Scope : Scopes) {
    if (Scope.count(Name)) {
      error(DiagCode::DuplicateName, Loc,
            "redeclaration of '" + Name + "' (shadowing is not allowed)");
      return false;
    }
  }
  Scopes.back().emplace(Name, std::move(Ty));
  return true;
}

TypeRef TypeChecker::lookup(const std::string &Name) const {
  for (auto It = Scopes.rbegin(); It != Scopes.rend(); ++It) {
    auto Found = It->find(Name);
    if (Found != It->end())
      return Found->second;
  }
  return nullptr;
}

bool TypeChecker::expectType(const TypeRef &Actual, const TypeRef &Expected,
                             SourceLoc Loc, const char *Context) {
  if (!Actual || !Expected)
    return false;
  if (Type::equal(Actual, Expected))
    return true;
  error(DiagCode::TypeError, Loc,
        std::string(Context) + ": expected " + Expected->str() + ", found " +
            Actual->str());
  return false;
}

//===----------------------------------------------------------------------===//
// Top level
//===----------------------------------------------------------------------===//

bool TypeChecker::check() {
  if (!checkTopLevelNames())
    return false;
  for (size_t I = 0; I < Prog.Funcs.size(); ++I)
    checkFunc(Prog.Funcs[I], I);
  for (ResourceSpecDecl &S : Prog.Specs)
    checkSpec(S);
  for (ProcDecl &P : Prog.Procs)
    checkProc(P);
  return !Diags.hasErrors();
}

bool TypeChecker::checkTopLevelNames() {
  std::set<std::string> Names;
  auto Check = [&](const std::string &Name, SourceLoc Loc) {
    if (!Names.insert(Name).second) {
      error(DiagCode::DuplicateName, Loc,
            "duplicate top-level name '" + Name + "'");
      return false;
    }
    return true;
  };
  bool Ok = true;
  for (const FuncDecl &F : Prog.Funcs)
    Ok &= Check(F.Name, F.Loc);
  for (const ResourceSpecDecl &S : Prog.Specs)
    Ok &= Check(S.Name, S.Loc);
  for (const ProcDecl &P : Prog.Procs)
    Ok &= Check(P.Name, P.Loc);
  return Ok;
}

void TypeChecker::checkFunc(FuncDecl &F, size_t Index) {
  NumCheckedFuncs = Index; // calls may only reference funcs before this one
  Scopes.clear();
  pushScope();
  for (const Param &P : F.Params)
    declare(P.Name, P.Ty, P.Loc);
  TypeRef BodyTy = checkExpr(F.Body, F.RetTy);
  (void)BodyTy;
  popScope();
  NumCheckedFuncs = Index + 1;
}

void TypeChecker::checkSpec(ResourceSpecDecl &S) {
  NumCheckedFuncs = Prog.Funcs.size();
  // Alpha.
  Scopes.clear();
  pushScope();
  declare(S.AlphaParam, S.StateTy, S.Loc);
  checkExpr(S.Alpha, nullptr);
  if (S.Inv)
    checkExpr(S.Inv, Type::boolTy());
  popScope();

  std::set<std::string> ActionNames;
  for (ActionDecl &A : S.Actions) {
    if (!ActionNames.insert(A.Name).second)
      error(DiagCode::DuplicateName, A.Loc,
            "duplicate action '" + A.Name + "' in resource '" + S.Name + "'");
    // Apply: f_a(state, arg) must again have the state type (totality on the
    // resource value, Sec. 3.2 / App. D).
    pushScope();
    declare(A.StateName, S.StateTy, A.Loc);
    declare(A.ArgName, A.ArgTy, A.Loc);
    checkExpr(A.Apply, S.StateTy);
    if (A.Returns)
      checkExpr(A.Returns, nullptr);
    popScope();
    // Enabled / History are over the state only.
    pushScope();
    declare(A.StateName, S.StateTy, A.Loc);
    if (A.Enabled)
      checkExpr(A.Enabled, Type::boolTy());
    if (A.History) {
      if (!A.Unique || !A.Returns) {
        error(DiagCode::SpecIllFormed, A.Loc,
              "history requires a unique action with a returns clause");
      } else if (A.Returns->Ty) {
        checkExpr(A.History, Type::seq(A.Returns->Ty));
      }
    }
    popScope();
    // Precondition: over the argument only (state-independent, Sec. 3.2).
    pushScope();
    declare(A.ArgName, A.ArgTy, A.Loc);
    checkContract(A.Pre, /*AllowGuards=*/false);
    popScope();
  }
  if (S.Actions.empty())
    error(DiagCode::SpecIllFormed, S.Loc,
          "resource '" + S.Name + "' declares no actions");
}

void TypeChecker::checkProc(ProcDecl &P) {
  NumCheckedFuncs = Prog.Funcs.size();
  Scopes.clear();
  pushScope();
  for (const Param &Par : P.Params)
    declare(Par.Name, Par.Ty, Par.Loc);

  // Requires: parameters only.
  pushScope();
  checkContract(P.Requires, /*AllowGuards=*/true);
  popScope();

  for (const Param &Ret : P.Returns)
    declare(Ret.Name, Ret.Ty, Ret.Loc);

  // Ensures: parameters and returns.
  pushScope();
  checkContract(P.Ensures, /*AllowGuards=*/true);
  popScope();

  AllowDeclassify = true;
  checkCommand(P.Body, CmdCtx());
  AllowDeclassify = false;
  popScope();
}

//===----------------------------------------------------------------------===//
// Contracts
//===----------------------------------------------------------------------===//

const ResourceSpecDecl *TypeChecker::resolveResource(const ContractAtom &A) {
  TypeRef Ty = lookup(A.Res);
  if (!Ty || Ty->kind() != TypeKind::Resource) {
    error(DiagCode::UnknownName, A.Loc,
          "'" + A.Res + "' is not a resource handle in scope");
    return nullptr;
  }
  const ResourceSpecDecl *Spec = Prog.findSpec(Ty->resourceSpec());
  if (!Spec) {
    error(DiagCode::UnknownName, A.Loc,
          "unknown resource specification '" + Ty->resourceSpec() + "'");
    return nullptr;
  }
  return Spec;
}

void TypeChecker::checkContract(Contract &C, bool AllowGuards) {
  // Contracts describe a release but never perform one, including asserts
  // and invariants nested inside a procedure body.
  bool SavedDeclassify = AllowDeclassify;
  AllowDeclassify = false;
  for (ContractAtom &A : C) {
    switch (A.AtomKind) {
    case ContractAtom::Kind::Low:
      if (A.Level && (!A.E || A.E->Kind != ExprKind::Var))
        error(DiagCode::TypeError, A.Loc,
              "level clause must classify a plain variable");
      if (A.Cond)
        checkExpr(A.Cond, Type::boolTy());
      checkExpr(A.E, nullptr);
      break;
    case ContractAtom::Kind::Bool:
      checkExpr(A.E, Type::boolTy());
      break;
    case ContractAtom::Kind::SGuard:
    case ContractAtom::Kind::UGuard: {
      if (!AllowGuards) {
        error(DiagCode::SpecIllFormed, A.Loc,
              "guard assertions are not allowed in action preconditions");
        break;
      }
      const ResourceSpecDecl *Spec = resolveResource(A);
      if (!Spec)
        break;
      const ActionDecl *Act = Spec->findAction(A.Action);
      if (!Act) {
        error(DiagCode::UnknownName, A.Loc,
              "resource '" + Spec->Name + "' has no action '" + A.Action +
                  "'");
        break;
      }
      bool WantUnique = A.AtomKind == ContractAtom::Kind::UGuard;
      if (Act->Unique != WantUnique) {
        error(DiagCode::TypeError, A.Loc,
              std::string(WantUnique ? "uguard" : "sguard") + " used with " +
                  (Act->Unique ? "unique" : "shared") + " action '" +
                  A.Action + "'");
        break;
      }
      if (A.AtomKind == ContractAtom::Kind::SGuard &&
          (A.FracNum <= 0 || A.FracDen <= 0 || A.FracNum > A.FracDen)) {
        error(DiagCode::TypeError, A.Loc,
              "guard fraction must be in (0, 1]");
        break;
      }
      if (!A.ArgsEmpty && !A.ArgVar.empty()) {
        TypeRef ArgsTy = WantUnique ? Type::seq(Act->ArgTy)
                                    : Type::multiset(Act->ArgTy);
        declare(A.ArgVar, ArgsTy, A.Loc);
      }
      break;
    }
    case ContractAtom::Kind::AllPre: {
      if (!AllowGuards) {
        error(DiagCode::SpecIllFormed, A.Loc,
              "allpre is not allowed in action preconditions");
        break;
      }
      const ResourceSpecDecl *Spec = resolveResource(A);
      if (!Spec)
        break;
      const ActionDecl *Act = Spec->findAction(A.Action);
      if (!Act) {
        error(DiagCode::UnknownName, A.Loc,
              "resource '" + Spec->Name + "' has no action '" + A.Action +
                  "'");
        break;
      }
      TypeRef BoundTy = lookup(A.ArgVar);
      if (!BoundTy) {
        error(DiagCode::UnknownName, A.Loc,
              "allpre argument '" + A.ArgVar +
                  "' is not bound by a guard atom");
        break;
      }
      TypeRef WantTy = Act->Unique ? Type::seq(Act->ArgTy)
                                   : Type::multiset(Act->ArgTy);
      expectType(BoundTy, WantTy, A.Loc, "allpre argument");
      break;
    }
    }
  }
  AllowDeclassify = SavedDeclassify;
}

//===----------------------------------------------------------------------===//
// Commands
//===----------------------------------------------------------------------===//

void TypeChecker::checkCommand(const CommandRef &C, CmdCtx Ctx) {
  switch (C->Kind) {
  case CmdKind::Skip:
    break;
  case CmdKind::VarDecl: {
    if (!C->Exprs.empty())
      checkExpr(C->Exprs[0], C->DeclTy);
    declare(C->Var, C->DeclTy, C->Loc);
    break;
  }
  case CmdKind::Assign: {
    TypeRef Ty = lookup(C->Var);
    if (!Ty) {
      error(DiagCode::UnknownName, C->Loc,
            "assignment to undeclared variable '" + C->Var + "'");
      break;
    }
    if (Ty->kind() == TypeKind::Resource) {
      // Handles are not first-class: re-binding them would alias resources
      // behind the verifier's guard accounting.
      error(DiagCode::TypeError, C->Loc,
            "resource handles cannot be reassigned");
      break;
    }
    checkExpr(C->Exprs[0], Ty);
    break;
  }
  case CmdKind::HeapRead: {
    TypeRef Ty = lookup(C->Var);
    if (!Ty) {
      error(DiagCode::UnknownName, C->Loc,
            "undeclared variable '" + C->Var + "'");
      break;
    }
    expectType(Ty, Type::intTy(), C->Loc, "heap read target");
    checkExpr(C->Exprs[0], Type::intTy());
    break;
  }
  case CmdKind::HeapWrite:
    checkExpr(C->Exprs[0], Type::intTy());
    checkExpr(C->Exprs[1], Type::intTy());
    break;
  case CmdKind::Alloc: {
    TypeRef Ty = lookup(C->Var);
    if (!Ty) {
      error(DiagCode::UnknownName, C->Loc,
            "undeclared variable '" + C->Var + "'");
      break;
    }
    expectType(Ty, Type::intTy(), C->Loc, "alloc target");
    checkExpr(C->Exprs[0], Type::intTy());
    break;
  }
  case CmdKind::Block: {
    pushScope();
    for (const CommandRef &Child : C->Children)
      checkCommand(Child, Ctx);
    popScope();
    break;
  }
  case CmdKind::If: {
    checkExpr(C->Exprs[0], Type::boolTy());
    checkCommand(C->Children[0], Ctx);
    checkCommand(C->Children[1], Ctx);
    break;
  }
  case CmdKind::While: {
    checkExpr(C->Exprs[0], Type::boolTy());
    for (Contract &Inv : C->Invariants) {
      pushScope();
      checkContract(Inv, /*AllowGuards=*/true);
      popScope();
    }
    checkCommand(C->Children[0], Ctx);
    break;
  }
  case CmdKind::Par: {
    if (Ctx.InAtomic)
      error(DiagCode::TypeError, C->Loc, "par inside atomic block");
    for (const CommandRef &Child : C->Children)
      checkCommand(Child, Ctx);
    break;
  }
  case CmdKind::CallProc: {
    if (Ctx.InAtomic) {
      error(DiagCode::TypeError, C->Loc,
            "procedure call inside atomic block");
      break;
    }
    const ProcDecl *Callee = Prog.findProc(C->Aux);
    if (!Callee) {
      error(DiagCode::UnknownName, C->Loc,
            "call to unknown procedure '" + C->Aux + "'");
      break;
    }
    if (Callee->Params.size() != C->Exprs.size()) {
      error(DiagCode::TypeError, C->Loc,
            "call to '" + C->Aux + "': expected " +
                std::to_string(Callee->Params.size()) + " arguments, found " +
                std::to_string(C->Exprs.size()));
      break;
    }
    for (size_t I = 0; I < C->Exprs.size(); ++I)
      checkExpr(C->Exprs[I], Callee->Params[I].Ty);
    if (Callee->Returns.size() != C->Rets.size()) {
      error(DiagCode::TypeError, C->Loc,
            "call to '" + C->Aux + "': expected " +
                std::to_string(Callee->Returns.size()) +
                " result targets, found " + std::to_string(C->Rets.size()));
      break;
    }
    std::set<std::string> Seen;
    for (size_t I = 0; I < C->Rets.size(); ++I) {
      if (!Seen.insert(C->Rets[I]).second)
        error(DiagCode::TypeError, C->Loc,
              "duplicate call result target '" + C->Rets[I] + "'");
      TypeRef Ty = lookup(C->Rets[I]);
      if (!Ty) {
        error(DiagCode::UnknownName, C->Loc,
              "undeclared call result target '" + C->Rets[I] + "'");
        continue;
      }
      expectType(Ty, Callee->Returns[I].Ty, C->Loc, "call result");
    }
    break;
  }
  case CmdKind::Share: {
    if (Ctx.InAtomic) {
      error(DiagCode::TypeError, C->Loc, "share inside atomic block");
      break;
    }
    const ResourceSpecDecl *Spec = Prog.findSpec(C->Aux);
    if (!Spec) {
      error(DiagCode::UnknownName, C->Loc,
            "share of unknown resource specification '" + C->Aux + "'");
      break;
    }
    checkExpr(C->Exprs[0], Spec->StateTy);
    declare(C->Var, Type::resource(Spec->Name), C->Loc);
    break;
  }
  case CmdKind::Unshare: {
    if (Ctx.InAtomic) {
      error(DiagCode::TypeError, C->Loc, "unshare inside atomic block");
      break;
    }
    TypeRef ResTy = lookup(C->Aux);
    if (!ResTy || ResTy->kind() != TypeKind::Resource) {
      error(DiagCode::UnknownName, C->Loc,
            "'" + C->Aux + "' is not a resource handle in scope");
      break;
    }
    const ResourceSpecDecl *Spec = Prog.findSpec(ResTy->resourceSpec());
    assert(Spec && "resource type with unknown spec");
    TypeRef TargetTy = lookup(C->Var);
    if (!TargetTy) {
      error(DiagCode::UnknownName, C->Loc,
            "undeclared unshare target '" + C->Var + "'");
      break;
    }
    expectType(TargetTy, Spec->StateTy, C->Loc, "unshare target");
    break;
  }
  case CmdKind::Atomic: {
    if (Ctx.InAtomic) {
      error(DiagCode::TypeError, C->Loc, "nested atomic block");
      break;
    }
    TypeRef ResTy = lookup(C->Aux);
    if (!ResTy || ResTy->kind() != TypeKind::Resource) {
      error(DiagCode::UnknownName, C->Loc,
            "'" + C->Aux + "' is not a resource handle in scope");
      break;
    }
    if (!C->Var.empty()) {
      const ResourceSpecDecl *Spec = Prog.findSpec(ResTy->resourceSpec());
      assert(Spec && "resource type with unknown spec");
      const ActionDecl *Act = Spec->findAction(C->Var);
      if (!Act)
        error(DiagCode::UnknownName, C->Loc,
              "atomic-when names unknown action '" + C->Var + "'");
    }
    CmdCtx Inner = Ctx;
    Inner.InAtomic = true;
    Inner.AtomicRes = C->Aux;
    checkCommand(C->Children[0], Inner);
    break;
  }
  case CmdKind::Perform: {
    if (!Ctx.InAtomic || Ctx.AtomicRes != C->Aux) {
      error(DiagCode::TypeError, C->Loc,
            "perform outside an atomic block for resource '" + C->Aux + "'");
      break;
    }
    TypeRef ResTy = lookup(C->Aux);
    if (!ResTy || ResTy->kind() != TypeKind::Resource)
      break; // already diagnosed at the atomic
    const ResourceSpecDecl *Spec = Prog.findSpec(ResTy->resourceSpec());
    assert(Spec && "resource type with unknown spec");
    const ActionDecl *Act = Spec->findAction(C->Rets[0]);
    if (!Act) {
      error(DiagCode::UnknownName, C->Loc,
            "resource '" + Spec->Name + "' has no action '" + C->Rets[0] +
                "'");
      break;
    }
    checkExpr(C->Exprs[0], Act->ArgTy);
    if (!C->Var.empty()) {
      if (!Act->Returns) {
        error(DiagCode::TypeError, C->Loc,
              "action '" + Act->Name + "' has no returns clause");
        break;
      }
      TypeRef TargetTy = lookup(C->Var);
      if (!TargetTy) {
        error(DiagCode::UnknownName, C->Loc,
              "undeclared perform result target '" + C->Var + "'");
        break;
      }
      expectType(TargetTy, Act->Returns->Ty, C->Loc, "perform result");
    }
    break;
  }
  case CmdKind::ResVal: {
    if (!Ctx.InAtomic || Ctx.AtomicRes != C->Aux) {
      error(DiagCode::TypeError, C->Loc,
            "resval outside an atomic block for resource '" + C->Aux + "'");
      break;
    }
    TypeRef ResTy = lookup(C->Aux);
    if (!ResTy || ResTy->kind() != TypeKind::Resource)
      break;
    const ResourceSpecDecl *Spec = Prog.findSpec(ResTy->resourceSpec());
    assert(Spec && "resource type with unknown spec");
    TypeRef TargetTy = lookup(C->Var);
    if (!TargetTy) {
      error(DiagCode::UnknownName, C->Loc,
            "undeclared resval target '" + C->Var + "'");
      break;
    }
    expectType(TargetTy, Spec->StateTy, C->Loc, "resval target");
    break;
  }
  case CmdKind::AssertGhost: {
    pushScope();
    checkContract(C->Asserted, /*AllowGuards=*/true);
    popScope();
    break;
  }
  case CmdKind::Output:
    checkExpr(C->Exprs[0], nullptr);
    break;
  }
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

TypeRef TypeChecker::checkExpr(const ExprRef &E, const TypeRef &Expected) {
  TypeRef Result;
  switch (E->Kind) {
  case ExprKind::IntLit:
    Result = Type::intTy();
    break;
  case ExprKind::BoolLit:
    Result = Type::boolTy();
    break;
  case ExprKind::StringLit:
    Result = Type::stringTy();
    break;
  case ExprKind::UnitLit:
    Result = Type::unit();
    break;
  case ExprKind::Var: {
    Result = lookup(E->Name);
    if (!Result) {
      error(DiagCode::UnknownName, E->Loc,
            "use of undeclared variable '" + E->Name + "'");
      return nullptr;
    }
    break;
  }
  case ExprKind::Unary: {
    if (E->UOp == UnaryOp::Neg) {
      if (!checkExpr(E->Args[0], Type::intTy()))
        return nullptr;
      Result = Type::intTy();
    } else {
      if (!checkExpr(E->Args[0], Type::boolTy()))
        return nullptr;
      Result = Type::boolTy();
    }
    break;
  }
  case ExprKind::Binary: {
    switch (E->BOp) {
    case BinaryOp::Add:
    case BinaryOp::Sub:
    case BinaryOp::Mul:
    case BinaryOp::Div:
    case BinaryOp::Mod:
      if (!checkExpr(E->Args[0], Type::intTy()) ||
          !checkExpr(E->Args[1], Type::intTy()))
        return nullptr;
      Result = Type::intTy();
      break;
    case BinaryOp::Lt:
    case BinaryOp::Le:
    case BinaryOp::Gt:
    case BinaryOp::Ge:
      if (!checkExpr(E->Args[0], Type::intTy()) ||
          !checkExpr(E->Args[1], Type::intTy()))
        return nullptr;
      Result = Type::boolTy();
      break;
    case BinaryOp::Eq:
    case BinaryOp::Ne: {
      TypeRef L = checkExpr(E->Args[0], nullptr);
      if (!L)
        return nullptr;
      if (!checkExpr(E->Args[1], L))
        return nullptr;
      Result = Type::boolTy();
      break;
    }
    case BinaryOp::And:
    case BinaryOp::Or:
    case BinaryOp::Implies:
      if (!checkExpr(E->Args[0], Type::boolTy()) ||
          !checkExpr(E->Args[1], Type::boolTy()))
        return nullptr;
      Result = Type::boolTy();
      break;
    }
    break;
  }
  case ExprKind::Builtin:
    Result = checkBuiltin(E, Expected);
    if (!Result)
      return nullptr;
    break;
  case ExprKind::Call: {
    const FuncDecl *F = Prog.findFunc(E->Name);
    if (!F) {
      error(DiagCode::UnknownName, E->Loc,
            "call to unknown function '" + E->Name + "'");
      return nullptr;
    }
    // Enforce non-recursion: only previously checked functions callable.
    size_t Index = static_cast<size_t>(F - Prog.Funcs.data());
    if (Index >= NumCheckedFuncs) {
      error(DiagCode::TypeError, E->Loc,
            "function '" + E->Name +
                "' must be declared before use (functions are "
                "non-recursive)");
      return nullptr;
    }
    if (F->Params.size() != E->Args.size()) {
      error(DiagCode::TypeError, E->Loc,
            "call to '" + E->Name + "': expected " +
                std::to_string(F->Params.size()) + " arguments, found " +
                std::to_string(E->Args.size()));
      return nullptr;
    }
    for (size_t I = 0; I < E->Args.size(); ++I)
      if (!checkExpr(E->Args[I], F->Params[I].Ty))
        return nullptr;
    Result = F->RetTy;
    break;
  }
  }

  if (!Result)
    return nullptr;
  if (Expected && !expectType(Result, Expected, E->Loc, "expression"))
    return nullptr;
  E->Ty = Result;
  return Result;
}

TypeRef TypeChecker::checkBuiltin(const ExprRef &E, const TypeRef &Expected) {
  auto Fail = [&](const std::string &Msg) -> TypeRef {
    error(DiagCode::TypeError, E->Loc, Msg);
    return nullptr;
  };
  auto ArgTy = [&](size_t I, const TypeRef &Exp) -> TypeRef {
    return checkExpr(E->Args[I], Exp);
  };

  switch (E->Builtin) {
  case BuiltinKind::PairMk: {
    TypeRef FstExp, SndExp;
    if (Expected && Expected->kind() == TypeKind::Pair) {
      FstExp = Expected->first();
      SndExp = Expected->second();
    }
    TypeRef F = ArgTy(0, FstExp);
    TypeRef S = ArgTy(1, SndExp);
    if (!F || !S)
      return nullptr;
    return Type::pair(F, S);
  }
  case BuiltinKind::Fst: {
    TypeRef P = ArgTy(0, nullptr);
    if (!P)
      return nullptr;
    if (P->kind() != TypeKind::Pair)
      return Fail("fst: argument must be a pair, found " + P->str());
    return P->first();
  }
  case BuiltinKind::Snd: {
    TypeRef P = ArgTy(0, nullptr);
    if (!P)
      return nullptr;
    if (P->kind() != TypeKind::Pair)
      return Fail("snd: argument must be a pair, found " + P->str());
    return P->second();
  }
  case BuiltinKind::SeqEmpty:
    if (!Expected || Expected->kind() != TypeKind::Seq)
      return Fail("seq_empty() needs an expected seq<...> type from context");
    return Expected;
  case BuiltinKind::SetEmpty:
    if (!Expected || Expected->kind() != TypeKind::Set)
      return Fail("set_empty() needs an expected set<...> type from context");
    return Expected;
  case BuiltinKind::MsEmpty:
    if (!Expected || Expected->kind() != TypeKind::Multiset)
      return Fail(
          "mset_empty() needs an expected mset<...> type from context");
    return Expected;
  case BuiltinKind::MapEmpty:
    if (!Expected || Expected->kind() != TypeKind::Map)
      return Fail("map_empty() needs an expected map<...> type from context");
    return Expected;
  case BuiltinKind::SeqAppend: {
    TypeRef S = ArgTy(0, Expected && Expected->kind() == TypeKind::Seq
                             ? Expected
                             : nullptr);
    if (!S)
      return nullptr;
    if (S->kind() != TypeKind::Seq)
      return Fail("append: first argument must be a seq, found " + S->str());
    if (!ArgTy(1, S->first()))
      return nullptr;
    return S;
  }
  case BuiltinKind::SeqConcat: {
    TypeRef A = ArgTy(0, Expected && Expected->kind() == TypeKind::Seq
                             ? Expected
                             : nullptr);
    if (!A)
      return nullptr;
    if (A->kind() != TypeKind::Seq)
      return Fail("concat: arguments must be seqs, found " + A->str());
    if (!ArgTy(1, A))
      return nullptr;
    return A;
  }
  case BuiltinKind::SeqLen: {
    TypeRef S = ArgTy(0, nullptr);
    if (!S)
      return nullptr;
    if (S->kind() != TypeKind::Seq)
      return Fail("len: argument must be a seq, found " + S->str());
    return Type::intTy();
  }
  case BuiltinKind::SeqAt: {
    TypeRef S = ArgTy(0, nullptr);
    if (!S)
      return nullptr;
    if (S->kind() != TypeKind::Seq)
      return Fail("at: first argument must be a seq, found " + S->str());
    if (!ArgTy(1, Type::intTy()))
      return nullptr;
    return S->first();
  }
  case BuiltinKind::SeqHead:
  case BuiltinKind::SeqLast: {
    TypeRef S = ArgTy(0, nullptr);
    if (!S)
      return nullptr;
    if (S->kind() != TypeKind::Seq)
      return Fail("head/last: argument must be a seq, found " + S->str());
    return S->first();
  }
  case BuiltinKind::SeqTake:
  case BuiltinKind::SeqDrop: {
    TypeRef S = ArgTy(0, Expected && Expected->kind() == TypeKind::Seq
                             ? Expected
                             : nullptr);
    if (!S)
      return nullptr;
    if (S->kind() != TypeKind::Seq)
      return Fail("take/drop: first argument must be a seq, found " +
                  S->str());
    if (!ArgTy(1, Type::intTy()))
      return nullptr;
    return S;
  }
  case BuiltinKind::SeqTail:
  case BuiltinKind::SeqInit:
  case BuiltinKind::SeqSort: {
    TypeRef S = ArgTy(0, Expected && Expected->kind() == TypeKind::Seq
                             ? Expected
                             : nullptr);
    if (!S)
      return nullptr;
    if (S->kind() != TypeKind::Seq)
      return Fail("tail/init/sort: argument must be a seq, found " +
                  S->str());
    return S;
  }
  case BuiltinKind::SeqContains: {
    TypeRef S = ArgTy(0, nullptr);
    if (!S)
      return nullptr;
    if (S->kind() != TypeKind::Seq)
      return Fail("seq_contains: first argument must be a seq, found " +
                  S->str());
    if (!ArgTy(1, S->first()))
      return nullptr;
    return Type::boolTy();
  }
  case BuiltinKind::SeqToMs: {
    TypeRef S = ArgTy(0, nullptr);
    if (!S)
      return nullptr;
    if (S->kind() != TypeKind::Seq)
      return Fail("seq_to_mset: argument must be a seq, found " + S->str());
    return Type::multiset(S->first());
  }
  case BuiltinKind::SeqToSet: {
    TypeRef S = ArgTy(0, nullptr);
    if (!S)
      return nullptr;
    if (S->kind() != TypeKind::Seq)
      return Fail("seq_to_set: argument must be a seq, found " + S->str());
    return Type::set(S->first());
  }
  case BuiltinKind::SeqSum:
  case BuiltinKind::SeqMean: {
    if (!ArgTy(0, Type::seq(Type::intTy())))
      return nullptr;
    return Type::intTy();
  }
  case BuiltinKind::SetAdd: {
    TypeRef S = ArgTy(0, Expected && Expected->kind() == TypeKind::Set
                             ? Expected
                             : nullptr);
    if (!S)
      return nullptr;
    if (S->kind() != TypeKind::Set)
      return Fail("set_add: first argument must be a set, found " + S->str());
    if (!ArgTy(1, S->first()))
      return nullptr;
    return S;
  }
  case BuiltinKind::SetUnion:
  case BuiltinKind::SetInter:
  case BuiltinKind::SetDiff: {
    TypeRef A = ArgTy(0, Expected && Expected->kind() == TypeKind::Set
                             ? Expected
                             : nullptr);
    if (!A)
      return nullptr;
    if (A->kind() != TypeKind::Set)
      return Fail("set operation: arguments must be sets, found " + A->str());
    if (!ArgTy(1, A))
      return nullptr;
    return A;
  }
  case BuiltinKind::SetMember: {
    TypeRef S = ArgTy(0, nullptr);
    if (!S)
      return nullptr;
    if (S->kind() != TypeKind::Set)
      return Fail("set_member: first argument must be a set, found " +
                  S->str());
    if (!ArgTy(1, S->first()))
      return nullptr;
    return Type::boolTy();
  }
  case BuiltinKind::SetSize: {
    TypeRef S = ArgTy(0, nullptr);
    if (!S)
      return nullptr;
    if (S->kind() != TypeKind::Set)
      return Fail("set_size: argument must be a set, found " + S->str());
    return Type::intTy();
  }
  case BuiltinKind::SetToSeq: {
    TypeRef S = ArgTy(0, nullptr);
    if (!S)
      return nullptr;
    if (S->kind() != TypeKind::Set)
      return Fail("set_to_seq: argument must be a set, found " + S->str());
    return Type::seq(S->first());
  }
  case BuiltinKind::MsAdd: {
    TypeRef M = ArgTy(0, Expected && Expected->kind() == TypeKind::Multiset
                             ? Expected
                             : nullptr);
    if (!M)
      return nullptr;
    if (M->kind() != TypeKind::Multiset)
      return Fail("mset_add: first argument must be a mset, found " +
                  M->str());
    if (!ArgTy(1, M->first()))
      return nullptr;
    return M;
  }
  case BuiltinKind::MsUnion:
  case BuiltinKind::MsDiff: {
    TypeRef A = ArgTy(0, Expected && Expected->kind() == TypeKind::Multiset
                             ? Expected
                             : nullptr);
    if (!A)
      return nullptr;
    if (A->kind() != TypeKind::Multiset)
      return Fail("mset operation: arguments must be msets, found " +
                  A->str());
    if (!ArgTy(1, A))
      return nullptr;
    return A;
  }
  case BuiltinKind::MsCard: {
    TypeRef M = ArgTy(0, nullptr);
    if (!M)
      return nullptr;
    if (M->kind() != TypeKind::Multiset)
      return Fail("card: argument must be a mset, found " + M->str());
    return Type::intTy();
  }
  case BuiltinKind::MsCount: {
    TypeRef M = ArgTy(0, nullptr);
    if (!M)
      return nullptr;
    if (M->kind() != TypeKind::Multiset)
      return Fail("mset_count: first argument must be a mset, found " +
                  M->str());
    if (!ArgTy(1, M->first()))
      return nullptr;
    return Type::intTy();
  }
  case BuiltinKind::MsToSeq: {
    TypeRef M = ArgTy(0, nullptr);
    if (!M)
      return nullptr;
    if (M->kind() != TypeKind::Multiset)
      return Fail("mset_to_seq: argument must be a mset, found " + M->str());
    return Type::seq(M->first());
  }
  case BuiltinKind::MapPut: {
    TypeRef M = ArgTy(0, Expected && Expected->kind() == TypeKind::Map
                             ? Expected
                             : nullptr);
    if (!M)
      return nullptr;
    if (M->kind() != TypeKind::Map)
      return Fail("map_put: first argument must be a map, found " + M->str());
    if (!ArgTy(1, M->first()) || !ArgTy(2, M->second()))
      return nullptr;
    return M;
  }
  case BuiltinKind::MapGet: {
    TypeRef M = ArgTy(0, nullptr);
    if (!M)
      return nullptr;
    if (M->kind() != TypeKind::Map)
      return Fail("map_get: first argument must be a map, found " + M->str());
    if (!ArgTy(1, M->first()))
      return nullptr;
    return M->second();
  }
  case BuiltinKind::MapGetOr: {
    TypeRef M = ArgTy(0, nullptr);
    if (!M)
      return nullptr;
    if (M->kind() != TypeKind::Map)
      return Fail("map_get_or: first argument must be a map, found " +
                  M->str());
    if (!ArgTy(1, M->first()) || !ArgTy(2, M->second()))
      return nullptr;
    return M->second();
  }
  case BuiltinKind::MapHas: {
    TypeRef M = ArgTy(0, nullptr);
    if (!M)
      return nullptr;
    if (M->kind() != TypeKind::Map)
      return Fail("map_has: first argument must be a map, found " + M->str());
    if (!ArgTy(1, M->first()))
      return nullptr;
    return Type::boolTy();
  }
  case BuiltinKind::MapRemove: {
    TypeRef M = ArgTy(0, Expected && Expected->kind() == TypeKind::Map
                             ? Expected
                             : nullptr);
    if (!M)
      return nullptr;
    if (M->kind() != TypeKind::Map)
      return Fail("map_remove: first argument must be a map, found " +
                  M->str());
    if (!ArgTy(1, M->first()))
      return nullptr;
    return M;
  }
  case BuiltinKind::MapDom: {
    TypeRef M = ArgTy(0, nullptr);
    if (!M)
      return nullptr;
    if (M->kind() != TypeKind::Map)
      return Fail("dom: argument must be a map, found " + M->str());
    return Type::set(M->first());
  }
  case BuiltinKind::MapValues: {
    TypeRef M = ArgTy(0, nullptr);
    if (!M)
      return nullptr;
    if (M->kind() != TypeKind::Map)
      return Fail("map_values: argument must be a map, found " + M->str());
    return Type::multiset(M->second());
  }
  case BuiltinKind::MapSize: {
    TypeRef M = ArgTy(0, nullptr);
    if (!M)
      return nullptr;
    if (M->kind() != TypeKind::Map)
      return Fail("map_size: argument must be a map, found " + M->str());
    return Type::intTy();
  }
  case BuiltinKind::Ite: {
    if (!ArgTy(0, Type::boolTy()))
      return nullptr;
    TypeRef T = ArgTy(1, Expected);
    if (!T)
      return nullptr;
    if (!ArgTy(2, T))
      return nullptr;
    return T;
  }
  case BuiltinKind::Min:
  case BuiltinKind::Max: {
    if (!ArgTy(0, Type::intTy()) || !ArgTy(1, Type::intTy()))
      return nullptr;
    return Type::intTy();
  }
  case BuiltinKind::Abs: {
    if (!ArgTy(0, Type::intTy()))
      return nullptr;
    return Type::intTy();
  }
  case BuiltinKind::Declassify: {
    // Declassification is a command-level act of the program, not a
    // specification construct: contracts, invariants, functions, and spec
    // clauses must describe the release, never perform it.
    if (!AllowDeclassify) {
      error(DiagCode::TypeError, E->Loc,
            "declassify is only allowed inside procedure bodies");
      return nullptr;
    }
    return ArgTy(0, Expected);
  }
  }
  return nullptr;
}
