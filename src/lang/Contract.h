//===-- lang/Contract.h - Relational contract atoms -------------*- C++ -*-===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Relational contract atoms used in requires/ensures clauses, loop
/// invariants, and ghost assertions. The fragment mirrors the assertions of
/// Sec. 3.4: `low(e)` (the Low(e) assertion), boolean expressions (which are
/// implicitly required in both executions), guard assertions `sguard`/`uguard`
/// carrying a fraction and an argument-collection binder, and `allpre`
/// (the paper's PRE predicate, Def. 3.2).
///
//===----------------------------------------------------------------------===//

#ifndef COMMCSL_LANG_CONTRACT_H
#define COMMCSL_LANG_CONTRACT_H

#include "lang/Expr.h"
#include "support/SourceLoc.h"

#include <string>
#include <vector>

namespace commcsl {

/// One conjunct of a contract.
struct ContractAtom {
  enum class Kind : uint8_t {
    Low,    ///< low(e)
    Bool,   ///< e          (boolean expression, holds in both executions)
    SGuard, ///< sguard(R.A, p/q, S | empty)
    UGuard, ///< uguard(R.A, S | empty)
    AllPre, ///< allpre(R.A, S)   — PRE_A(S), Def. 3.2
  };

  Kind AtomKind = Kind::Bool;
  SourceLoc Loc;

  /// Low/Bool: the expression. May mention spec variables bound by guard
  /// atoms earlier in the same contract.
  ExprRef E;

  /// Low only: optional boolean condition; the atom then denotes the
  /// value-dependent assertion `Cond ==> Low(E)` (Sec. 3.4).
  ExprRef Cond;

  /// Low only: true when the atom was written with the conditional
  /// classification surface syntax `level(x) = if g then low else high`.
  /// Semantically identical to the condLow form `g ==> low(x)` — the level
  /// of `x` is a function of the in-state guard — but the flag is kept so
  /// the printer round-trips the clause and the static analysis can treat
  /// declared classifications flow-sensitively.
  bool Level = false;

  /// Guard/AllPre atoms: resource handle and action name.
  std::string Res;
  std::string Action;

  /// SGuard fraction p/q.
  int64_t FracNum = 1;
  int64_t FracDen = 1;

  /// Guard atoms: name of the spec variable bound to the recorded argument
  /// multiset (shared) or sequence (unique); empty string together with
  /// ArgsEmpty==true denotes the literal empty collection.
  std::string ArgVar;
  bool ArgsEmpty = false;

  static ContractAtom low(ExprRef E, SourceLoc Loc = SourceLoc()) {
    ContractAtom A;
    A.AtomKind = Kind::Low;
    A.E = std::move(E);
    A.Loc = Loc;
    return A;
  }

  static ContractAtom condLow(ExprRef Cond, ExprRef E,
                              SourceLoc Loc = SourceLoc()) {
    ContractAtom A;
    A.AtomKind = Kind::Low;
    A.Cond = std::move(Cond);
    A.E = std::move(E);
    A.Loc = Loc;
    return A;
  }

  static ContractAtom level(ExprRef Var, ExprRef Guard,
                            SourceLoc Loc = SourceLoc()) {
    ContractAtom A = condLow(std::move(Guard), std::move(Var), Loc);
    A.Level = true;
    return A;
  }

  static ContractAtom boolean(ExprRef E, SourceLoc Loc = SourceLoc()) {
    ContractAtom A;
    A.AtomKind = Kind::Bool;
    A.E = std::move(E);
    A.Loc = Loc;
    return A;
  }

  static ContractAtom sguard(std::string Res, std::string Action,
                             int64_t Num, int64_t Den, std::string ArgVar,
                             bool Empty, SourceLoc Loc = SourceLoc()) {
    ContractAtom A;
    A.AtomKind = Kind::SGuard;
    A.Res = std::move(Res);
    A.Action = std::move(Action);
    A.FracNum = Num;
    A.FracDen = Den;
    A.ArgVar = std::move(ArgVar);
    A.ArgsEmpty = Empty;
    A.Loc = Loc;
    return A;
  }

  static ContractAtom uguard(std::string Res, std::string Action,
                             std::string ArgVar, bool Empty,
                             SourceLoc Loc = SourceLoc()) {
    ContractAtom A;
    A.AtomKind = Kind::UGuard;
    A.Res = std::move(Res);
    A.Action = std::move(Action);
    A.ArgVar = std::move(ArgVar);
    A.ArgsEmpty = Empty;
    A.Loc = Loc;
    return A;
  }

  static ContractAtom allpre(std::string Res, std::string Action,
                             std::string ArgVar, SourceLoc Loc = SourceLoc()) {
    ContractAtom A;
    A.AtomKind = Kind::AllPre;
    A.Res = std::move(Res);
    A.Action = std::move(Action);
    A.ArgVar = std::move(ArgVar);
    A.Loc = Loc;
    return A;
  }

  /// Renders the atom in surface syntax.
  std::string str() const;
};

/// A contract is a conjunction of atoms.
using Contract = std::vector<ContractAtom>;

/// Renders a contract as `a1 && a2 && ...`.
std::string contractStr(const Contract &C);

/// Structural equality of contract atoms / contracts (locations ignored).
bool structurallyEqual(const ContractAtom &A, const ContractAtom &B);
bool structurallyEqual(const Contract &A, const Contract &B);

/// Deep copy of a contract (expressions cloned).
ContractAtom cloneAtom(const ContractAtom &A);
Contract cloneContract(const Contract &C);

} // namespace commcsl

#endif // COMMCSL_LANG_CONTRACT_H
