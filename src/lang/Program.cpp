//===-- lang/Program.cpp - Top-level program structure ---------------------===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//

#include "lang/Program.h"

#include <sstream>

using namespace commcsl;

std::string ContractAtom::str() const {
  std::ostringstream OS;
  switch (AtomKind) {
  case Kind::Low:
    if (Cond)
      OS << Cond->str() << " ==> ";
    OS << "low(" << E->str() << ")";
    break;
  case Kind::Bool:
    OS << E->str();
    break;
  case Kind::SGuard:
    OS << "sguard(" << Res << "." << Action << ", " << FracNum << "/"
       << FracDen << ", " << (ArgsEmpty ? "empty" : ArgVar) << ")";
    break;
  case Kind::UGuard:
    OS << "uguard(" << Res << "." << Action << ", "
       << (ArgsEmpty ? "empty" : ArgVar) << ")";
    break;
  case Kind::AllPre:
    OS << "allpre(" << Res << "." << Action << ", " << ArgVar << ")";
    break;
  }
  return OS.str();
}

std::string commcsl::contractStr(const Contract &C) {
  std::ostringstream OS;
  for (size_t I = 0; I < C.size(); ++I)
    OS << (I ? " && " : "") << C[I].str();
  if (C.empty())
    OS << "true";
  return OS.str();
}

namespace {
void printParams(std::ostringstream &OS, const std::vector<Param> &Params) {
  for (size_t I = 0; I < Params.size(); ++I)
    OS << (I ? ", " : "") << Params[I].Name << ": " << Params[I].Ty->str();
}
} // namespace

std::string Program::str() const {
  std::ostringstream OS;
  for (const FuncDecl &F : Funcs) {
    OS << "function " << F.Name << "(";
    printParams(OS, F.Params);
    OS << "): " << F.RetTy->str() << " = " << F.Body->str() << ";\n\n";
  }
  for (const ResourceSpecDecl &S : Specs) {
    OS << "resource " << S.Name << " {\n";
    OS << "  state: " << S.StateTy->str() << ";\n";
    OS << "  alpha(" << S.AlphaParam << ") = " << S.Alpha->str() << ";\n";
    if (S.Inv)
      OS << "  inv(" << S.AlphaParam << ") = " << S.Inv->str() << ";\n";
    for (const ActionDecl &A : S.Actions) {
      OS << "  " << (A.Unique ? "unique" : "shared") << " action " << A.Name
         << "(" << A.ArgName << ": " << A.ArgTy->str() << ") {\n";
      OS << "    apply(" << A.StateName << ", " << A.ArgName
         << ") = " << A.Apply->str() << ";\n";
      if (A.Returns)
        OS << "    returns(" << A.StateName << ", " << A.ArgName
           << ") = " << A.Returns->str() << ";\n";
      if (A.Enabled)
        OS << "    enabled(" << A.StateName << ") = " << A.Enabled->str()
           << ";\n";
      if (A.History)
        OS << "    history(" << A.StateName << ") = " << A.History->str()
           << ";\n";
      if (!A.Pre.empty())
        OS << "    requires " << contractStr(A.Pre) << ";\n";
      OS << "  }\n";
    }
    OS << "}\n\n";
  }
  for (const ProcDecl &P : Procs) {
    OS << "procedure " << P.Name << "(";
    printParams(OS, P.Params);
    OS << ")";
    if (!P.Returns.empty()) {
      OS << " returns (";
      printParams(OS, P.Returns);
      OS << ")";
    }
    OS << "\n";
    if (!P.Requires.empty())
      OS << "  requires " << contractStr(P.Requires) << ";\n";
    if (!P.Ensures.empty())
      OS << "  ensures " << contractStr(P.Ensures) << ";\n";
    OS << P.Body->str(0) << "\n";
  }
  return OS.str();
}
