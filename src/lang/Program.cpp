//===-- lang/Program.cpp - Top-level program structure ---------------------===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//

#include "lang/Program.h"

#include <sstream>

using namespace commcsl;

std::string ContractAtom::str() const {
  std::ostringstream OS;
  switch (AtomKind) {
  case Kind::Low:
    if (Level) {
      OS << "level(" << E->str() << ") = if " << Cond->str()
         << " then low else high";
      break;
    }
    if (Cond)
      OS << Cond->str() << " ==> ";
    OS << "low(" << E->str() << ")";
    break;
  case Kind::Bool:
    OS << E->str();
    break;
  case Kind::SGuard:
    OS << "sguard(" << Res << "." << Action << ", " << FracNum << "/"
       << FracDen << ", " << (ArgsEmpty ? "empty" : ArgVar) << ")";
    break;
  case Kind::UGuard:
    OS << "uguard(" << Res << "." << Action << ", "
       << (ArgsEmpty ? "empty" : ArgVar) << ")";
    break;
  case Kind::AllPre:
    OS << "allpre(" << Res << "." << Action << ", " << ArgVar << ")";
    break;
  }
  return OS.str();
}

std::string commcsl::contractStr(const Contract &C) {
  std::ostringstream OS;
  for (size_t I = 0; I < C.size(); ++I)
    OS << (I ? " && " : "") << C[I].str();
  if (C.empty())
    OS << "true";
  return OS.str();
}

namespace {
void printParams(std::ostringstream &OS, const std::vector<Param> &Params) {
  for (size_t I = 0; I < Params.size(); ++I)
    OS << (I ? ", " : "") << Params[I].Name << ": " << Params[I].Ty->str();
}
} // namespace

std::string Program::str() const {
  std::ostringstream OS;
  for (const FuncDecl &F : Funcs) {
    OS << "function " << F.Name << "(";
    printParams(OS, F.Params);
    OS << "): " << F.RetTy->str() << " = " << F.Body->str() << ";\n\n";
  }
  for (const ResourceSpecDecl &S : Specs) {
    OS << "resource " << S.Name << " {\n";
    OS << "  state: " << S.StateTy->str() << ";\n";
    OS << "  alpha(" << S.AlphaParam << ") = " << S.Alpha->str() << ";\n";
    if (S.Inv)
      OS << "  inv(" << S.AlphaParam << ") = " << S.Inv->str() << ";\n";
    // Scope hints bound the validity checker's enumeration; dropping them
    // on reprint would silently change the Def. 3.1 verdict of a
    // print/parse round trip. Only non-default hints are materialized.
    ResourceSpecDecl Defaults;
    if (S.ScopeIntLo != Defaults.ScopeIntLo ||
        S.ScopeIntHi != Defaults.ScopeIntHi)
      OS << "  scope int " << S.ScopeIntLo << " .. " << S.ScopeIntHi << ";\n";
    if (S.ScopeCollectionBound != Defaults.ScopeCollectionBound)
      OS << "  scope size " << S.ScopeCollectionBound << ";\n";
    for (const ActionDecl &A : S.Actions) {
      OS << "  " << (A.Unique ? "unique" : "shared") << " action " << A.Name
         << "(" << A.ArgName << ": " << A.ArgTy->str() << ") {\n";
      OS << "    apply(" << A.StateName << ", " << A.ArgName
         << ") = " << A.Apply->str() << ";\n";
      if (A.Returns)
        OS << "    returns(" << A.StateName << ", " << A.ArgName
           << ") = " << A.Returns->str() << ";\n";
      if (A.Enabled)
        OS << "    enabled(" << A.StateName << ") = " << A.Enabled->str()
           << ";\n";
      if (A.History)
        OS << "    history(" << A.StateName << ") = " << A.History->str()
           << ";\n";
      if (!A.Pre.empty())
        OS << "    requires " << contractStr(A.Pre) << ";\n";
      OS << "  }\n";
    }
    OS << "}\n\n";
  }
  for (const ProcDecl &P : Procs) {
    OS << "procedure " << P.Name << "(";
    printParams(OS, P.Params);
    OS << ")";
    if (!P.Returns.empty()) {
      OS << " returns (";
      printParams(OS, P.Returns);
      OS << ")";
    }
    OS << "\n";
    if (!P.Requires.empty())
      OS << "  requires " << contractStr(P.Requires) << ";\n";
    if (!P.Ensures.empty())
      OS << "  ensures " << contractStr(P.Ensures) << ";\n";
    OS << P.Body->str(0) << "\n";
  }
  return OS.str();
}

//===----------------------------------------------------------------------===//
// Structural equality and statement counting
//===----------------------------------------------------------------------===//

namespace {

bool paramsEqual(const std::vector<Param> &A, const std::vector<Param> &B) {
  if (A.size() != B.size())
    return false;
  for (size_t I = 0; I < A.size(); ++I)
    if (A[I].Name != B[I].Name || !Type::equal(A[I].Ty, B[I].Ty))
      return false;
  return true;
}

bool actionsEqual(const ActionDecl &A, const ActionDecl &B) {
  return A.Name == B.Name && A.Unique == B.Unique && A.ArgName == B.ArgName &&
         Type::equal(A.ArgTy, B.ArgTy) && A.StateName == B.StateName &&
         structurallyEqual(A.Apply, B.Apply) &&
         structurallyEqual(A.Returns, B.Returns) &&
         structurallyEqual(A.Enabled, B.Enabled) &&
         structurallyEqual(A.History, B.History) &&
         structurallyEqual(A.Pre, B.Pre);
}

} // namespace

bool commcsl::structurallyEqual(const Program &A, const Program &B) {
  if (A.Funcs.size() != B.Funcs.size() || A.Specs.size() != B.Specs.size() ||
      A.Procs.size() != B.Procs.size())
    return false;
  for (size_t I = 0; I < A.Funcs.size(); ++I) {
    const FuncDecl &F = A.Funcs[I], &G = B.Funcs[I];
    if (F.Name != G.Name || !paramsEqual(F.Params, G.Params) ||
        !Type::equal(F.RetTy, G.RetTy) || !structurallyEqual(F.Body, G.Body))
      return false;
  }
  for (size_t I = 0; I < A.Specs.size(); ++I) {
    const ResourceSpecDecl &S = A.Specs[I], &T = B.Specs[I];
    if (S.Name != T.Name || !Type::equal(S.StateTy, T.StateTy) ||
        S.AlphaParam != T.AlphaParam ||
        !structurallyEqual(S.Alpha, T.Alpha) ||
        !structurallyEqual(S.Inv, T.Inv) ||
        S.ScopeIntLo != T.ScopeIntLo || S.ScopeIntHi != T.ScopeIntHi ||
        S.ScopeCollectionBound != T.ScopeCollectionBound ||
        S.Actions.size() != T.Actions.size())
      return false;
    for (size_t J = 0; J < S.Actions.size(); ++J)
      if (!actionsEqual(S.Actions[J], T.Actions[J]))
        return false;
  }
  for (size_t I = 0; I < A.Procs.size(); ++I) {
    const ProcDecl &P = A.Procs[I], &Q = B.Procs[I];
    if (P.Name != Q.Name || !paramsEqual(P.Params, Q.Params) ||
        !paramsEqual(P.Returns, Q.Returns) ||
        !structurallyEqual(P.Requires, Q.Requires) ||
        !structurallyEqual(P.Ensures, Q.Ensures) ||
        !structurallyEqual(P.Body, Q.Body))
      return false;
  }
  return true;
}

unsigned commcsl::countStatements(const CommandRef &C) {
  if (!C)
    return 0;
  unsigned N = C->Kind == CmdKind::Block ? 0 : 1;
  for (const CommandRef &Child : C->Children)
    N += countStatements(Child);
  return N;
}

unsigned commcsl::countStatements(const Program &P) {
  unsigned N = 0;
  for (const ProcDecl &Proc : P.Procs)
    N += countStatements(Proc.Body);
  return N;
}
