//===-- lang/ExprEval.cpp - Concrete expression evaluation -----------------===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//

#include "lang/ExprEval.h"

#include "value/ValueOps.h"

#include <cassert>

using namespace commcsl;

inline ValueRef ExprEvaluator::evalLeaf(const Expr &E,
                                        const EvalEnv &Env) const {
  switch (E.Kind) {
  case ExprKind::IntLit:
    return ValueFactory::intV(E.IntVal);
  case ExprKind::BoolLit:
    return ValueFactory::boolV(E.BoolVal);
  case ExprKind::Var: {
    const EvalEnv::const_iterator B = Env.begin();
    uint32_t Hint = E.SlotHint.load(std::memory_order_relaxed);
    if (Hint < Env.size() && envKeyEq(B[Hint].first, E.Name))
      return B[Hint].second;
    break; // cold: unhinted lookup in eval()
  }
  default:
    break;
  }
  return eval(E, Env);
}

inline const ValueRef &ExprEvaluator::evalArg(const Expr &E,
                                              const EvalEnv &Env,
                                              ValueRef &Tmp) const {
  if (E.Kind == ExprKind::Var) {
    const EvalEnv::const_iterator B = Env.begin();
    uint32_t Hint = E.SlotHint.load(std::memory_order_relaxed);
    if (Hint < Env.size() && envKeyEq(B[Hint].first, E.Name))
      return B[Hint].second;
  }
  Tmp = eval(E, Env);
  return Tmp;
}

ValueRef ExprEvaluator::eval(const Expr &E, const EvalEnv &Env) const {
  switch (E.Kind) {
  case ExprKind::IntLit:
    return ValueFactory::intV(E.IntVal);
  case ExprKind::BoolLit:
    return ValueFactory::boolV(E.BoolVal);
  case ExprKind::StringLit:
    return ValueFactory::stringV(E.Name);
  case ExprKind::UnitLit:
    return ValueFactory::unit();
  case ExprKind::Var: {
    // Fast path: a Var node is almost always evaluated against environments
    // with the same layout (the same procedure's locals, the same spec
    // parameters), so the slot it resolved to last time is nearly always
    // right. The key check makes a stale hint harmless.
    const EvalEnv::const_iterator B = Env.begin();
    uint32_t Hint = E.SlotHint.load(std::memory_order_relaxed);
    if (Hint < Env.size() && envKeyEq(B[Hint].first, E.Name))
      return B[Hint].second;
    auto It = Env.find(E.Name);
    if (It != Env.end()) {
      E.SlotHint.store(static_cast<uint32_t>(It - B),
                       std::memory_order_relaxed);
      return It->second;
    }
    // Uninitialized variables evaluate to a default (total semantics).
    assert(E.Ty && "untyped variable without binding");
    return E.Ty->defaultValue();
  }
  case ExprKind::Unary: {
    ValueRef ATmp;
    const ValueRef &A = evalArg(*E.Args[0], Env, ATmp);
    switch (E.UOp) {
    case UnaryOp::Neg:
      return vops::neg(A);
    case UnaryOp::Not:
      return vops::logNot(A);
    }
    break;
  }
  case ExprKind::Binary: {
    // Short-circuit logical operators.
    if (E.BOp == BinaryOp::And) {
      ValueRef A = eval(*E.Args[0], Env);
      if (!A->getBool())
        return ValueFactory::boolV(false);
      return eval(*E.Args[1], Env);
    }
    if (E.BOp == BinaryOp::Or) {
      ValueRef A = eval(*E.Args[0], Env);
      if (A->getBool())
        return ValueFactory::boolV(true);
      return eval(*E.Args[1], Env);
    }
    if (E.BOp == BinaryOp::Implies) {
      ValueRef A = eval(*E.Args[0], Env);
      if (!A->getBool())
        return ValueFactory::boolV(true);
      return eval(*E.Args[1], Env);
    }
    ValueRef ATmp, BTmp;
    const ValueRef &A = evalArg(*E.Args[0], Env, ATmp);
    const ValueRef &B = evalArg(*E.Args[1], Env, BTmp);
    switch (E.BOp) {
    case BinaryOp::Add:
      return vops::add(A, B);
    case BinaryOp::Sub:
      return vops::sub(A, B);
    case BinaryOp::Mul:
      return vops::mul(A, B);
    case BinaryOp::Div:
      return vops::divT(A, B);
    case BinaryOp::Mod:
      return vops::modT(A, B);
    case BinaryOp::Eq:
      return vops::eq(A, B);
    case BinaryOp::Ne:
      return vops::ne(A, B);
    case BinaryOp::Lt:
      return vops::lt(A, B);
    case BinaryOp::Le:
      return vops::le(A, B);
    case BinaryOp::Gt:
      return vops::gt(A, B);
    case BinaryOp::Ge:
      return vops::ge(A, B);
    case BinaryOp::And:
    case BinaryOp::Or:
    case BinaryOp::Implies:
      break; // handled above
    }
    break;
  }
  case ExprKind::Builtin: {
    // Ite must short-circuit to stay total on the untaken branch.
    if (E.Builtin == BuiltinKind::Ite) {
      ValueRef C = eval(*E.Args[0], Env);
      return eval(C->getBool() ? *E.Args[1] : *E.Args[2], Env);
    }
    // Builtin arity is at most 3; borrow operands where possible and
    // evaluate the rest into a stack buffer.
    assert(E.Args.size() <= 3 && "unexpected builtin arity");
    ValueRef Tmps[3];
    const ValueRef *Args[3];
    for (size_t I = 0; I < E.Args.size(); ++I)
      Args[I] = &evalArg(*E.Args[I], Env, Tmps[I]);
    ValueRef R = applyBuiltinOp(E.Builtin, Args, E.Args.size(), E.Ty);
    if (E.Builtin == BuiltinKind::Declassify && DeclassifySink)
      DeclassifySink->push_back(R);
    return R;
  }
  case ExprKind::Call: {
    assert(Prog && "function call without program context");
    const FuncDecl *F = Prog->findFunc(E.Name);
    assert(F && "call to unknown function after type checking");
    EvalEnv Inner;
    assert(F->Params.size() == E.Args.size() && "arity mismatch");
    for (size_t I = 0; I < E.Args.size(); ++I)
      Inner[F->Params[I].Name] = evalLeaf(*E.Args[I], Env);
    return eval(*F->Body, Inner);
  }
  }
  assert(false && "unhandled expression kind");
  return ValueFactory::unit();
}

ValueRef commcsl::applyBuiltinOp(BuiltinKind Kind,
                                 const ValueRef *const *Args, size_t NumArgs,
                                 const TypeRef &ResultTy) {
  (void)NumArgs;
  auto DefaultResult = [&]() -> ValueRef {
    assert(ResultTy && "partial builtin needs a result type to totalize");
    return ResultTy->defaultValue();
  };
  switch (Kind) {
  case BuiltinKind::PairMk:
    return ValueFactory::pair((*Args[0]), (*Args[1]));
  case BuiltinKind::Fst:
    return vops::fst((*Args[0]));
  case BuiltinKind::Snd:
    return vops::snd((*Args[0]));
  case BuiltinKind::SeqEmpty:
    return ValueFactory::emptySeq();
  case BuiltinKind::SeqAppend:
    return vops::seqAppend((*Args[0]), (*Args[1]));
  case BuiltinKind::SeqConcat:
    return vops::seqConcat((*Args[0]), (*Args[1]));
  case BuiltinKind::SeqLen:
    return vops::seqLen((*Args[0]));
  case BuiltinKind::SeqAt: {
    std::optional<ValueRef> V = vops::seqAt((*Args[0]), (*Args[1])->getInt());
    return V ? std::move(*V) : DefaultResult();
  }
  case BuiltinKind::SeqHead: {
    std::optional<ValueRef> V = vops::seqHead((*Args[0]));
    return V ? std::move(*V) : DefaultResult();
  }
  case BuiltinKind::SeqLast: {
    std::optional<ValueRef> V = vops::seqLast((*Args[0]));
    return V ? std::move(*V) : DefaultResult();
  }
  case BuiltinKind::SeqTail:
    return vops::seqTail((*Args[0]));
  case BuiltinKind::SeqInit:
    return vops::seqInit((*Args[0]));
  case BuiltinKind::SeqContains:
    return vops::seqContains((*Args[0]), (*Args[1]));
  case BuiltinKind::SeqTake:
    return vops::seqTake((*Args[0]), (*Args[1]));
  case BuiltinKind::SeqDrop:
    return vops::seqDrop((*Args[0]), (*Args[1]));
  case BuiltinKind::SeqSort:
    return vops::seqSort((*Args[0]));
  case BuiltinKind::SeqToMs:
    return vops::seqToMultiset((*Args[0]));
  case BuiltinKind::SeqToSet:
    return vops::seqToSet((*Args[0]));
  case BuiltinKind::SeqSum:
    return vops::seqSum((*Args[0]));
  case BuiltinKind::SeqMean:
    return vops::seqMean((*Args[0]));
  case BuiltinKind::SetEmpty:
    return ValueFactory::emptySet();
  case BuiltinKind::SetAdd:
    return vops::setAdd((*Args[0]), (*Args[1]));
  case BuiltinKind::SetUnion:
    return vops::setUnion((*Args[0]), (*Args[1]));
  case BuiltinKind::SetInter:
    return vops::setInter((*Args[0]), (*Args[1]));
  case BuiltinKind::SetDiff:
    return vops::setDiff((*Args[0]), (*Args[1]));
  case BuiltinKind::SetMember:
    return vops::setMember((*Args[0]), (*Args[1]));
  case BuiltinKind::SetSize:
    return vops::setSize((*Args[0]));
  case BuiltinKind::SetToSeq:
    return vops::setToSeq((*Args[0]));
  case BuiltinKind::MsEmpty:
    return ValueFactory::emptyMultiset();
  case BuiltinKind::MsAdd:
    return vops::msAdd((*Args[0]), (*Args[1]));
  case BuiltinKind::MsUnion:
    return vops::msUnion((*Args[0]), (*Args[1]));
  case BuiltinKind::MsDiff:
    return vops::msDiff((*Args[0]), (*Args[1]));
  case BuiltinKind::MsCard:
    return vops::msCard((*Args[0]));
  case BuiltinKind::MsCount:
    return vops::msCount((*Args[0]), (*Args[1]));
  case BuiltinKind::MsToSeq:
    return vops::msToSeq((*Args[0]));
  case BuiltinKind::MapEmpty:
    return ValueFactory::emptyMap();
  case BuiltinKind::MapPut:
    return vops::mapPut((*Args[0]), (*Args[1]), (*Args[2]));
  case BuiltinKind::MapGet: {
    std::optional<ValueRef> V = vops::mapGet((*Args[0]), (*Args[1]));
    return V ? std::move(*V) : DefaultResult();
  }
  case BuiltinKind::MapGetOr:
    return vops::mapGetOr((*Args[0]), (*Args[1]), (*Args[2]));
  case BuiltinKind::MapHas:
    return vops::mapHas((*Args[0]), (*Args[1]));
  case BuiltinKind::MapRemove:
    return vops::mapRemove((*Args[0]), (*Args[1]));
  case BuiltinKind::MapDom:
    return vops::mapDom((*Args[0]));
  case BuiltinKind::MapValues:
    return vops::mapValuesMs((*Args[0]));
  case BuiltinKind::MapSize:
    return vops::mapSize((*Args[0]));
  case BuiltinKind::Ite:
    return (*Args[0])->getBool() ? (*Args[1]) : (*Args[2]);
  case BuiltinKind::Min:
    return vops::minV((*Args[0]), (*Args[1]));
  case BuiltinKind::Max:
    return vops::maxV((*Args[0]), (*Args[1]));
  case BuiltinKind::Abs:
    return vops::absV((*Args[0]));
  case BuiltinKind::Declassify:
    // Identity on values; the release is a property of the relational
    // semantics (the pair of runs), not of a single execution.
    return *Args[0];
  }
  assert(false && "unhandled builtin");
  return ValueFactory::unit();
}
