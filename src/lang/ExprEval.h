//===-- lang/ExprEval.h - Concrete expression evaluation --------*- C++ -*-===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Concrete evaluation of (type-checked) expressions over the pure value
/// domain. Evaluation is deterministic and total, matching the expression
/// semantics assumed by the paper (Sec. 3.1); partial builtins are totalized
/// with the default value of the annotated result type.
///
/// Used by the interpreter, the resource-specification runtime (actions and
/// abstraction functions are expressions), and the validity checker.
///
//===----------------------------------------------------------------------===//

#ifndef COMMCSL_LANG_EXPREVAL_H
#define COMMCSL_LANG_EXPREVAL_H

#include "lang/Expr.h"
#include "lang/Program.h"
#include "value/Value.h"

#include <string>
#include <utility>
#include <vector>

namespace commcsl {

/// String equality tuned for environment keys: identifiers are a few
/// characters, so after the length check an inline byte loop beats the
/// out-of-line memcmp call `std::string::operator==` compiles to.
inline bool envKeyEq(const std::string &A, const std::string &B) {
  size_t N = A.size();
  if (N != B.size())
    return false;
  const char *PA = A.data(), *PB = B.data();
  for (size_t I = 0; I < N; ++I)
    if (PA[I] != PB[I])
      return false;
  return true;
}

/// Variable environment for evaluation: a flat association array with
/// linear lookup and small-buffer storage. Environments are tiny (a
/// handful of locals or spec parameters), so a cache-contiguous scan beats
/// the pointer-chasing and per-insert allocation of the `std::map` it
/// replaced — variable lookup and environment construction sit on the
/// interpreter's innermost path. The first `InlineCap` bindings live
/// inside the object itself, so the common case (spec evaluation binds
/// one or two parameters per call) touches the heap not at all; larger
/// environments spill to a vector once and stay there.
/// The drop-in surface of the old map is preserved (`operator[]`, `find`,
/// `count`, iteration, copies, initializer lists); keys are unique,
/// iteration order is insertion order.
class EvalEnv {
public:
  using value_type = std::pair<std::string, ValueRef>;
  using iterator = value_type *;
  using const_iterator = const value_type *;

  EvalEnv() = default;
  EvalEnv(std::initializer_list<value_type> Init) {
    for (const value_type &E : Init)
      (*this)[E.first] = E.second;
  }

  /// Returns the binding for \p K, default-inserting a null value like the
  /// map it replaces.
  ValueRef &operator[](const std::string &K) {
    value_type *D = data();
    for (size_t I = 0; I < N; ++I)
      if (envKeyEq(D[I].first, K))
        return D[I].second;
    return pushBack(K);
  }

  iterator find(const std::string &K) {
    iterator E = end();
    for (iterator I = begin(); I != E; ++I)
      if (envKeyEq(I->first, K))
        return I;
    return E;
  }
  const_iterator find(const std::string &K) const {
    const_iterator E = end();
    for (const_iterator I = begin(); I != E; ++I)
      if (envKeyEq(I->first, K))
        return I;
    return E;
  }

  iterator begin() { return data(); }
  iterator end() { return data() + N; }
  const_iterator begin() const { return data(); }
  const_iterator end() const { return data() + N; }

  size_t count(const std::string &K) const { return find(K) != end() ? 1 : 0; }
  size_t size() const { return N; }
  bool empty() const { return N == 0; }

  /// operator[] with a caller-cached slot index: if `Idx` already names
  /// \p K's binding it is returned without scanning; otherwise the scan
  /// (or default-insert) runs and `Idx` is updated. Callers persist the
  /// index across evaluations of the same AST node, where the environment
  /// layout is almost always identical.
  ValueRef &slot(const std::string &K, uint32_t &Idx) {
    value_type *D = data();
    if (Idx < N && envKeyEq(D[Idx].first, K))
      return D[Idx].second;
    for (size_t I = 0; I < N; ++I)
      if (envKeyEq(D[I].first, K)) {
        Idx = static_cast<uint32_t>(I);
        return D[I].second;
      }
    Idx = static_cast<uint32_t>(N);
    return pushBack(K);
  }

  /// Drops every binding past the first \p M. Slot storage (including
  /// string capacity in the inline buffer) is retained for reuse; trimmed
  /// entries are unobservable through any accessor. Enables reusable
  /// scratch environments: bind the first M slots, truncate to M.
  void truncate(size_t M) {
    if (M >= N)
      return;
    if (!Overflow.empty())
      Overflow.resize(M);
    N = M;
  }

  /// Hinted find (no insertion), same index-caching contract as slot().
  const_iterator findHint(const std::string &K, uint32_t &Idx) const {
    const value_type *D = data();
    if (Idx < N && envKeyEq(D[Idx].first, K))
      return D + Idx;
    for (size_t I = 0; I < N; ++I)
      if (envKeyEq(D[I].first, K)) {
        Idx = static_cast<uint32_t>(I);
        return D + I;
      }
    return end();
  }

private:
  static constexpr size_t InlineCap = 4;

  value_type *data() {
    return Overflow.empty() ? InlineBuf : Overflow.data();
  }
  const value_type *data() const {
    return Overflow.empty() ? InlineBuf : Overflow.data();
  }

  ValueRef &pushBack(const std::string &K) {
    if (!Overflow.empty()) {
      Overflow.emplace_back(K, ValueRef());
      ++N;
      return Overflow.back().second;
    }
    if (N < InlineCap) {
      InlineBuf[N].first = K;
      InlineBuf[N].second = ValueRef();
      return InlineBuf[N++].second;
    }
    // Spill: move the inline bindings into the overflow vector, which
    // stays authoritative from here on.
    Overflow.reserve(InlineCap + 1);
    for (size_t I = 0; I < InlineCap; ++I)
      Overflow.push_back(std::move(InlineBuf[I]));
    Overflow.emplace_back(K, ValueRef());
    ++N;
    return Overflow.back().second;
  }

  value_type InlineBuf[InlineCap];
  std::vector<value_type> Overflow;
  size_t N = 0;
};

/// Evaluates expressions concretely. Holds a (possibly null) program pointer
/// to resolve user-defined pure function calls, which are evaluated by
/// binding their parameters (they are non-recursive by construction).
class ExprEvaluator {
public:
  explicit ExprEvaluator(const Program *Prog = nullptr) : Prog(Prog) {}

  /// Evaluates \p E in \p Env. \p E must be type-checked (the `Ty`
  /// annotations of partial builtins provide totalization defaults).
  /// Unbound variables evaluate to the default value of their type,
  /// matching the paper's total expression semantics.
  ValueRef eval(const Expr &E, const EvalEnv &Env) const;

  /// When non-null, every `declassify` evaluation appends the released
  /// value here in evaluation order. The interpreter points this at the
  /// run's release log; spec/validity evaluation leaves it null (the type
  /// checker keeps declassify out of those positions anyway).
  std::vector<ValueRef> *DeclassifySink = nullptr;

private:
  /// eval() specialized for operand position: handles the overwhelmingly
  /// common leaf operands (hinted variables and int/bool literals) inline
  /// and falls back to eval() for everything else, saving a recursive call
  /// per operand of the operator cases.
  ValueRef evalLeaf(const Expr &E, const EvalEnv &Env) const;

  /// Borrowing variant of evalLeaf: a hinted variable operand is returned
  /// as a reference to its environment slot — no refcount traffic at all —
  /// and anything else is evaluated into \p Tmp. The returned reference is
  /// valid until \p Env or \p Tmp changes; operators consume it before
  /// either can.
  const ValueRef &evalArg(const Expr &E, const EvalEnv &Env,
                          ValueRef &Tmp) const;

  const Program *Prog;
};

/// Applies a builtin operation to concrete argument values. Partial
/// builtins (`at`, `head`, `last`, `map_get`) are totalized with the
/// default value of \p ResultTy (which must be non-null for those).
/// `Ite` must not be passed here (it short-circuits at a higher level, but
/// with concrete arguments the caller can simply select).
///
/// The pointer-of-pointers form is the hot-path entry: the evaluator passes
/// stack buffers of borrowed argument refs (builtin arity is at most 3),
/// avoiding both a vector allocation and a refcount bump per argument.
ValueRef applyBuiltinOp(BuiltinKind Kind, const ValueRef *const *Args,
                        size_t NumArgs, const TypeRef &ResultTy);

inline ValueRef applyBuiltinOp(BuiltinKind Kind, const ValueRef *Args,
                               size_t NumArgs, const TypeRef &ResultTy) {
  const ValueRef *Ptrs[3];
  for (size_t I = 0; I < NumArgs; ++I)
    Ptrs[I] = &Args[I];
  return applyBuiltinOp(Kind, Ptrs, NumArgs, ResultTy);
}

inline ValueRef applyBuiltinOp(BuiltinKind Kind,
                               const std::vector<ValueRef> &Args,
                               const TypeRef &ResultTy) {
  return applyBuiltinOp(Kind, Args.data(), Args.size(), ResultTy);
}

} // namespace commcsl

#endif // COMMCSL_LANG_EXPREVAL_H
