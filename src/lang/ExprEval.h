//===-- lang/ExprEval.h - Concrete expression evaluation --------*- C++ -*-===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Concrete evaluation of (type-checked) expressions over the pure value
/// domain. Evaluation is deterministic and total, matching the expression
/// semantics assumed by the paper (Sec. 3.1); partial builtins are totalized
/// with the default value of the annotated result type.
///
/// Used by the interpreter, the resource-specification runtime (actions and
/// abstraction functions are expressions), and the validity checker.
///
//===----------------------------------------------------------------------===//

#ifndef COMMCSL_LANG_EXPREVAL_H
#define COMMCSL_LANG_EXPREVAL_H

#include "lang/Expr.h"
#include "lang/Program.h"
#include "value/Value.h"

#include <map>
#include <string>

namespace commcsl {

/// Variable environment for evaluation.
using EvalEnv = std::map<std::string, ValueRef>;

/// Evaluates expressions concretely. Holds a (possibly null) program pointer
/// to resolve user-defined pure function calls, which are evaluated by
/// binding their parameters (they are non-recursive by construction).
class ExprEvaluator {
public:
  explicit ExprEvaluator(const Program *Prog = nullptr) : Prog(Prog) {}

  /// Evaluates \p E in \p Env. \p E must be type-checked (the `Ty`
  /// annotations of partial builtins provide totalization defaults).
  /// Unbound variables evaluate to the default value of their type,
  /// matching the paper's total expression semantics.
  ValueRef eval(const Expr &E, const EvalEnv &Env) const;

private:
  const Program *Prog;
};

/// Applies a builtin operation to concrete argument values. Partial
/// builtins (`at`, `head`, `last`, `map_get`) are totalized with the
/// default value of \p ResultTy (which must be non-null for those).
/// `Ite` must not be passed here (it short-circuits at a higher level, but
/// with concrete arguments the caller can simply select).
ValueRef applyBuiltinOp(BuiltinKind Kind, const std::vector<ValueRef> &Args,
                        const TypeRef &ResultTy);

} // namespace commcsl

#endif // COMMCSL_LANG_EXPREVAL_H
