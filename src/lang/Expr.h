//===-- lang/Expr.h - Expression AST ----------------------------*- C++ -*-===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The expression AST of the surface language. Expressions are pure and
/// total; they are shared between program code, contracts, and resource
/// specifications (abstraction functions, action bodies, and preconditions
/// are all expressions, which is what lets us evaluate them both concretely
/// in the interpreter / validity checker and symbolically in the verifier).
///
//===----------------------------------------------------------------------===//

#ifndef COMMCSL_LANG_EXPR_H
#define COMMCSL_LANG_EXPR_H

#include "lang/Type.h"
#include "support/SourceLoc.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace commcsl {

class Expr;
using ExprRef = std::shared_ptr<Expr>;

/// Expression node discriminator.
enum class ExprKind : uint8_t {
  IntLit,
  BoolLit,
  StringLit,
  UnitLit,
  Var,
  Unary,
  Binary,
  Builtin, ///< data-structure / arithmetic builtin, see BuiltinKind
  Call,    ///< user-defined pure function (non-recursive, inlined)
};

enum class UnaryOp : uint8_t { Neg, Not };

enum class BinaryOp : uint8_t {
  Add,
  Sub,
  Mul,
  Div,
  Mod,
  Eq,
  Ne,
  Lt,
  Le,
  Gt,
  Ge,
  And,
  Or,
  Implies,
};

/// Builtin pure operations over the value domain. Each corresponds to a
/// `vops::` function; `SeqAt`, `MapGet`, `SeqHead`, `SeqLast` are totalized
/// with the default value of the result type.
enum class BuiltinKind : uint8_t {
  PairMk,
  Fst,
  Snd,
  SeqEmpty,
  SeqAppend,
  SeqConcat,
  SeqLen,
  SeqAt,
  SeqHead,
  SeqLast,
  SeqTail,
  SeqInit,
  SeqContains,
  SeqTake,
  SeqDrop,
  SeqSort,
  SeqToMs,
  SeqToSet,
  SeqSum,
  SeqMean,
  SetEmpty,
  SetAdd,
  SetUnion,
  SetInter,
  SetDiff,
  SetMember,
  SetSize,
  SetToSeq,
  MsEmpty,
  MsAdd,
  MsUnion,
  MsDiff,
  MsCard,
  MsCount,
  MsToSeq,
  MapEmpty,
  MapPut,
  MapGet,
  MapGetOr,
  MapHas,
  MapRemove,
  MapDom,
  MapValues,
  MapSize,
  Ite,
  Min,
  Max,
  Abs,
  Declassify, ///< `declassify e`: identity on values, relationally released
};

/// Returns the surface name of a builtin ("map_put", ...).
const char *builtinName(BuiltinKind Kind);

/// Resolves a surface name to a builtin, if any.
std::optional<BuiltinKind> builtinByName(const std::string &Name);

/// Number of arguments the builtin takes.
unsigned builtinArity(BuiltinKind Kind);

/// An expression node. A single-struct design (kind + payload fields) keeps
/// the AST compact and allows uniform traversal. The `Ty` annotation is set
/// by the type checker.
class Expr {
public:
  ExprKind Kind;
  SourceLoc Loc;
  TypeRef Ty; ///< Filled in by the type checker.

  // Payloads (validity depends on Kind).
  int64_t IntVal = 0;
  bool BoolVal = false;
  std::string Name;      ///< Var name; Call callee name; StringLit value.
  UnaryOp UOp = UnaryOp::Neg;
  BinaryOp BOp = BinaryOp::Add;
  BuiltinKind Builtin = BuiltinKind::PairMk;
  std::vector<ExprRef> Args;

  /// Var only: cached index of this variable's binding in the environment
  /// it was last evaluated against. Purely a performance hint — the
  /// evaluator validates it against the key before trusting it and falls
  /// back to a scan, so a stale value is never observable. Atomic (relaxed)
  /// because multiple interpreter instances evaluate the same shared AST
  /// from parallel worker threads.
  mutable std::atomic<uint32_t> SlotHint{0};

  explicit Expr(ExprKind Kind, SourceLoc Loc = SourceLoc())
      : Kind(Kind), Loc(Loc) {}

  //===--------------------------------------------------------------------===//
  // Factories
  //===--------------------------------------------------------------------===//

  static ExprRef intLit(int64_t V, SourceLoc Loc = SourceLoc());
  static ExprRef boolLit(bool V, SourceLoc Loc = SourceLoc());
  static ExprRef stringLit(std::string V, SourceLoc Loc = SourceLoc());
  static ExprRef unitLit(SourceLoc Loc = SourceLoc());
  static ExprRef var(std::string Name, SourceLoc Loc = SourceLoc());
  static ExprRef unary(UnaryOp Op, ExprRef A, SourceLoc Loc = SourceLoc());
  static ExprRef binary(BinaryOp Op, ExprRef A, ExprRef B,
                        SourceLoc Loc = SourceLoc());
  static ExprRef builtin(BuiltinKind Kind, std::vector<ExprRef> Args,
                         SourceLoc Loc = SourceLoc());
  static ExprRef call(std::string Callee, std::vector<ExprRef> Args,
                      SourceLoc Loc = SourceLoc());

  /// Renders the expression in surface syntax.
  std::string str() const;

  /// Collects the free variables of the expression into \p Out.
  void freeVars(std::vector<std::string> &Out) const;

  /// Structural clone (deep copy). The type annotation is preserved.
  ExprRef clone() const;

  /// Clone with variables substituted: every Var named by a key of \p Subst
  /// is replaced by a clone of the mapped expression.
  ExprRef
  substitute(const std::vector<std::pair<std::string, ExprRef>> &Subst) const;
};

/// Surface rendering of operators, used by the printer and diagnostics.
const char *unaryOpName(UnaryOp Op);
const char *binaryOpName(BinaryOp Op);

/// Structural equality of expression trees, ignoring source locations and
/// type annotations. Null pointers are equal only to null pointers. Used by
/// the printer round-trip property (parse(print(parse(s))) must equal
/// parse(s)) and by the fuzz shrinker to detect no-op reductions.
bool structurallyEqual(const ExprRef &A, const ExprRef &B);

} // namespace commcsl

#endif // COMMCSL_LANG_EXPR_H
