//===-- lang/Command.h - Command AST ----------------------------*- C++ -*-===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The command AST: a superset of the paper's language (Fig. 6) with
/// procedures, n-ary parallel composition, share/unshare, and atomic blocks
/// that perform declared resource actions.
///
//===----------------------------------------------------------------------===//

#ifndef COMMCSL_LANG_COMMAND_H
#define COMMCSL_LANG_COMMAND_H

#include "lang/Contract.h"
#include "lang/Expr.h"

#include <atomic>
#include <memory>
#include <string>
#include <vector>

namespace commcsl {

class Command;
using CommandRef = std::shared_ptr<Command>;

/// Command node discriminator. See the factories below for payloads.
enum class CmdKind : uint8_t {
  Skip,
  VarDecl,   ///< var x: T := e;
  Assign,    ///< x := e;
  HeapRead,  ///< x := [e];
  HeapWrite, ///< [e1] := e2;
  Alloc,     ///< x := alloc(e);
  Block,     ///< { c1 ... cn }
  If,        ///< if (b) {..} else {..}
  While,     ///< while (b) invariant* {..}
  Par,       ///< par {..} and {..} and ...
  CallProc,  ///< r1, .., rk := call p(e1, .., en);
  Share,     ///< share r: Spec := e;
  Unshare,   ///< x := unshare r;
  Atomic,    ///< atomic r {..}
  Perform,   ///< perform r.A(e);  or  x := perform r.A(e);
  ResVal,    ///< x := resval(r);   (only inside atomic; value is high)
  AssertGhost, ///< assert <conjuncts>;  (relational ghost assertion)
  Output,      ///< output e;  (emit to the public channel; e must be low)
};

/// A command node, single-struct design like Expr.
class Command {
public:
  CmdKind Kind;
  SourceLoc Loc;

  // Payloads (validity depends on Kind).
  std::string Var;           ///< target variable / resource handle name
  std::string Aux;           ///< spec name (Share), action name (Perform),
                             ///< callee (CallProc), resource (Atomic/Perform)
  TypeRef DeclTy;            ///< VarDecl type
  std::vector<ExprRef> Exprs;         ///< operands
  std::vector<CommandRef> Children;   ///< sub-commands
  std::vector<std::string> Rets;      ///< CallProc result targets
  std::vector<Contract> Invariants;   ///< While invariants
  Contract Asserted;                  ///< AssertGhost conjuncts

  /// Cached environment slot indices of `Var` (assignment target) and
  /// `Aux` (resource handle) from the last execution of this node, same
  /// contract as Expr::SlotHint: validated before use, atomic because the
  /// shared AST is executed from parallel worker threads.
  mutable std::atomic<uint32_t> VarSlotHint{0};
  mutable std::atomic<uint32_t> AuxSlotHint{0};

  explicit Command(CmdKind Kind, SourceLoc Loc = SourceLoc())
      : Kind(Kind), Loc(Loc) {}

  //===--------------------------------------------------------------------===//
  // Factories
  //===--------------------------------------------------------------------===//

  static CommandRef skip(SourceLoc Loc = SourceLoc());
  static CommandRef varDecl(std::string Name, TypeRef Ty, ExprRef Init,
                            SourceLoc Loc = SourceLoc());
  static CommandRef assign(std::string Name, ExprRef E,
                           SourceLoc Loc = SourceLoc());
  static CommandRef heapRead(std::string Name, ExprRef Addr,
                             SourceLoc Loc = SourceLoc());
  static CommandRef heapWrite(ExprRef Addr, ExprRef Val,
                              SourceLoc Loc = SourceLoc());
  static CommandRef alloc(std::string Name, ExprRef Init,
                          SourceLoc Loc = SourceLoc());
  static CommandRef block(std::vector<CommandRef> Cmds,
                          SourceLoc Loc = SourceLoc());
  static CommandRef ifCmd(ExprRef Cond, CommandRef Then, CommandRef Else,
                          SourceLoc Loc = SourceLoc());
  static CommandRef whileCmd(ExprRef Cond, std::vector<Contract> Invariants,
                             CommandRef Body, SourceLoc Loc = SourceLoc());
  static CommandRef par(std::vector<CommandRef> Branches,
                        SourceLoc Loc = SourceLoc());
  static CommandRef callProc(std::string Callee, std::vector<ExprRef> Args,
                             std::vector<std::string> Rets,
                             SourceLoc Loc = SourceLoc());
  static CommandRef share(std::string ResVar, std::string SpecName,
                          ExprRef Init, SourceLoc Loc = SourceLoc());
  static CommandRef unshare(std::string TargetVar, std::string ResVar,
                            SourceLoc Loc = SourceLoc());
  /// \p WhenAction optionally names an action of the resource's spec whose
  /// `enabled` condition gates entry to the block (the paper's
  /// `atomic c when e`); empty means unconditional.
  static CommandRef atomic(std::string ResVar, CommandRef Body,
                           std::string WhenAction = "",
                           SourceLoc Loc = SourceLoc());
  static CommandRef perform(std::string TargetVar, std::string ResVar,
                            std::string Action, ExprRef Arg,
                            SourceLoc Loc = SourceLoc());
  static CommandRef resVal(std::string TargetVar, std::string ResVar,
                           SourceLoc Loc = SourceLoc());
  static CommandRef assertGhost(Contract Conjuncts,
                                SourceLoc Loc = SourceLoc());
  static CommandRef output(ExprRef E, SourceLoc Loc = SourceLoc());

  /// Variables modified by this command (the paper's mod(c)): assignment
  /// targets, declared variables, call result targets.
  void modifiedVars(std::vector<std::string> &Out) const;

  /// All variables read by this command (in expressions and conditions).
  void readVars(std::vector<std::string> &Out) const;

  /// Renders the command in surface syntax with \p Indent leading spaces.
  std::string str(unsigned Indent = 0) const;

  /// Structural clone (deep copy of expressions, children, and contracts).
  /// Type annotations inside expressions are preserved.
  CommandRef clone() const;
};

/// Structural equality of command trees, ignoring source locations and type
/// annotations. Null pointers are equal only to null pointers.
bool structurallyEqual(const CommandRef &A, const CommandRef &B);

} // namespace commcsl

#endif // COMMCSL_LANG_COMMAND_H
