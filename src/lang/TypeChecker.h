//===-- lang/TypeChecker.h - Type checking of surface programs --*- C++ -*-===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Type checker for surface programs. Annotates every expression with its
/// type (`Expr::Ty`), resolves names, enforces the structural rules the
/// verifier relies on (parameters are immutable, `perform`/`resval` appear
/// only inside `atomic` blocks of the matching resource, contracts bind
/// spec variables before use), and totalizes partial builtins by recording
/// result types.
///
//===----------------------------------------------------------------------===//

#ifndef COMMCSL_LANG_TYPECHECKER_H
#define COMMCSL_LANG_TYPECHECKER_H

#include "lang/Program.h"
#include "support/Diagnostics.h"

#include <map>
#include <string>
#include <vector>

namespace commcsl {

/// Checks a parsed program. On success, every expression in the program is
/// annotated with its type. Errors are reported to the diagnostic engine.
class TypeChecker {
public:
  TypeChecker(Program &Prog, DiagnosticEngine &Diags)
      : Prog(Prog), Diags(Diags) {}

  /// Runs all checks; returns true when no errors were reported.
  bool check();

private:
  // Scope management ------------------------------------------------------
  void pushScope() { Scopes.emplace_back(); }
  void popScope() { Scopes.pop_back(); }
  bool declare(const std::string &Name, TypeRef Ty, SourceLoc Loc);
  TypeRef lookup(const std::string &Name) const;

  // Declaration checking --------------------------------------------------
  bool checkTopLevelNames();
  void checkFunc(FuncDecl &F, size_t Index);
  void checkSpec(ResourceSpecDecl &S);
  void checkProc(ProcDecl &P);

  // Expression checking ---------------------------------------------------
  /// Infers/checks the type of \p E. \p Expected may be null (pure
  /// inference). Returns the resulting type or null on error.
  TypeRef checkExpr(const ExprRef &E, const TypeRef &Expected);
  TypeRef checkBuiltin(const ExprRef &E, const TypeRef &Expected);

  // Contract checking -----------------------------------------------------
  /// Checks a contract's atoms. Guard atoms bind their spec variables for
  /// the remainder of the contract. \p AllowGuards gates guard/allpre atoms
  /// (action preconditions only allow Low/Bool).
  void checkContract(Contract &C, bool AllowGuards);

  /// Resolves a contract atom's resource variable to its spec; null + error
  /// if it is not a resource-typed variable in scope.
  const ResourceSpecDecl *resolveResource(const ContractAtom &A);

  // Command checking ------------------------------------------------------
  struct CmdCtx {
    bool InAtomic = false;
    std::string AtomicRes;
  };
  void checkCommand(const CommandRef &C, CmdCtx Ctx);

  // Helpers ----------------------------------------------------------------
  void error(DiagCode Code, SourceLoc Loc, const std::string &Msg) {
    Diags.error(Code, Loc, Msg);
  }
  bool expectType(const TypeRef &Actual, const TypeRef &Expected,
                  SourceLoc Loc, const char *Context);

  Program &Prog;
  DiagnosticEngine &Diags;
  std::vector<std::map<std::string, TypeRef>> Scopes;
  size_t NumCheckedFuncs = 0; ///< for enforcing non-recursive functions
  /// True only while checking command-position expressions of a procedure
  /// body; `declassify` is rejected everywhere else (specs, contracts,
  /// functions, invariants).
  bool AllowDeclassify = false;
};

} // namespace commcsl

#endif // COMMCSL_LANG_TYPECHECKER_H
