//===-- lang/Program.h - Top-level program structure ------------*- C++ -*-===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Top-level declarations of a surface program: pure functions, resource
/// specifications (Sec. 2.4 / 3.2: abstraction function, shared and unique
/// actions with relational preconditions), and procedures with relational
/// contracts.
///
//===----------------------------------------------------------------------===//

#ifndef COMMCSL_LANG_PROGRAM_H
#define COMMCSL_LANG_PROGRAM_H

#include "lang/Command.h"
#include "lang/Contract.h"

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace commcsl {

/// A typed formal parameter / return variable.
struct Param {
  std::string Name;
  TypeRef Ty;
  SourceLoc Loc;
};

/// A user-defined pure, non-recursive function, inlined at use sites.
struct FuncDecl {
  std::string Name;
  std::vector<Param> Params;
  TypeRef RetTy;
  ExprRef Body;
  SourceLoc Loc;
};

/// A declared action of a resource specification. `Apply` is the action
/// function f_a(v, arg); `Returns` optionally describes a value handed back
/// to the performing thread, evaluated on the pre-state (used to model
/// consuming from a queue). `Pre` is the *relational* precondition over the
/// argument: `low(e)` atoms relate both executions' arguments; boolean atoms
/// must hold of the argument in each execution separately.
struct ActionDecl {
  std::string Name;
  bool Unique = false;
  std::string ArgName;
  TypeRef ArgTy;
  std::string StateName; ///< name binding the state value inside Apply.
  ExprRef Apply;         ///< f_a: expression over {StateName, ArgName}.
  ExprRef Returns;       ///< optional; over {StateName, ArgName}; may be null.
  Contract Pre;          ///< atoms over ArgName only (Low / Bool).

  /// Optional enabledness condition over {StateName}: a thread executing
  /// `atomic r when A {..}` blocks until this holds (the paper's
  /// `atomic c when e`, App. D). Null means always enabled.
  ExprRef Enabled;

  /// Optional (unique actions with Returns only) return-history function
  /// over {StateName}: the sequence of values this action has returned so
  /// far, as a function of the current state. Checked for coherence by the
  /// validity checker; lets the verifier recover the low-ness of recorded
  /// returns from the final state's abstraction at unshare (this is what
  /// makes the paper's Pipeline example work retroactively).
  ExprRef History;

  SourceLoc Loc;
};

/// A resource specification: state type, abstraction function alpha, and the
/// legal actions (Fig. 4). Scope hints bound the validity checker's
/// enumeration domains.
struct ResourceSpecDecl {
  std::string Name;
  TypeRef StateTy;
  std::string AlphaParam;
  ExprRef Alpha;

  /// Optional well-formedness invariant over reachable states (bound to
  /// AlphaParam). Not used for the Def. 3.1 commutativity check — that must
  /// hold on all states, including the "impossible" intermediate states of
  /// permuted schedules (App. D) — but it filters the start states of the
  /// history-coherence simulation and is itself checked to be preserved by
  /// enabled actions and to hold of shared initial values.
  ExprRef Inv;

  std::vector<ActionDecl> Actions;
  // Small-scope bounds for the Def. 3.1 validity check.
  int64_t ScopeIntLo = -2;
  int64_t ScopeIntHi = 2;
  unsigned ScopeCollectionBound = 3;
  SourceLoc Loc;

  const ActionDecl *findAction(const std::string &ActionName) const {
    for (const ActionDecl &A : Actions)
      if (A.Name == ActionName)
        return &A;
    return nullptr;
  }
};

/// A procedure with relational contracts.
struct ProcDecl {
  std::string Name;
  std::vector<Param> Params;
  std::vector<Param> Returns;
  Contract Requires;
  Contract Ensures;
  CommandRef Body;
  SourceLoc Loc;

  const Param *findParam(const std::string &Name_) const {
    for (const Param &P : Params)
      if (P.Name == Name_)
        return &P;
    return nullptr;
  }

  const Param *findReturn(const std::string &Name_) const {
    for (const Param &P : Returns)
      if (P.Name == Name_)
        return &P;
    return nullptr;
  }
};

/// A parsed surface program.
struct Program {
  std::vector<FuncDecl> Funcs;
  std::vector<ResourceSpecDecl> Specs;
  std::vector<ProcDecl> Procs;

  const FuncDecl *findFunc(const std::string &Name) const {
    for (const FuncDecl &F : Funcs)
      if (F.Name == Name)
        return &F;
    return nullptr;
  }

  const ResourceSpecDecl *findSpec(const std::string &Name) const {
    for (const ResourceSpecDecl &S : Specs)
      if (S.Name == Name)
        return &S;
    return nullptr;
  }

  const ProcDecl *findProc(const std::string &Name) const {
    for (const ProcDecl &P : Procs)
      if (P.Name == Name)
        return &P;
    return nullptr;
  }

  /// Renders the whole program in surface syntax.
  std::string str() const;
};

/// Structural equality of whole programs: same declarations in the same
/// order, with structurally equal types, expressions, contracts, and
/// bodies. Source locations and type-checker annotations are ignored, so
/// `structurallyEqual(parse(print(P)), P)` is the printer's correctness
/// property.
bool structurallyEqual(const Program &A, const Program &B);

/// Number of executable statements in the program: every command node
/// except pure `Block` containers. The shrinker reports its progress in
/// this measure.
unsigned countStatements(const Program &P);
unsigned countStatements(const CommandRef &C);

} // namespace commcsl

#endif // COMMCSL_LANG_PROGRAM_H
