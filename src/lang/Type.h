//===-- lang/Type.h - Surface-language types --------------------*- C++ -*-===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Types of the surface language. They mirror the pure value domain: `int`,
/// `bool`, `unit`, `string`, `pair<A,B>`, `seq<T>`, `set<T>`, `mset<T>`, and
/// `map<K,V>`. Types are immutable and shared.
///
//===----------------------------------------------------------------------===//

#ifndef COMMCSL_LANG_TYPE_H
#define COMMCSL_LANG_TYPE_H

#include "value/Domain.h"
#include "value/Value.h"

#include <memory>
#include <string>
#include <vector>

namespace commcsl {

class Type;
using TypeRef = std::shared_ptr<const Type>;

/// Discriminator for surface-language types.
enum class TypeKind : uint8_t {
  Unit,
  Int,
  Bool,
  String,
  Pair,
  Seq,
  Set,
  Multiset,
  Map,
  Resource, ///< handle to a shared resource governed by a named spec
};

/// An immutable surface-language type.
class Type {
public:
  static TypeRef unit();
  static TypeRef intTy();
  static TypeRef boolTy();
  static TypeRef stringTy();
  static TypeRef pair(TypeRef Fst, TypeRef Snd);
  static TypeRef seq(TypeRef Elem);
  static TypeRef set(TypeRef Elem);
  static TypeRef multiset(TypeRef Elem);
  static TypeRef map(TypeRef Key, TypeRef Val);
  static TypeRef resource(std::string SpecName);

  TypeKind kind() const { return Kind; }

  /// Spec name of a Resource type.
  const std::string &resourceSpec() const { return ResSpec; }

  bool isInt() const { return Kind == TypeKind::Int; }
  bool isBool() const { return Kind == TypeKind::Bool; }
  bool isCollection() const {
    return Kind == TypeKind::Seq || Kind == TypeKind::Set ||
           Kind == TypeKind::Multiset || Kind == TypeKind::Map;
  }

  /// First type argument (pair fst, element of seq/set/mset, key of map).
  const TypeRef &first() const { return Args[0]; }
  /// Second type argument (pair snd, value of map).
  const TypeRef &second() const { return Args[1]; }

  static bool equal(const TypeRef &A, const TypeRef &B);

  /// Renders the type in surface syntax, e.g. `map<int, pair<int, bool>>`.
  std::string str() const;

  /// The default value of this type, used to totalize partial operations
  /// (out-of-range indexing, lookup of an absent key).
  ValueRef defaultValue() const;

  /// Builds a small-scope enumeration domain for this type. Integer ranges
  /// and collection size bounds come from \p Scope.
  struct ScopeParams {
    int64_t IntLo = -2;
    int64_t IntHi = 2;
    unsigned CollectionBound = 3;
  };
  DomainRef toDomain(const ScopeParams &Scope) const;

private:
  explicit Type(TypeKind Kind) : Kind(Kind) {}

  TypeKind Kind;
  std::vector<TypeRef> Args;
  std::string ResSpec; ///< Resource: governing spec name.
};

} // namespace commcsl

#endif // COMMCSL_LANG_TYPE_H
