//===-- lang/Command.cpp - Command AST ------------------------------------===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//

#include "lang/Command.h"

#include <algorithm>
#include <sstream>

using namespace commcsl;

namespace {
void addUnique(std::vector<std::string> &Out, const std::string &Name) {
  if (std::find(Out.begin(), Out.end(), Name) == Out.end())
    Out.push_back(Name);
}
} // namespace

//===----------------------------------------------------------------------===//
// Factories
//===----------------------------------------------------------------------===//

CommandRef Command::skip(SourceLoc Loc) {
  return std::make_shared<Command>(CmdKind::Skip, Loc);
}

CommandRef Command::varDecl(std::string Name, TypeRef Ty, ExprRef Init,
                            SourceLoc Loc) {
  auto C = std::make_shared<Command>(CmdKind::VarDecl, Loc);
  C->Var = std::move(Name);
  C->DeclTy = std::move(Ty);
  if (Init)
    C->Exprs = {std::move(Init)};
  return C;
}

CommandRef Command::assign(std::string Name, ExprRef E, SourceLoc Loc) {
  auto C = std::make_shared<Command>(CmdKind::Assign, Loc);
  C->Var = std::move(Name);
  C->Exprs = {std::move(E)};
  return C;
}

CommandRef Command::heapRead(std::string Name, ExprRef Addr, SourceLoc Loc) {
  auto C = std::make_shared<Command>(CmdKind::HeapRead, Loc);
  C->Var = std::move(Name);
  C->Exprs = {std::move(Addr)};
  return C;
}

CommandRef Command::heapWrite(ExprRef Addr, ExprRef Val, SourceLoc Loc) {
  auto C = std::make_shared<Command>(CmdKind::HeapWrite, Loc);
  C->Exprs = {std::move(Addr), std::move(Val)};
  return C;
}

CommandRef Command::alloc(std::string Name, ExprRef Init, SourceLoc Loc) {
  auto C = std::make_shared<Command>(CmdKind::Alloc, Loc);
  C->Var = std::move(Name);
  C->Exprs = {std::move(Init)};
  return C;
}

CommandRef Command::block(std::vector<CommandRef> Cmds, SourceLoc Loc) {
  auto C = std::make_shared<Command>(CmdKind::Block, Loc);
  C->Children = std::move(Cmds);
  return C;
}

CommandRef Command::ifCmd(ExprRef Cond, CommandRef Then, CommandRef Else,
                          SourceLoc Loc) {
  auto C = std::make_shared<Command>(CmdKind::If, Loc);
  C->Exprs = {std::move(Cond)};
  C->Children = {std::move(Then),
                 Else ? std::move(Else) : Command::skip(Loc)};
  return C;
}

CommandRef Command::whileCmd(ExprRef Cond, std::vector<Contract> Invariants,
                             CommandRef Body, SourceLoc Loc) {
  auto C = std::make_shared<Command>(CmdKind::While, Loc);
  C->Exprs = {std::move(Cond)};
  C->Invariants = std::move(Invariants);
  C->Children = {std::move(Body)};
  return C;
}

CommandRef Command::par(std::vector<CommandRef> Branches, SourceLoc Loc) {
  assert(Branches.size() >= 2 && "par needs at least two branches");
  auto C = std::make_shared<Command>(CmdKind::Par, Loc);
  C->Children = std::move(Branches);
  return C;
}

CommandRef Command::callProc(std::string Callee, std::vector<ExprRef> Args,
                             std::vector<std::string> Rets, SourceLoc Loc) {
  auto C = std::make_shared<Command>(CmdKind::CallProc, Loc);
  C->Aux = std::move(Callee);
  C->Exprs = std::move(Args);
  C->Rets = std::move(Rets);
  return C;
}

CommandRef Command::share(std::string ResVar, std::string SpecName,
                          ExprRef Init, SourceLoc Loc) {
  auto C = std::make_shared<Command>(CmdKind::Share, Loc);
  C->Var = std::move(ResVar);
  C->Aux = std::move(SpecName);
  C->Exprs = {std::move(Init)};
  return C;
}

CommandRef Command::unshare(std::string TargetVar, std::string ResVar,
                            SourceLoc Loc) {
  auto C = std::make_shared<Command>(CmdKind::Unshare, Loc);
  C->Var = std::move(TargetVar);
  C->Aux = std::move(ResVar);
  return C;
}

CommandRef Command::atomic(std::string ResVar, CommandRef Body,
                           std::string WhenAction, SourceLoc Loc) {
  auto C = std::make_shared<Command>(CmdKind::Atomic, Loc);
  C->Aux = std::move(ResVar);
  C->Var = std::move(WhenAction);
  C->Children = {std::move(Body)};
  return C;
}

CommandRef Command::perform(std::string TargetVar, std::string ResVar,
                            std::string Action, ExprRef Arg, SourceLoc Loc) {
  auto C = std::make_shared<Command>(CmdKind::Perform, Loc);
  C->Var = std::move(TargetVar); // may be empty: no result binding
  C->Aux = std::move(ResVar);
  C->Rets = {std::move(Action)};
  C->Exprs = {std::move(Arg)};
  return C;
}

CommandRef Command::resVal(std::string TargetVar, std::string ResVar,
                           SourceLoc Loc) {
  auto C = std::make_shared<Command>(CmdKind::ResVal, Loc);
  C->Var = std::move(TargetVar);
  C->Aux = std::move(ResVar);
  return C;
}

CommandRef Command::output(ExprRef E, SourceLoc Loc) {
  auto C = std::make_shared<Command>(CmdKind::Output, Loc);
  C->Exprs = {std::move(E)};
  return C;
}

CommandRef Command::assertGhost(Contract Conjuncts, SourceLoc Loc) {
  auto C = std::make_shared<Command>(CmdKind::AssertGhost, Loc);
  C->Asserted = std::move(Conjuncts);
  return C;
}

//===----------------------------------------------------------------------===//
// Analyses
//===----------------------------------------------------------------------===//

void Command::modifiedVars(std::vector<std::string> &Out) const {
  switch (Kind) {
  case CmdKind::VarDecl:
  case CmdKind::Assign:
  case CmdKind::HeapRead:
  case CmdKind::Alloc:
  case CmdKind::Unshare:
  case CmdKind::ResVal:
    addUnique(Out, Var);
    break;
  case CmdKind::Perform:
    if (!Var.empty())
      addUnique(Out, Var);
    break;
  case CmdKind::CallProc:
    for (const std::string &R : Rets)
      addUnique(Out, R);
    break;
  case CmdKind::Share:
  case CmdKind::Skip:
  case CmdKind::HeapWrite:
  case CmdKind::AssertGhost:
  case CmdKind::Output:
    break;
  case CmdKind::Block:
  case CmdKind::If:
  case CmdKind::While:
  case CmdKind::Par:
  case CmdKind::Atomic:
    for (const CommandRef &Child : Children)
      Child->modifiedVars(Out);
    break;
  }
}

void Command::readVars(std::vector<std::string> &Out) const {
  for (const ExprRef &E : Exprs) {
    std::vector<std::string> Vars;
    E->freeVars(Vars);
    for (const std::string &V : Vars)
      addUnique(Out, V);
  }
  for (const CommandRef &Child : Children)
    Child->readVars(Out);
  for (const Contract &Inv : Invariants)
    for (const ContractAtom &A : Inv)
      if (A.E) {
        std::vector<std::string> Vars;
        A.E->freeVars(Vars);
        for (const std::string &V : Vars)
          addUnique(Out, V);
      }
}

//===----------------------------------------------------------------------===//
// Printing
//===----------------------------------------------------------------------===//

namespace {
std::string indentStr(unsigned Indent) { return std::string(Indent, ' '); }
} // namespace

std::string Command::str(unsigned Indent) const {
  std::ostringstream OS;
  std::string Pad = indentStr(Indent);
  switch (Kind) {
  case CmdKind::Skip:
    OS << Pad << "skip;\n";
    break;
  case CmdKind::VarDecl:
    OS << Pad << "var " << Var << ": " << DeclTy->str();
    if (!Exprs.empty())
      OS << " := " << Exprs[0]->str();
    OS << ";\n";
    break;
  case CmdKind::Assign:
    OS << Pad << Var << " := " << Exprs[0]->str() << ";\n";
    break;
  case CmdKind::HeapRead:
    OS << Pad << Var << " := [" << Exprs[0]->str() << "];\n";
    break;
  case CmdKind::HeapWrite:
    OS << Pad << "[" << Exprs[0]->str() << "] := " << Exprs[1]->str()
       << ";\n";
    break;
  case CmdKind::Alloc:
    OS << Pad << Var << " := alloc(" << Exprs[0]->str() << ");\n";
    break;
  case CmdKind::Block:
    OS << Pad << "{\n";
    for (const CommandRef &Child : Children)
      OS << Child->str(Indent + 2);
    OS << Pad << "}\n";
    break;
  case CmdKind::If:
    OS << Pad << "if (" << Exprs[0]->str() << ")\n"
       << Children[0]->str(Indent);
    if (Children[1]->Kind != CmdKind::Skip)
      OS << Pad << "else\n" << Children[1]->str(Indent);
    break;
  case CmdKind::While:
    OS << Pad << "while (" << Exprs[0]->str() << ")\n";
    for (const Contract &Inv : Invariants)
      OS << Pad << "  invariant " << contractStr(Inv) << ";\n";
    OS << Children[0]->str(Indent);
    break;
  case CmdKind::Par: {
    OS << Pad << "par\n";
    for (size_t I = 0; I < Children.size(); ++I) {
      if (I != 0)
        OS << Pad << "and\n";
      OS << Children[I]->str(Indent);
    }
    break;
  }
  case CmdKind::CallProc: {
    OS << Pad;
    for (size_t I = 0; I < Rets.size(); ++I)
      OS << (I ? ", " : "") << Rets[I];
    if (!Rets.empty())
      OS << " := ";
    OS << "call " << Aux << "(";
    for (size_t I = 0; I < Exprs.size(); ++I)
      OS << (I ? ", " : "") << Exprs[I]->str();
    OS << ");\n";
    break;
  }
  case CmdKind::Share:
    OS << Pad << "share " << Var << ": " << Aux << " := " << Exprs[0]->str()
       << ";\n";
    break;
  case CmdKind::Unshare:
    OS << Pad << Var << " := unshare " << Aux << ";\n";
    break;
  case CmdKind::Atomic:
    OS << Pad << "atomic " << Aux;
    if (!Var.empty())
      OS << " when " << Var;
    OS << "\n" << Children[0]->str(Indent);
    break;
  case CmdKind::Perform:
    OS << Pad;
    if (!Var.empty())
      OS << Var << " := ";
    OS << "perform " << Aux << "." << Rets[0] << "(" << Exprs[0]->str()
       << ");\n";
    break;
  case CmdKind::ResVal:
    OS << Pad << Var << " := resval(" << Aux << ");\n";
    break;
  case CmdKind::AssertGhost:
    OS << Pad << "assert " << contractStr(Asserted) << ";\n";
    break;
  case CmdKind::Output:
    OS << Pad << "output " << Exprs[0]->str() << ";\n";
    break;
  }
  return OS.str();
}

//===----------------------------------------------------------------------===//
// Clone and structural equality
//===----------------------------------------------------------------------===//

ContractAtom commcsl::cloneAtom(const ContractAtom &A) {
  ContractAtom C = A;
  C.E = A.E ? A.E->clone() : nullptr;
  C.Cond = A.Cond ? A.Cond->clone() : nullptr;
  return C;
}

Contract commcsl::cloneContract(const Contract &C) {
  Contract Out;
  Out.reserve(C.size());
  for (const ContractAtom &A : C)
    Out.push_back(cloneAtom(A));
  return Out;
}

bool commcsl::structurallyEqual(const ContractAtom &A, const ContractAtom &B) {
  return A.AtomKind == B.AtomKind && A.Level == B.Level &&
         structurallyEqual(A.E, B.E) &&
         structurallyEqual(A.Cond, B.Cond) && A.Res == B.Res &&
         A.Action == B.Action && A.FracNum == B.FracNum &&
         A.FracDen == B.FracDen && A.ArgVar == B.ArgVar &&
         A.ArgsEmpty == B.ArgsEmpty;
}

bool commcsl::structurallyEqual(const Contract &A, const Contract &B) {
  if (A.size() != B.size())
    return false;
  for (size_t I = 0; I < A.size(); ++I)
    if (!structurallyEqual(A[I], B[I]))
      return false;
  return true;
}

CommandRef Command::clone() const {
  auto C = std::make_shared<Command>(Kind, Loc);
  C->Var = Var;
  C->Aux = Aux;
  C->DeclTy = DeclTy;
  C->Rets = Rets;
  C->Exprs.reserve(Exprs.size());
  for (const ExprRef &E : Exprs)
    C->Exprs.push_back(E ? E->clone() : nullptr);
  C->Children.reserve(Children.size());
  for (const CommandRef &Child : Children)
    C->Children.push_back(Child ? Child->clone() : nullptr);
  C->Invariants.reserve(Invariants.size());
  for (const Contract &Inv : Invariants)
    C->Invariants.push_back(cloneContract(Inv));
  C->Asserted = cloneContract(Asserted);
  return C;
}

bool commcsl::structurallyEqual(const CommandRef &A, const CommandRef &B) {
  if (!A || !B)
    return !A && !B;
  if (A->Kind != B->Kind || A->Var != B->Var || A->Aux != B->Aux ||
      A->Rets != B->Rets)
    return false;
  if ((A->DeclTy != nullptr) != (B->DeclTy != nullptr) ||
      (A->DeclTy && !Type::equal(A->DeclTy, B->DeclTy)))
    return false;
  if (A->Exprs.size() != B->Exprs.size() ||
      A->Children.size() != B->Children.size() ||
      A->Invariants.size() != B->Invariants.size())
    return false;
  for (size_t I = 0; I < A->Exprs.size(); ++I)
    if (!structurallyEqual(A->Exprs[I], B->Exprs[I]))
      return false;
  for (size_t I = 0; I < A->Children.size(); ++I)
    if (!structurallyEqual(A->Children[I], B->Children[I]))
      return false;
  for (size_t I = 0; I < A->Invariants.size(); ++I)
    if (!structurallyEqual(A->Invariants[I], B->Invariants[I]))
      return false;
  return structurallyEqual(A->Asserted, B->Asserted);
}
