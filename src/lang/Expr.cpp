//===-- lang/Expr.cpp - Expression AST ------------------------------------===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//

#include "lang/Expr.h"

#include <algorithm>
#include <sstream>
#include <unordered_map>

using namespace commcsl;

//===----------------------------------------------------------------------===//
// Builtin table
//===----------------------------------------------------------------------===//

namespace {
struct BuiltinInfo {
  BuiltinKind Kind;
  const char *Name;
  unsigned Arity;
};

// Keep in sync with BuiltinKind.
const BuiltinInfo BuiltinTable[] = {
    {BuiltinKind::PairMk, "pair", 2},
    {BuiltinKind::Fst, "fst", 1},
    {BuiltinKind::Snd, "snd", 1},
    {BuiltinKind::SeqEmpty, "seq_empty", 0},
    {BuiltinKind::SeqAppend, "append", 2},
    {BuiltinKind::SeqConcat, "concat", 2},
    {BuiltinKind::SeqLen, "len", 1},
    {BuiltinKind::SeqAt, "at", 2},
    {BuiltinKind::SeqHead, "head", 1},
    {BuiltinKind::SeqLast, "last", 1},
    {BuiltinKind::SeqTail, "tail", 1},
    {BuiltinKind::SeqInit, "seq_init", 1},
    {BuiltinKind::SeqContains, "seq_contains", 2},
    {BuiltinKind::SeqTake, "take", 2},
    {BuiltinKind::SeqDrop, "drop", 2},
    {BuiltinKind::SeqSort, "sort", 1},
    {BuiltinKind::SeqToMs, "seq_to_mset", 1},
    {BuiltinKind::SeqToSet, "seq_to_set", 1},
    {BuiltinKind::SeqSum, "sum", 1},
    {BuiltinKind::SeqMean, "mean", 1},
    {BuiltinKind::SetEmpty, "set_empty", 0},
    {BuiltinKind::SetAdd, "set_add", 2},
    {BuiltinKind::SetUnion, "set_union", 2},
    {BuiltinKind::SetInter, "set_inter", 2},
    {BuiltinKind::SetDiff, "set_diff", 2},
    {BuiltinKind::SetMember, "set_member", 2},
    {BuiltinKind::SetSize, "set_size", 1},
    {BuiltinKind::SetToSeq, "set_to_seq", 1},
    {BuiltinKind::MsEmpty, "mset_empty", 0},
    {BuiltinKind::MsAdd, "mset_add", 2},
    {BuiltinKind::MsUnion, "mset_union", 2},
    {BuiltinKind::MsDiff, "mset_diff", 2},
    {BuiltinKind::MsCard, "card", 1},
    {BuiltinKind::MsCount, "mset_count", 2},
    {BuiltinKind::MsToSeq, "mset_to_seq", 1},
    {BuiltinKind::MapEmpty, "map_empty", 0},
    {BuiltinKind::MapPut, "map_put", 3},
    {BuiltinKind::MapGet, "map_get", 2},
    {BuiltinKind::MapGetOr, "map_get_or", 3},
    {BuiltinKind::MapHas, "map_has", 2},
    {BuiltinKind::MapRemove, "map_remove", 2},
    {BuiltinKind::MapDom, "dom", 1},
    {BuiltinKind::MapValues, "map_values", 1},
    {BuiltinKind::MapSize, "map_size", 1},
    {BuiltinKind::Ite, "ite", 3},
    {BuiltinKind::Min, "min", 2},
    {BuiltinKind::Max, "max", 2},
    {BuiltinKind::Abs, "abs", 1},
    {BuiltinKind::Declassify, "declassify", 1},
};

const BuiltinInfo &infoFor(BuiltinKind Kind) {
  for (const BuiltinInfo &I : BuiltinTable)
    if (I.Kind == Kind)
      return I;
  assert(false && "builtin missing from table");
  return BuiltinTable[0];
}
} // namespace

const char *commcsl::builtinName(BuiltinKind Kind) {
  return infoFor(Kind).Name;
}

std::optional<BuiltinKind> commcsl::builtinByName(const std::string &Name) {
  static const std::unordered_map<std::string, BuiltinKind> ByName = [] {
    std::unordered_map<std::string, BuiltinKind> M;
    for (const BuiltinInfo &I : BuiltinTable)
      M.emplace(I.Name, I.Kind);
    return M;
  }();
  auto It = ByName.find(Name);
  if (It == ByName.end())
    return std::nullopt;
  return It->second;
}

unsigned commcsl::builtinArity(BuiltinKind Kind) {
  return infoFor(Kind).Arity;
}

const char *commcsl::unaryOpName(UnaryOp Op) {
  switch (Op) {
  case UnaryOp::Neg:
    return "-";
  case UnaryOp::Not:
    return "!";
  }
  return "?";
}

const char *commcsl::binaryOpName(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::Add:
    return "+";
  case BinaryOp::Sub:
    return "-";
  case BinaryOp::Mul:
    return "*";
  case BinaryOp::Div:
    return "/";
  case BinaryOp::Mod:
    return "%";
  case BinaryOp::Eq:
    return "==";
  case BinaryOp::Ne:
    return "!=";
  case BinaryOp::Lt:
    return "<";
  case BinaryOp::Le:
    return "<=";
  case BinaryOp::Gt:
    return ">";
  case BinaryOp::Ge:
    return ">=";
  case BinaryOp::And:
    return "&&";
  case BinaryOp::Or:
    return "||";
  case BinaryOp::Implies:
    return "==>";
  }
  return "?";
}

//===----------------------------------------------------------------------===//
// Factories
//===----------------------------------------------------------------------===//

ExprRef Expr::intLit(int64_t V, SourceLoc Loc) {
  auto E = std::make_shared<Expr>(ExprKind::IntLit, Loc);
  E->IntVal = V;
  return E;
}

ExprRef Expr::boolLit(bool V, SourceLoc Loc) {
  auto E = std::make_shared<Expr>(ExprKind::BoolLit, Loc);
  E->BoolVal = V;
  return E;
}

ExprRef Expr::stringLit(std::string V, SourceLoc Loc) {
  auto E = std::make_shared<Expr>(ExprKind::StringLit, Loc);
  E->Name = std::move(V);
  return E;
}

ExprRef Expr::unitLit(SourceLoc Loc) {
  return std::make_shared<Expr>(ExprKind::UnitLit, Loc);
}

ExprRef Expr::var(std::string Name, SourceLoc Loc) {
  auto E = std::make_shared<Expr>(ExprKind::Var, Loc);
  E->Name = std::move(Name);
  return E;
}

ExprRef Expr::unary(UnaryOp Op, ExprRef A, SourceLoc Loc) {
  auto E = std::make_shared<Expr>(ExprKind::Unary, Loc);
  E->UOp = Op;
  E->Args = {std::move(A)};
  return E;
}

ExprRef Expr::binary(BinaryOp Op, ExprRef A, ExprRef B, SourceLoc Loc) {
  auto E = std::make_shared<Expr>(ExprKind::Binary, Loc);
  E->BOp = Op;
  E->Args = {std::move(A), std::move(B)};
  return E;
}

ExprRef Expr::builtin(BuiltinKind Kind, std::vector<ExprRef> Args,
                      SourceLoc Loc) {
  assert(Args.size() == builtinArity(Kind) && "builtin arity mismatch");
  auto E = std::make_shared<Expr>(ExprKind::Builtin, Loc);
  E->Builtin = Kind;
  E->Args = std::move(Args);
  return E;
}

ExprRef Expr::call(std::string Callee, std::vector<ExprRef> Args,
                   SourceLoc Loc) {
  auto E = std::make_shared<Expr>(ExprKind::Call, Loc);
  E->Name = std::move(Callee);
  E->Args = std::move(Args);
  return E;
}

//===----------------------------------------------------------------------===//
// Utilities
//===----------------------------------------------------------------------===//

std::string Expr::str() const {
  std::ostringstream OS;
  switch (Kind) {
  case ExprKind::IntLit:
    OS << IntVal;
    break;
  case ExprKind::BoolLit:
    OS << (BoolVal ? "true" : "false");
    break;
  case ExprKind::StringLit:
    OS << '"' << Name << '"';
    break;
  case ExprKind::UnitLit:
    OS << "unit";
    break;
  case ExprKind::Var:
    OS << Name;
    break;
  case ExprKind::Unary:
    OS << unaryOpName(UOp) << "(" << Args[0]->str() << ")";
    break;
  case ExprKind::Binary:
    OS << "(" << Args[0]->str() << " " << binaryOpName(BOp) << " "
       << Args[1]->str() << ")";
    break;
  case ExprKind::Builtin:
  case ExprKind::Call: {
    OS << (Kind == ExprKind::Builtin ? builtinName(Builtin) : Name.c_str())
       << "(";
    for (size_t I = 0; I < Args.size(); ++I)
      OS << (I ? ", " : "") << Args[I]->str();
    OS << ")";
    break;
  }
  }
  return OS.str();
}

void Expr::freeVars(std::vector<std::string> &Out) const {
  if (Kind == ExprKind::Var) {
    if (std::find(Out.begin(), Out.end(), Name) == Out.end())
      Out.push_back(Name);
    return;
  }
  for (const ExprRef &A : Args)
    A->freeVars(Out);
}

ExprRef Expr::clone() const {
  auto E = std::make_shared<Expr>(Kind, Loc);
  E->Ty = Ty;
  E->IntVal = IntVal;
  E->BoolVal = BoolVal;
  E->Name = Name;
  E->UOp = UOp;
  E->BOp = BOp;
  E->Builtin = Builtin;
  E->Args.reserve(Args.size());
  for (const ExprRef &A : Args)
    E->Args.push_back(A->clone());
  return E;
}

ExprRef Expr::substitute(
    const std::vector<std::pair<std::string, ExprRef>> &Subst) const {
  if (Kind == ExprKind::Var) {
    for (const auto &[Name_, Repl] : Subst)
      if (Name_ == Name)
        return Repl->clone();
    return clone();
  }
  auto E = std::make_shared<Expr>(Kind, Loc);
  E->Ty = Ty;
  E->IntVal = IntVal;
  E->BoolVal = BoolVal;
  E->Name = Name;
  E->UOp = UOp;
  E->BOp = BOp;
  E->Builtin = Builtin;
  E->Args.reserve(Args.size());
  for (const ExprRef &A : Args)
    E->Args.push_back(A->substitute(Subst));
  return E;
}

bool commcsl::structurallyEqual(const ExprRef &A, const ExprRef &B) {
  if (!A || !B)
    return !A && !B;
  if (A->Kind != B->Kind || A->Args.size() != B->Args.size())
    return false;
  switch (A->Kind) {
  case ExprKind::IntLit:
    if (A->IntVal != B->IntVal)
      return false;
    break;
  case ExprKind::BoolLit:
    if (A->BoolVal != B->BoolVal)
      return false;
    break;
  case ExprKind::StringLit:
  case ExprKind::Var:
  case ExprKind::Call:
    if (A->Name != B->Name)
      return false;
    break;
  case ExprKind::UnitLit:
    break;
  case ExprKind::Unary:
    if (A->UOp != B->UOp)
      return false;
    break;
  case ExprKind::Binary:
    if (A->BOp != B->BOp)
      return false;
    break;
  case ExprKind::Builtin:
    if (A->Builtin != B->Builtin)
      return false;
    break;
  }
  for (size_t I = 0; I < A->Args.size(); ++I)
    if (!structurallyEqual(A->Args[I], B->Args[I]))
      return false;
  return true;
}
