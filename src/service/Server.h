//===-- service/Server.h - ndjson-over-TCP verification daemon --*- C++ -*-===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `hyperviper serve` daemon: newline-delimited JSON over TCP on
/// 127.0.0.1. One JSON object per line in each direction; requests carry a
/// client-chosen `id` that the matching response echoes, so a client may
/// pipeline. Responses to concurrent requests on one connection come back
/// in completion order.
///
/// Request shape (verb selects the subsystem; see DESIGN §11 for the full
/// protocol table):
///
///   {"id":1,"verb":"verify","source":"...","name":"acct.hv",
///    "proc":"deposit","jobs":3,"triage":false,"no_validity":false}
///   {"id":2,"verb":"validity"|"analyze"|"ni", ...}
///   {"id":3,"verb":"fuzz","seeds":50,"base_seed":1}
///   {"id":4,"verb":"stats"}
///   {"id":5,"verb":"shutdown"}
///
/// Response shape:
///
///   {"id":1,"ok":true,"exit":0,"report":"acct.hv: verified\n",
///    "program_cache_hit":false,"cache":{"alpha_hits":...,...}}
///   {"id":9,"error":{"type":"busy","message":"..."}}
///
/// Error types: `bad-request` (unparseable line / missing field),
/// `unknown-verb`, `busy` (bounded work queue full — the backpressure
/// contract: the daemon never buffers unboundedly, it refuses), and
/// `shutting-down`.
///
/// The `report` string is byte-identical to the one-shot CLI's combined
/// stderr+stdout output for the same input, cold or warm cache, at any
/// `jobs`, under any interleaving of concurrent clients — the determinism
/// contract the E2E tests enforce. `stats` and `shutdown` are handled
/// inline (never queued), so health checks and shutdown cannot be starved
/// by a full queue.
///
/// Shutdown (the `shutdown` verb, or `Server::stop` from a signal watcher)
/// is graceful: stop accepting connections and queueing work, drain every
/// in-flight request, answer it, then return from `run()` so the caller
/// can flush trace/metrics sinks.
///
//===----------------------------------------------------------------------===//

#ifndef COMMCSL_SERVICE_SERVER_H
#define COMMCSL_SERVICE_SERVER_H

#include "service/Session.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace commcsl {

/// The serve daemon. Owns a listening socket, per-connection reader
/// threads, a bounded work queue, and the worker pool; delegates request
/// semantics to a `Session`.
class Server {
public:
  /// \p Port 0 binds an ephemeral port (read it back from `port()` — the
  /// tests' race-free pattern). \p Workers bounds how many requests are
  /// *in flight* (each still fans out over the shared ThreadPool
  /// internally). \p MaxQueue bounds the request queue; a line arriving
  /// while it is full is answered with a typed `busy` error immediately.
  explicit Server(SessionOptions SessionOpts, uint16_t Port = 0,
                  unsigned Workers = 2, size_t MaxQueue = 64);
  ~Server();

  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  /// Binds and listens on 127.0.0.1. Returns false (with `error()` set)
  /// when the port cannot be bound.
  bool start();

  /// The bound port (valid after `start()`; the actual port when 0 was
  /// requested).
  uint16_t port() const { return BoundPort; }

  /// Accepts and serves until `stop()` or a `shutdown` request. Returns
  /// after every in-flight request has been answered and every thread
  /// joined.
  void run();

  /// Thread-safe graceful-shutdown trigger (idempotent). `run()` drains
  /// and returns; this call does not wait for it.
  void stop();

  const std::string &error() const { return Error; }

  /// The session, exposed for in-process tests.
  Session &session() { return Sess; }

private:
  struct Connection;
  struct QueueItem {
    std::shared_ptr<Connection> Conn;
    std::string Line;
  };

  void acceptLoop();
  void readerLoop(std::shared_ptr<Connection> Conn);
  void workerLoop();
  void serveLine(const std::shared_ptr<Connection> &Conn,
                 const std::string &Line);
  std::string statsJson() const;

  Session Sess;
  uint16_t RequestedPort;
  unsigned Workers;
  size_t MaxQueue;

  int ListenFd = -1;
  uint16_t BoundPort = 0;
  std::string Error;

  std::atomic<bool> Stopping{false};
  mutable std::mutex QueueMu;
  std::condition_variable QueueCv;
  std::deque<QueueItem> Queue;
  size_t InFlight = 0; ///< items popped but not yet answered

  std::mutex ConnMu;
  std::vector<std::shared_ptr<Connection>> Connections;
  std::vector<std::thread> ReaderThreads;
};

} // namespace commcsl

#endif // COMMCSL_SERVICE_SERVER_H
