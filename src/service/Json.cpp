//===-- service/Json.cpp - Minimal JSON parsing and rendering --------------===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//

#include "service/Json.h"

#include "support/StringUtils.h" // jsonEscape

#include <cctype>
#include <charconv>
#include <cstdio>
#include <cstdlib>

using namespace commcsl;

JsonValue JsonValue::boolean(bool B) {
  JsonValue V;
  V.K = Kind::Bool;
  V.B = B;
  return V;
}

JsonValue JsonValue::number(double N) {
  JsonValue V;
  V.K = Kind::Number;
  V.Num = N;
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.17g", N);
  V.NumText = Buf;
  return V;
}

JsonValue JsonValue::number(uint64_t N) {
  JsonValue V;
  V.K = Kind::Number;
  V.Num = static_cast<double>(N);
  V.NumText = std::to_string(N);
  return V;
}

JsonValue JsonValue::numberFromToken(double N, std::string Token) {
  JsonValue V;
  V.K = Kind::Number;
  V.Num = N;
  V.NumText = std::move(Token);
  return V;
}

JsonValue JsonValue::string(std::string S) {
  JsonValue V;
  V.K = Kind::String;
  V.Str = std::move(S);
  return V;
}

JsonValue JsonValue::array() {
  JsonValue V;
  V.K = Kind::Array;
  return V;
}

JsonValue JsonValue::object() {
  JsonValue V;
  V.K = Kind::Object;
  return V;
}

const JsonValue *JsonValue::find(const std::string &Key) const {
  const JsonValue *Found = nullptr;
  for (const auto &[K2, V] : Obj)
    if (K2 == Key)
      Found = &V;
  return Found;
}

std::string JsonValue::getString(const std::string &Key,
                                 const std::string &Default) const {
  const JsonValue *V = find(Key);
  return V && V->K == Kind::String ? V->Str : Default;
}

bool JsonValue::getBool(const std::string &Key, bool Default) const {
  const JsonValue *V = find(Key);
  return V && V->K == Kind::Bool ? V->B : Default;
}

uint64_t JsonValue::getU64(const std::string &Key, uint64_t Default) const {
  const JsonValue *V = find(Key);
  if (!V || V->K != Kind::Number)
    return Default;
  std::optional<uint64_t> N = V->asU64();
  return N ? *N : Default;
}

std::optional<uint64_t> JsonValue::asU64() const {
  if (K != Kind::Number || NumText.empty() || NumText[0] == '-')
    return std::nullopt;
  uint64_t N = 0;
  auto [Ptr, Ec] = std::from_chars(NumText.data(),
                                   NumText.data() + NumText.size(), N);
  if (Ec != std::errc() || Ptr != NumText.data() + NumText.size())
    return std::nullopt;
  return N;
}

JsonValue &JsonValue::set(std::string Key, JsonValue V) {
  Obj.emplace_back(std::move(Key), std::move(V));
  return *this;
}

JsonValue &JsonValue::push(JsonValue V) {
  Arr.push_back(std::move(V));
  return *this;
}

JsonValue &JsonValue::setRaw(std::string Key, std::string RawJson) {
  JsonValue V;
  V.K = Kind::String;
  V.Str = std::move(RawJson);
  V.Raw = true;
  Obj.emplace_back(std::move(Key), std::move(V));
  return *this;
}

void JsonValue::dumpInto(std::string &Out) const {
  switch (K) {
  case Kind::Null:
    Out += "null";
    break;
  case Kind::Bool:
    Out += B ? "true" : "false";
    break;
  case Kind::Number:
    Out += NumText;
    break;
  case Kind::String:
    if (Raw) {
      Out += Str;
    } else {
      Out += '"';
      Out += jsonEscape(Str);
      Out += '"';
    }
    break;
  case Kind::Array: {
    Out += '[';
    bool First = true;
    for (const JsonValue &V : Arr) {
      if (!First)
        Out += ',';
      First = false;
      V.dumpInto(Out);
    }
    Out += ']';
    break;
  }
  case Kind::Object: {
    Out += '{';
    bool First = true;
    for (const auto &[Key, V] : Obj) {
      if (!First)
        Out += ',';
      First = false;
      Out += '"';
      Out += jsonEscape(Key);
      Out += "\":";
      V.dumpInto(Out);
    }
    Out += '}';
    break;
  }
  }
}

std::string JsonValue::dump() const {
  std::string Out;
  dumpInto(Out);
  return Out;
}

//===----------------------------------------------------------------------===//
// Parsing
//===----------------------------------------------------------------------===//

namespace {

struct Parser {
  const std::string &Text;
  size_t Pos = 0;
  std::string Error;

  explicit Parser(const std::string &Text) : Text(Text) {}

  bool fail(const std::string &Msg) {
    if (Error.empty())
      Error = Msg + " at offset " + std::to_string(Pos);
    return false;
  }

  void skipWs() {
    while (Pos < Text.size() &&
           (Text[Pos] == ' ' || Text[Pos] == '\t' || Text[Pos] == '\n' ||
            Text[Pos] == '\r'))
      ++Pos;
  }

  bool consume(char C) {
    if (Pos < Text.size() && Text[Pos] == C) {
      ++Pos;
      return true;
    }
    return fail(std::string("expected '") + C + "'");
  }

  bool literal(const char *Word) {
    size_t Len = std::char_traits<char>::length(Word);
    if (Text.compare(Pos, Len, Word) != 0)
      return fail(std::string("expected '") + Word + "'");
    Pos += Len;
    return true;
  }

  /// Appends \p Code as UTF-8.
  static void appendUtf8(std::string &Out, unsigned Code) {
    if (Code < 0x80) {
      Out += static_cast<char>(Code);
    } else if (Code < 0x800) {
      Out += static_cast<char>(0xC0 | (Code >> 6));
      Out += static_cast<char>(0x80 | (Code & 0x3F));
    } else if (Code < 0x10000) {
      Out += static_cast<char>(0xE0 | (Code >> 12));
      Out += static_cast<char>(0x80 | ((Code >> 6) & 0x3F));
      Out += static_cast<char>(0x80 | (Code & 0x3F));
    } else {
      Out += static_cast<char>(0xF0 | (Code >> 18));
      Out += static_cast<char>(0x80 | ((Code >> 12) & 0x3F));
      Out += static_cast<char>(0x80 | ((Code >> 6) & 0x3F));
      Out += static_cast<char>(0x80 | (Code & 0x3F));
    }
  }

  bool parseHex4(unsigned &Out) {
    if (Pos + 4 > Text.size())
      return fail("truncated \\u escape");
    Out = 0;
    for (int I = 0; I < 4; ++I) {
      char C = Text[Pos++];
      Out <<= 4;
      if (C >= '0' && C <= '9')
        Out |= static_cast<unsigned>(C - '0');
      else if (C >= 'a' && C <= 'f')
        Out |= static_cast<unsigned>(C - 'a' + 10);
      else if (C >= 'A' && C <= 'F')
        Out |= static_cast<unsigned>(C - 'A' + 10);
      else
        return fail("bad \\u escape digit");
    }
    return true;
  }

  bool parseString(std::string &Out) {
    if (!consume('"'))
      return false;
    while (Pos < Text.size()) {
      char C = Text[Pos++];
      if (C == '"')
        return true;
      if (C == '\\') {
        if (Pos >= Text.size())
          return fail("truncated escape");
        char E = Text[Pos++];
        switch (E) {
        case '"':
        case '\\':
        case '/':
          Out += E;
          break;
        case 'b':
          Out += '\b';
          break;
        case 'f':
          Out += '\f';
          break;
        case 'n':
          Out += '\n';
          break;
        case 'r':
          Out += '\r';
          break;
        case 't':
          Out += '\t';
          break;
        case 'u': {
          unsigned Code = 0;
          if (!parseHex4(Code))
            return false;
          // Surrogate pair: combine \uD800-\uDBFF with a following low
          // surrogate into one code point.
          if (Code >= 0xD800 && Code <= 0xDBFF &&
              Text.compare(Pos, 2, "\\u") == 0) {
            size_t Save = Pos;
            Pos += 2;
            unsigned Low = 0;
            if (!parseHex4(Low))
              return false;
            if (Low >= 0xDC00 && Low <= 0xDFFF)
              Code = 0x10000 + ((Code - 0xD800) << 10) + (Low - 0xDC00);
            else
              Pos = Save; // lone surrogate; keep it as-is
          }
          appendUtf8(Out, Code);
          break;
        }
        default:
          return fail("unknown escape");
        }
      } else {
        Out += C;
      }
    }
    return fail("unterminated string");
  }

  bool parseValue(JsonValue &Out);

  bool parseNumber(JsonValue &Out) {
    size_t Start = Pos;
    if (Pos < Text.size() && Text[Pos] == '-')
      ++Pos;
    while (Pos < Text.size() &&
           (std::isdigit(static_cast<unsigned char>(Text[Pos])) ||
            Text[Pos] == '.' || Text[Pos] == 'e' || Text[Pos] == 'E' ||
            Text[Pos] == '+' || Text[Pos] == '-'))
      ++Pos;
    std::string Token = Text.substr(Start, Pos - Start);
    if (Token.empty() || Token == "-")
      return fail("bad number");
    char *End = nullptr;
    double D = std::strtod(Token.c_str(), &End);
    if (End != Token.c_str() + Token.size())
      return fail("bad number");
    // Keep the exact source token so 64-bit integers round-trip.
    Out = JsonValue::numberFromToken(D, std::move(Token));
    return true;
  }
};

bool Parser::parseValue(JsonValue &Out) {
  skipWs();
  if (Pos >= Text.size())
    return fail("unexpected end of input");
  char C = Text[Pos];
  if (C == '{') {
    ++Pos;
    Out = JsonValue::object();
    skipWs();
    if (Pos < Text.size() && Text[Pos] == '}') {
      ++Pos;
      return true;
    }
    for (;;) {
      skipWs();
      std::string Key;
      if (!parseString(Key))
        return false;
      skipWs();
      if (!consume(':'))
        return false;
      JsonValue V;
      if (!parseValue(V))
        return false;
      Out.set(std::move(Key), std::move(V));
      skipWs();
      if (Pos < Text.size() && Text[Pos] == ',') {
        ++Pos;
        continue;
      }
      return consume('}');
    }
  }
  if (C == '[') {
    ++Pos;
    Out = JsonValue::array();
    skipWs();
    if (Pos < Text.size() && Text[Pos] == ']') {
      ++Pos;
      return true;
    }
    for (;;) {
      JsonValue V;
      if (!parseValue(V))
        return false;
      Out.push(std::move(V));
      skipWs();
      if (Pos < Text.size() && Text[Pos] == ',') {
        ++Pos;
        continue;
      }
      return consume(']');
    }
  }
  if (C == '"') {
    std::string S;
    if (!parseString(S))
      return false;
    Out = JsonValue::string(std::move(S));
    return true;
  }
  if (C == 't') {
    if (!literal("true"))
      return false;
    Out = JsonValue::boolean(true);
    return true;
  }
  if (C == 'f') {
    if (!literal("false"))
      return false;
    Out = JsonValue::boolean(false);
    return true;
  }
  if (C == 'n') {
    if (!literal("null"))
      return false;
    Out = JsonValue::null();
    return true;
  }
  return parseNumber(Out);
}

} // namespace

std::optional<JsonValue> JsonValue::parse(const std::string &Text,
                                          std::string *Error) {
  Parser P(Text);
  JsonValue V;
  if (!P.parseValue(V)) {
    if (Error)
      *Error = P.Error;
    return std::nullopt;
  }
  P.skipWs();
  if (P.Pos != Text.size()) {
    if (Error)
      *Error = "trailing characters at offset " + std::to_string(P.Pos);
    return std::nullopt;
  }
  return V;
}
