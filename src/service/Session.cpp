//===-- service/Session.cpp - Reusable verification service ----------------===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//

#include "service/Session.h"

#include "hyperviper/Analyze.h"
#include "support/trace/Metrics.h"
#include "support/trace/Trace.h"

#include <cstdio>

using namespace commcsl;

namespace {

/// Counts a service request in the process metrics registry. Request
/// arrival order depends on client scheduling, so everything here is
/// Varies.
void countRequest(const char *Verb, bool CacheHit) {
  MetricsRegistry &M = MetricsRegistry::global();
  M.counter("service.requests", Stability::Varies).add(1);
  M.counter(std::string("service.requests_") + Verb, Stability::Varies)
      .add(1);
  M.counter(CacheHit ? "service.program_cache_hits"
                     : "service.program_cache_misses",
            Stability::Varies)
      .add(1);
}

std::string formatNIBlock(const NIReport &Report, int &Exit) {
  char Buf[256];
  if (Report.secure()) {
    std::snprintf(Buf, sizeof(Buf),
                  "  empirical non-interference: no violation in %llu "
                  "runs (%llu pairs)\n",
                  static_cast<unsigned long long>(Report.Runs),
                  static_cast<unsigned long long>(Report.PairsCompared));
    return Buf;
  }
  std::snprintf(Buf, sizeof(Buf),
                "  empirical non-interference: VIOLATION after %llu runs\n",
                static_cast<unsigned long long>(Report.Runs));
  Exit = 1;
  return std::string(Buf) + Report.Violation->describe();
}

/// The request's cooperative budget, or null when unlimited. One budget
/// object spans every spec the request checks, so the caps are per
/// request, not per spec.
std::shared_ptr<CheckBudget> makeBudget(const ServiceRequest &Request) {
  if (Request.BudgetMs == 0 && Request.MaxSteps == 0)
    return nullptr;
  return std::make_shared<CheckBudget>(Request.BudgetMs, Request.MaxSteps);
}

/// Marks \p Resp timed out when \p Budget fired. Caches are deliberately
/// left alone: every entry a cut-short check wrote is a pure, correct
/// evaluation, so the warm-cache contract survives timeouts unchanged.
void noteTimeout(const std::shared_ptr<CheckBudget> &Budget,
                 ServiceResponse &Resp) {
  if (!Budget || !Budget->fired())
    return;
  Resp.TimedOut = true;
  Resp.Ok = false;
  Resp.Exit = 1;
  MetricsRegistry::global()
      .counter("service.timeouts", Stability::Varies)
      .add(1);
}

} // namespace

Session::Session(SessionOptions Options) : Options(Options) {}

ServiceResponse Session::handle(const ServiceRequest &Request) {
  switch (Request.V) {
  case ServiceRequest::Verb::Verify:
    return verify(Request);
  case ServiceRequest::Verb::Validity:
    return validity(Request);
  case ServiceRequest::Verb::Analyze:
    return analyze(Request);
  case ServiceRequest::Verb::NI:
    return ni(Request);
  case ServiceRequest::Verb::Fuzz:
    return fuzz(Request);
  }
  return {};
}

std::shared_ptr<Session::CachedProgram>
Session::obtain(const std::string &Source, const std::string &Name,
                bool &WasHit) {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    auto It = Programs.find(Source);
    if (It != Programs.end()) {
      It->second->LastUse = ++UseClock;
      ++CacheHits;
      WasHit = true;
      return It->second;
    }
  }

  // Parse outside the lock; a racing request for the same source may get
  // here too, in which case the first insert wins and the loser adopts it
  // (one canonical Program per source keeps the spec caches shared).
  auto Fresh = std::make_shared<CachedProgram>();
  {
    Driver D; // parse phase only; driver options are irrelevant to it
    TraceSpan Span("service", [&] { return "parse " + Name; });
    Fresh->Unit = D.parseAndCheck(Source, Name);
  }
  Fresh->SpecCaches =
      std::make_shared<SpecCacheRegistry>(Options.MemoMaxEntries);

  std::lock_guard<std::mutex> Lock(Mu);
  auto [It, Inserted] = Programs.emplace(Source, Fresh);
  It->second->LastUse = ++UseClock;
  if (!Inserted) {
    ++CacheHits;
    WasHit = true;
    return It->second;
  }
  ++CacheMisses;
  WasHit = false;
  // LRU bound: evict the stalest entry. In-flight requests holding the
  // evicted shared_ptr keep it alive until they finish; only the warm
  // lookup path loses it.
  while (Programs.size() > Options.MaxCachedPrograms) {
    auto Oldest = Programs.begin();
    for (auto I = Programs.begin(); I != Programs.end(); ++I)
      if (I->second->LastUse < Oldest->second->LastUse)
        Oldest = I;
    Programs.erase(Oldest);
  }
  return It->second;
}

DriverOptions
Session::driverOptions(const ServiceRequest &Request,
                       const std::shared_ptr<CachedProgram> &P) const {
  DriverOptions O;
  O.Jobs = Request.Jobs != 0 ? Request.Jobs : Options.Jobs;
  O.Triage = Request.Triage || Options.Triage;
  O.Verifier.SkipValidityCheck = Request.NoValidity;
  O.Verifier.EmitCert = Request.EmitCert;
  O.SpecCaches = P->SpecCaches;
  return O;
}

ServiceResponse Session::verify(const ServiceRequest &Request) {
  ServiceResponse Resp;
  std::shared_ptr<CachedProgram> P =
      obtain(Request.Source, Request.Name, Resp.ProgramCacheHit);
  countRequest("verify", Resp.ProgramCacheHit);
  {
    std::lock_guard<std::mutex> Lock(Mu);
    ++Requests;
  }

  CacheStats Before = P->SpecCaches->totals();
  std::shared_ptr<CheckBudget> Budget = makeBudget(Request);
  DriverOptions DO = driverOptions(Request, P);
  DO.Verifier.Validity.Budget = Budget;
  Driver D(DO);
  ParsedUnit Unit = P->Unit; // relabel under the request's name
  Unit.Name = Request.Name;
  DriverResult R = D.verifyParsed(Unit);

  // Byte-for-byte the one-shot CLI's output for this file: the stderr
  // diagnostics block (printed only on rejection), the stdout verdict
  // line, then the optional NI block.
  if (!R.Verified)
    Resp.Report += R.Diags.str(Request.Name);
  Resp.Report += Request.Name + ": " +
                 (R.Verified ? "verified" : "REJECTED") + "\n";
  Resp.Ok = R.Verified;
  Resp.Exit = R.Verified ? 0 : 1;
  Resp.Cert = R.Cert;

  if (!Request.Proc.empty() && R.ParseOk) {
    NIReport Report = D.runEmpirical(R, Request.Proc);
    Resp.Report += formatNIBlock(Report, Resp.Exit);
    Resp.Ok = Resp.Ok && Report.secure();
  }

  Resp.Cache = P->SpecCaches->totals() - Before;
  noteTimeout(Budget, Resp);
  return Resp;
}

ServiceResponse Session::validity(const ServiceRequest &Request) {
  ServiceResponse Resp;
  std::shared_ptr<CachedProgram> P =
      obtain(Request.Source, Request.Name, Resp.ProgramCacheHit);
  countRequest("validity", Resp.ProgramCacheHit);
  {
    std::lock_guard<std::mutex> Lock(Mu);
    ++Requests;
  }

  if (!P->Unit.Ok) {
    Resp.Report = P->Unit.Diags.str(Request.Name) + Request.Name +
                  ": REJECTED\n";
    Resp.Ok = false;
    Resp.Exit = 1;
    return Resp;
  }

  CacheStats Before = P->SpecCaches->totals();
  std::shared_ptr<CheckBudget> Budget = makeBudget(Request);
  VerifierConfig VC;
  VC.Validity.Jobs = Request.Jobs != 0 ? Request.Jobs : Options.Jobs;
  VC.Validity.Budget = Budget;
  VC.SpecCaches = P->SpecCaches;
  DiagnosticEngine Diags;
  Verifier V(*P->Unit.Prog, Diags, VC);
  std::string Lines;
  bool AllValid = true;
  for (const ResourceSpecDecl &Spec : P->Unit.Prog->Specs) {
    // A fired budget stops the walk; specs not reached are simply not
    // reported (the whole response becomes a typed timeout error anyway).
    if (Budget && Budget->fired())
      break;
    bool Ok = V.verifySpec(Spec);
    AllValid &= Ok;
    Lines += "spec " + Spec.Name + ": " + (Ok ? "valid" : "INVALID") + "\n";
  }
  if (!AllValid)
    Resp.Report += Diags.str(Request.Name);
  Resp.Report += Lines;
  Resp.Ok = AllValid;
  Resp.Exit = AllValid ? 0 : 1;
  Resp.Cache = P->SpecCaches->totals() - Before;
  noteTimeout(Budget, Resp);
  return Resp;
}

ServiceResponse Session::analyze(const ServiceRequest &Request) {
  ServiceResponse Resp;
  countRequest("analyze", false);
  {
    std::lock_guard<std::mutex> Lock(Mu);
    ++Requests;
  }
  AnalyzeResult AR;
  AR.Files.push_back(analyzeSourceBlock(Request.Source, Request.Name));
  Resp.Report = AR.str();
  Resp.Ok = AR.Files.front().Verdict == "provably-low";
  Resp.Exit = 0; // the CLI's analyze verb exits 0 outside --check mode
  return Resp;
}

ServiceResponse Session::ni(const ServiceRequest &Request) {
  ServiceResponse Resp;
  std::shared_ptr<CachedProgram> P =
      obtain(Request.Source, Request.Name, Resp.ProgramCacheHit);
  countRequest("ni", Resp.ProgramCacheHit);
  {
    std::lock_guard<std::mutex> Lock(Mu);
    ++Requests;
  }

  if (!P->Unit.Ok) {
    Resp.Report = P->Unit.Diags.str(Request.Name) + Request.Name +
                  ": REJECTED\n";
    Resp.Ok = false;
    Resp.Exit = 1;
    return Resp;
  }

  CacheStats Before = P->SpecCaches->totals();
  NIConfig Config;
  Config.Jobs = Request.Jobs != 0 ? Request.Jobs : Options.Jobs;
  Config.SharedSpecCaches = P->SpecCaches;
  NonInterferenceHarness Harness(*P->Unit.Prog, Request.Proc, Config);
  NIReport Report = Harness.run();
  Resp.Report = formatNIBlock(Report, Resp.Exit);
  Resp.Ok = Report.secure();
  Resp.Cache = P->SpecCaches->totals() - Before;
  return Resp;
}

ServiceResponse Session::fuzz(const ServiceRequest &Request) {
  ServiceResponse Resp;
  countRequest("fuzz", false);
  {
    std::lock_guard<std::mutex> Lock(Mu);
    ++Requests;
  }
  CampaignConfig Config = Request.Fuzz;
  if (Config.Jobs == 0)
    Config.Jobs = Options.Jobs;
  CampaignReport Report = runCampaign(Config);
  Resp.Report = Report.json();
  Resp.Ok = Report.clean();
  Resp.Exit = Report.clean() ? 0 : 1;
  return Resp;
}

SessionStats Session::stats() const {
  SessionStats S;
  std::lock_guard<std::mutex> Lock(Mu);
  S.Requests = Requests;
  S.ProgramCacheHits = CacheHits;
  S.ProgramCacheMisses = CacheMisses;
  S.ProgramsCached = Programs.size();
  for (const auto &[Source, P] : Programs) {
    (void)Source;
    S.SpecsCached += P->SpecCaches->size();
    CacheStats T = P->SpecCaches->totals();
    uint64_t E = S.Spec.Entries + T.Entries; // sum gauges across registries
    S.Spec += T;
    S.Spec.Entries = E;
  }
  return S;
}

void Session::resetCaches() {
  std::lock_guard<std::mutex> Lock(Mu);
  Programs.clear();
}
