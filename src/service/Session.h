//===-- service/Session.h - Reusable verification service -------*- C++ -*-===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The library service layer the serve daemon (and any embedder) drives:
/// a `Session` owns everything the one-shot CLI rebuilds per invocation —
/// the shared ThreadPool (via ThreadPool::shared()), the process-wide
/// value-intern table, a bounded LRU cache of parsed programs, and one
/// `SpecCacheRegistry` per cached program — and exposes a request API
/// covering the five subsystems: verify, validity, analyze, NI, fuzz.
///
/// Warm-cache contract: a resubmitted source skips the parse phase and
/// reuses the cached `Program` object, so its resource-spec declarations
/// keep their addresses and the per-spec alpha/f_a memo caches (PR 2) stay
/// warm — repeated spec families hit the memo layer instead of
/// recomputing. Memoized evaluation is pure, so every response is
/// byte-identical cold or warm, at any `Jobs`, under any interleaving of
/// concurrent requests (chunk outcomes are functions of global item
/// indices, never of the executing worker; see DESIGN §11).
///
/// Thread model: every method is safe to call from multiple request
/// threads concurrently. Requests multiplex onto the one shared pool;
/// a request thread waiting for its chunks helps drain the pool's queues,
/// so concurrent requests cannot deadlock the pool.
///
//===----------------------------------------------------------------------===//

#ifndef COMMCSL_SERVICE_SESSION_H
#define COMMCSL_SERVICE_SESSION_H

#include "fuzz/Campaign.h"
#include "hyperviper/Driver.h"
#include "rspec/EvalCache.h"

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

namespace commcsl {

/// Session-wide defaults and bounds.
struct SessionOptions {
  /// Default worker threads per request (0 = hardware concurrency); a
  /// request's own Jobs field overrides it.
  unsigned Jobs = 0;
  /// Verifier triage fast path for verify requests.
  bool Triage = false;
  /// Parsed programs kept warm (LRU beyond this). Evicting a program also
  /// drops its spec memo caches.
  size_t MaxCachedPrograms = 32;
  /// Capacity bound per spec memo cache.
  size_t MemoMaxEntries = SpecEvalCache::DefaultMaxEntries;
};

/// One service request. `Verb` selects the subsystem; the source-based
/// verbs take the program text inline (the daemon has no filesystem
/// contract with its clients).
struct ServiceRequest {
  enum class Verb {
    Verify,   ///< full pipeline; optionally followed by the NI harness
    Validity, ///< resource-spec validity (Def. 3.1) only
    Analyze,  ///< static information-flow pre-analysis only
    NI,       ///< empirical non-interference harness only
    Fuzz,     ///< differential soundness-fuzzing campaign
  };
  Verb V = Verb::Verify;
  std::string Source;
  std::string Name = "<request>"; ///< labels diagnostics, like a CLI path
  std::string Proc;     ///< NI (and Verify-with-NI): procedure to sweep
  unsigned Jobs = 0;    ///< 0 = session default
  bool Triage = false;  ///< verify: static fast path
  bool NoValidity = false; ///< verify: skip Def. 3.1 checking
  /// Verify: emit a checkable proof certificate (cert/Cert.h) into the
  /// response. Forces the full pipeline (triage is disabled so every
  /// obligation is actually discharged and recorded). The warm-cache
  /// contract extends to certificates: a resubmitted source returns a
  /// byte-identical certificate, cold or warm, at any Jobs.
  bool EmitCert = false;
  /// Wall-clock budget in milliseconds for the request's validity tiers
  /// (verify and validity verbs). 0 = unlimited. When it fires the request
  /// comes back with TimedOut set and the daemon answers with a typed
  /// `timeout` error. Exhaustion drains gracefully — dispatched pool work
  /// finishes, nothing is torn down — and the warm caches are untouched:
  /// memoized evaluation is pure, so partial entries are correct and stay.
  uint64_t BudgetMs = 0;
  /// Cap on concrete check instances (bounded + random tiers) across the
  /// request, same unit as BoundedChecks + RandomChecks. 0 = unlimited.
  uint64_t MaxSteps = 0;
  CampaignConfig Fuzz;  ///< fuzz only
};

/// One service response. `Report` is the user-facing payload and is
/// byte-identical to what the one-shot CLI prints (stderr diagnostics
/// followed by stdout lines) for the corresponding invocation.
struct ServiceResponse {
  bool Ok = true; ///< verdict: verified / valid / clean / secure
  int Exit = 0;   ///< the CLI's exit code for the same input
  std::string Report;
  /// Proof certificate text (verify with EmitCert only; empty otherwise or
  /// when the program failed to parse). Byte-identical to what the CLI's
  /// `--emit-cert` writes for the same source.
  std::string Cert;
  /// Spec memo counters attributable to this request (snapshot deltas;
  /// clamped, so cache resets between snapshots cannot wrap them).
  CacheStats Cache;
  /// True when the request's program came from the warm program cache.
  bool ProgramCacheHit = false;
  /// True when the request's budget (BudgetMs/MaxSteps) fired before a
  /// verdict was reached. Ok is false and Report explains; the daemon
  /// turns this into a typed `timeout` error line.
  bool TimedOut = false;
};

/// Aggregate session counters for the stats endpoint.
struct SessionStats {
  uint64_t Requests = 0;
  uint64_t ProgramCacheHits = 0;
  uint64_t ProgramCacheMisses = 0;
  uint64_t ProgramsCached = 0;
  uint64_t SpecsCached = 0; ///< distinct specs holding a memo cache
  CacheStats Spec;          ///< summed over every live program's registry
};

/// The long-lived service object. See the file comment for the ownership
/// and determinism story.
class Session {
public:
  explicit Session(SessionOptions Options = {});

  /// Dispatches on the request's verb.
  ServiceResponse handle(const ServiceRequest &Request);

  ServiceResponse verify(const ServiceRequest &Request);
  ServiceResponse validity(const ServiceRequest &Request);
  ServiceResponse analyze(const ServiceRequest &Request);
  ServiceResponse ni(const ServiceRequest &Request);
  ServiceResponse fuzz(const ServiceRequest &Request);

  SessionStats stats() const;

  /// Drops every cached program and its memo caches (maintenance hook).
  void resetCaches();

private:
  /// A parsed program plus its warm per-spec memo caches. Cached entries
  /// are shared_ptrs so eviction cannot invalidate a request mid-flight:
  /// an in-flight request keeps its entry (program, caches and all) alive
  /// until it completes.
  struct CachedProgram {
    ParsedUnit Unit;
    std::shared_ptr<SpecCacheRegistry> SpecCaches;
    uint64_t LastUse = 0;
  };

  /// The cached parse of \p Source, parsing (and inserting) on a miss.
  /// Sets \p WasHit for the response's cache flag.
  std::shared_ptr<CachedProgram> obtain(const std::string &Source,
                                        const std::string &Name,
                                        bool &WasHit);

  DriverOptions driverOptions(const ServiceRequest &Request,
                              const std::shared_ptr<CachedProgram> &P) const;

  SessionOptions Options;
  mutable std::mutex Mu;
  std::unordered_map<std::string, std::shared_ptr<CachedProgram>> Programs;
  uint64_t UseClock = 0;
  uint64_t Requests = 0;
  uint64_t CacheHits = 0;
  uint64_t CacheMisses = 0;
};

} // namespace commcsl

#endif // COMMCSL_SERVICE_SESSION_H
