//===-- service/Server.cpp - ndjson-over-TCP verification daemon -----------===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//

#include "service/Server.h"

#include "service/Json.h"
#include "support/trace/Metrics.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace commcsl;

/// One accepted client. The write mutex serializes response lines from
/// concurrent workers; reads happen only on the connection's own reader
/// thread.
struct Server::Connection {
  int Fd = -1;
  std::mutex WriteMu;

  ~Connection() {
    if (Fd >= 0)
      ::close(Fd);
  }

  /// Writes one complete line (terminator included). Short writes retry;
  /// a dead peer is silently dropped (its reader thread will see EOF).
  void writeLine(const std::string &Line) {
    std::lock_guard<std::mutex> Lock(WriteMu);
    size_t Off = 0;
    while (Off < Line.size()) {
      ssize_t N = ::send(Fd, Line.data() + Off, Line.size() - Off,
                         MSG_NOSIGNAL);
      if (N < 0) {
        if (errno == EINTR)
          continue;
        return;
      }
      Off += static_cast<size_t>(N);
    }
  }
};

namespace {

JsonValue cacheJson(const CacheStats &C) {
  JsonValue O = JsonValue::object();
  O.set("alpha_hits", JsonValue::number(C.AlphaHits));
  O.set("alpha_misses", JsonValue::number(C.AlphaMisses));
  O.set("action_hits", JsonValue::number(C.ActionHits));
  O.set("action_misses", JsonValue::number(C.ActionMisses));
  O.set("hits", JsonValue::number(C.hits()));
  O.set("misses", JsonValue::number(C.misses()));
  O.set("entries", JsonValue::number(C.Entries));
  O.set("evictions", JsonValue::number(C.Evictions));
  return O;
}

/// Echoes the request's `id` (verbatim, any JSON type) into a response
/// object. Requests without an id get responses without one.
JsonValue responseShell(const JsonValue *Request) {
  JsonValue O = JsonValue::object();
  if (Request)
    if (const JsonValue *Id = Request->find("id"))
      O.set("id", *Id);
  return O;
}

std::string errorLine(const JsonValue *Request, const std::string &Type,
                      const std::string &Message) {
  JsonValue O = responseShell(Request);
  JsonValue E = JsonValue::object();
  E.set("type", JsonValue::string(Type));
  E.set("message", JsonValue::string(Message));
  O.set("error", std::move(E));
  return O.dump() + "\n";
}

std::string responseLine(const JsonValue &Request,
                         const ServiceResponse &Resp) {
  JsonValue O = responseShell(&Request);
  O.set("ok", JsonValue::boolean(Resp.Ok));
  O.set("exit", JsonValue::number(static_cast<uint64_t>(Resp.Exit)));
  O.set("report", JsonValue::string(Resp.Report));
  if (!Resp.Cert.empty())
    O.set("cert", JsonValue::string(Resp.Cert));
  O.set("program_cache_hit", JsonValue::boolean(Resp.ProgramCacheHit));
  O.set("cache", cacheJson(Resp.Cache));
  return O.dump() + "\n";
}

/// Maps the protocol verb to a ServiceRequest, or returns false with a
/// message for the bad-request response.
bool buildRequest(const JsonValue &J, ServiceRequest &Out,
                  std::string &Message) {
  const std::string Verb = J.getString("verb");
  if (Verb == "verify")
    Out.V = ServiceRequest::Verb::Verify;
  else if (Verb == "validity")
    Out.V = ServiceRequest::Verb::Validity;
  else if (Verb == "analyze")
    Out.V = ServiceRequest::Verb::Analyze;
  else if (Verb == "ni")
    Out.V = ServiceRequest::Verb::NI;
  else if (Verb == "fuzz")
    Out.V = ServiceRequest::Verb::Fuzz;
  else {
    Message = Verb.empty() ? "missing \"verb\"" : "unknown verb: " + Verb;
    return false;
  }

  Out.Source = J.getString("source");
  Out.Name = J.getString("name", "<request>");
  Out.Proc = J.getString("proc");
  Out.Jobs = static_cast<unsigned>(J.getU64("jobs", 0));
  Out.Triage = J.getBool("triage");
  Out.NoValidity = J.getBool("no_validity");
  Out.EmitCert = J.getBool("emit_cert");
  Out.BudgetMs = J.getU64("budget_ms", 0);
  Out.MaxSteps = J.getU64("max_steps", 0);

  if (Out.V == ServiceRequest::Verb::Fuzz) {
    Out.Fuzz.NumSeeds = J.getU64("seeds", Out.Fuzz.NumSeeds);
    Out.Fuzz.BaseSeed = J.getU64("base_seed", Out.Fuzz.BaseSeed);
    Out.Fuzz.Jobs = Out.Jobs;
    return true;
  }
  if (Out.Source.empty()) {
    Message = "verb \"" + Verb + "\" requires a nonempty \"source\"";
    return false;
  }
  if (Out.V == ServiceRequest::Verb::NI && Out.Proc.empty()) {
    Message = "verb \"ni\" requires \"proc\"";
    return false;
  }
  return true;
}

} // namespace

Server::Server(SessionOptions SessionOpts, uint16_t Port, unsigned Workers,
               size_t MaxQueue)
    : Sess(SessionOpts), RequestedPort(Port),
      Workers(Workers == 0 ? 1 : Workers),
      MaxQueue(MaxQueue == 0 ? 1 : MaxQueue) {}

Server::~Server() {
  stop();
  if (ListenFd >= 0)
    ::close(ListenFd);
}

bool Server::start() {
  ListenFd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (ListenFd < 0) {
    Error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  int One = 1;
  ::setsockopt(ListenFd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));

  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  Addr.sin_port = htons(RequestedPort);
  if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) <
      0) {
    Error = std::string("bind: ") + std::strerror(errno);
    return false;
  }
  if (::listen(ListenFd, 64) < 0) {
    Error = std::string("listen: ") + std::strerror(errno);
    return false;
  }
  socklen_t Len = sizeof(Addr);
  if (::getsockname(ListenFd, reinterpret_cast<sockaddr *>(&Addr), &Len) <
      0) {
    Error = std::string("getsockname: ") + std::strerror(errno);
    return false;
  }
  BoundPort = ntohs(Addr.sin_port);
  return true;
}

void Server::run() {
  std::vector<std::thread> Pool;
  Pool.reserve(Workers);
  for (unsigned I = 0; I < Workers; ++I)
    Pool.emplace_back([this] { workerLoop(); });

  acceptLoop();

  // Workers exit once the queue is drained and Stopping is set, so joining
  // them is the "every queued request has been answered" barrier.
  QueueCv.notify_all();
  for (std::thread &T : Pool)
    T.join();

  // Now unblock and retire the reader threads (their clients have every
  // response they are owed).
  {
    std::lock_guard<std::mutex> Lock(ConnMu);
    for (const std::shared_ptr<Connection> &C : Connections)
      ::shutdown(C->Fd, SHUT_RDWR);
  }
  for (std::thread &T : ReaderThreads)
    T.join();
  {
    std::lock_guard<std::mutex> Lock(ConnMu);
    Connections.clear();
    ReaderThreads.clear();
  }
}

void Server::stop() {
  bool Expected = false;
  if (!Stopping.compare_exchange_strong(Expected, true))
    return;
  // Breaks the blocking accept(); readers and workers check the flag.
  if (ListenFd >= 0)
    ::shutdown(ListenFd, SHUT_RDWR);
  QueueCv.notify_all();
}

void Server::acceptLoop() {
  while (!Stopping.load()) {
    int Fd = ::accept(ListenFd, nullptr, nullptr);
    if (Fd < 0) {
      if (errno == EINTR)
        continue;
      break; // listen socket shut down (stop()) or fatal
    }
    if (Stopping.load()) {
      ::close(Fd);
      break;
    }
    auto Conn = std::make_shared<Connection>();
    Conn->Fd = Fd;
    std::lock_guard<std::mutex> Lock(ConnMu);
    Connections.push_back(Conn);
    ReaderThreads.emplace_back([this, Conn] { readerLoop(Conn); });
  }
}

void Server::readerLoop(std::shared_ptr<Connection> Conn) {
  std::string Buffer;
  char Chunk[4096];
  for (;;) {
    ssize_t N = ::recv(Conn->Fd, Chunk, sizeof(Chunk), 0);
    if (N < 0 && errno == EINTR)
      continue;
    if (N <= 0)
      return; // client closed (or shutdown during stop)
    Buffer.append(Chunk, static_cast<size_t>(N));
    size_t Start = 0;
    for (size_t NL; (NL = Buffer.find('\n', Start)) != std::string::npos;
         Start = NL + 1) {
      std::string Line = Buffer.substr(Start, NL - Start);
      if (!Line.empty() && Line.back() == '\r')
        Line.pop_back();
      if (!Line.empty())
        serveLine(Conn, Line);
    }
    Buffer.erase(0, Start);
  }
}

void Server::serveLine(const std::shared_ptr<Connection> &ConnPtr,
                       const std::string &Line) {
  Connection &Conn = *ConnPtr;
  std::string ParseError;
  std::optional<JsonValue> J = JsonValue::parse(Line, &ParseError);
  if (!J || !J->isObject()) {
    Conn.writeLine(errorLine(J ? &*J : nullptr, "bad-request",
                             J ? "request must be a JSON object"
                               : ParseError));
    return;
  }

  const std::string Verb = J->getString("verb");

  // Control verbs are handled inline on the reader thread — never queued —
  // so a saturated queue cannot starve health checks or shutdown.
  if (Verb == "stats") {
    JsonValue O = responseShell(&*J);
    O.set("ok", JsonValue::boolean(true));
    O.setRaw("stats", statsJson());
    Conn.writeLine(O.dump() + "\n");
    return;
  }
  if (Verb == "reset") {
    Sess.resetCaches();
    JsonValue O = responseShell(&*J);
    O.set("ok", JsonValue::boolean(true));
    Conn.writeLine(O.dump() + "\n");
    return;
  }
  if (Verb == "shutdown") {
    JsonValue O = responseShell(&*J);
    O.set("ok", JsonValue::boolean(true));
    O.set("shutting_down", JsonValue::boolean(true));
    Conn.writeLine(O.dump() + "\n");
    stop();
    return;
  }

  ServiceRequest Request;
  std::string Message;
  if (!buildRequest(*J, Request, Message)) {
    const bool Unknown = Message.rfind("unknown verb", 0) == 0;
    Conn.writeLine(
        errorLine(&*J, Unknown ? "unknown-verb" : "bad-request", Message));
    return;
  }

  // Backpressure: refuse rather than buffer unboundedly.
  {
    std::lock_guard<std::mutex> Lock(QueueMu);
    if (Stopping.load()) {
      Conn.writeLine(
          errorLine(&*J, "shutting-down", "server is shutting down"));
      return;
    }
    if (Queue.size() >= MaxQueue) {
      Conn.writeLine(errorLine(
          &*J, "busy",
          "request queue full (" + std::to_string(Queue.size()) +
              " queued); retry later"));
      MetricsRegistry::global()
          .counter("service.rejected_busy", Stability::Varies)
          .add(1);
      return;
    }
    Queue.push_back(QueueItem{ConnPtr, Line});
  }
  QueueCv.notify_one();
}

void Server::workerLoop() {
  for (;;) {
    QueueItem Item;
    {
      std::unique_lock<std::mutex> Lock(QueueMu);
      QueueCv.wait(Lock,
                   [&] { return !Queue.empty() || Stopping.load(); });
      if (Queue.empty())
        return; // Stopping and drained
      Item = std::move(Queue.front());
      Queue.pop_front();
      ++InFlight;
    }
    // The line already parsed once (serveLine validated it); parse again
    // here so the queue holds plain strings.
    std::optional<JsonValue> J = JsonValue::parse(Item.Line);
    ServiceRequest Request;
    std::string Message;
    if (J && buildRequest(*J, Request, Message)) {
      ServiceResponse Resp = Sess.handle(Request);
      if (Resp.TimedOut)
        // Typed timeout: the budget fired before a verdict. The partial
        // work drained gracefully and the warm caches are untouched, so a
        // retry with a larger budget starts from a warmer state.
        Item.Conn->writeLine(errorLine(
            &*J, "timeout",
            "request exceeded its budget (budget_ms/max_steps) before "
            "reaching a verdict; caches remain warm — retry with a larger "
            "budget"));
      else
        Item.Conn->writeLine(responseLine(*J, Resp));
    }
    {
      std::lock_guard<std::mutex> Lock(QueueMu);
      --InFlight;
    }
    QueueCv.notify_all();
  }
}

std::string Server::statsJson() const {
  SessionStats S = Sess.stats();
  size_t Depth, Flying;
  {
    std::lock_guard<std::mutex> Lock(QueueMu);
    Depth = Queue.size();
    Flying = InFlight;
  }
  JsonValue O = JsonValue::object();
  O.set("requests", JsonValue::number(S.Requests));
  O.set("queue_depth", JsonValue::number(static_cast<uint64_t>(Depth)));
  O.set("in_flight", JsonValue::number(static_cast<uint64_t>(Flying)));
  JsonValue PC = JsonValue::object();
  PC.set("hits", JsonValue::number(S.ProgramCacheHits));
  PC.set("misses", JsonValue::number(S.ProgramCacheMisses));
  PC.set("programs", JsonValue::number(S.ProgramsCached));
  O.set("program_cache", std::move(PC));
  JsonValue SC = cacheJson(S.Spec);
  const uint64_t Total = S.Spec.hits() + S.Spec.misses();
  SC.set("hit_rate",
         JsonValue::number(Total ? static_cast<double>(S.Spec.hits()) /
                                       static_cast<double>(Total)
                                 : 0.0));
  O.set("spec_cache", std::move(SC));
  O.set("specs_cached", JsonValue::number(S.SpecsCached));
  // The registry pretty-prints; re-emit it compact so the response stays a
  // single ndjson line.
  if (std::optional<JsonValue> Metrics =
          JsonValue::parse(MetricsRegistry::global().json()))
    O.set("metrics", std::move(*Metrics));
  return O.dump();
}
