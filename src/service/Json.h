//===-- service/Json.h - Minimal JSON parsing and rendering -----*- C++ -*-===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small self-contained JSON value type for the serve protocol: one
/// request or response per line, parsed and rendered without any external
/// dependency. The subset is full JSON minus extensions: objects, arrays,
/// strings (with \uXXXX escapes, encoded to UTF-8), numbers, booleans,
/// null. Object keys keep insertion order on render; duplicate keys keep
/// the last value on lookup (like every mainstream parser).
///
/// Numbers remember their source token so 64-bit integers round-trip
/// exactly (`asU64` reparses the token rather than going through the
/// double), which the protocol needs for fuzz seeds.
///
//===----------------------------------------------------------------------===//

#ifndef COMMCSL_SERVICE_JSON_H
#define COMMCSL_SERVICE_JSON_H

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace commcsl {

/// One JSON value.
class JsonValue {
public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Kind kind() const { return K; }

  static JsonValue null() { return JsonValue(); }
  static JsonValue boolean(bool B);
  static JsonValue number(double N);
  static JsonValue number(uint64_t N);
  /// Number carrying its exact source token (parser internal; the token
  /// must be a valid JSON number rendering of \p N).
  static JsonValue numberFromToken(double N, std::string Token);
  static JsonValue string(std::string S);
  static JsonValue array();
  static JsonValue object();

  /// Parses one complete JSON document; trailing non-whitespace is an
  /// error. On failure returns nullopt and, if \p Error is non-null, a
  /// one-line description with the byte offset.
  static std::optional<JsonValue> parse(const std::string &Text,
                                        std::string *Error = nullptr);

  bool isObject() const { return K == Kind::Object; }
  bool isString() const { return K == Kind::String; }

  /// Object member by key (last duplicate wins), or null when absent or
  /// not an object.
  const JsonValue *find(const std::string &Key) const;

  /// Typed member accessors with defaults (absent or wrong-typed members
  /// yield the default).
  std::string getString(const std::string &Key,
                        const std::string &Default = "") const;
  bool getBool(const std::string &Key, bool Default = false) const;
  uint64_t getU64(const std::string &Key, uint64_t Default = 0) const;

  bool asBool() const { return B; }
  double asDouble() const { return Num; }
  /// The number as an exact unsigned 64-bit integer when its source token
  /// is one, else nullopt.
  std::optional<uint64_t> asU64() const;
  const std::string &asString() const { return Str; }
  const std::vector<JsonValue> &items() const { return Arr; }
  const std::vector<std::pair<std::string, JsonValue>> &members() const {
    return Obj;
  }

  /// Appends an object member (no duplicate check; callers render fresh
  /// objects).
  JsonValue &set(std::string Key, JsonValue V);
  /// Appends an array element.
  JsonValue &push(JsonValue V);
  /// Appends a member whose value is pre-rendered JSON text, spliced
  /// verbatim into the output (e.g. the metrics registry's own export).
  JsonValue &setRaw(std::string Key, std::string RawJson);

  /// Renders compact single-line JSON (no spaces, members in insertion
  /// order).
  std::string dump() const;

private:
  Kind K = Kind::Null;
  bool B = false;
  double Num = 0;
  std::string NumText; ///< source token; preserves integer fidelity
  std::string Str;     ///< String payload, or Raw spliced text
  bool Raw = false;    ///< Str is pre-rendered JSON, not a string literal
  std::vector<JsonValue> Arr;
  std::vector<std::pair<std::string, JsonValue>> Obj;

  void dumpInto(std::string &Out) const;
};

} // namespace commcsl

#endif // COMMCSL_SERVICE_JSON_H
