//===-- verifier/CertEmit.cpp - Certificate emission -----------------------===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//

#include "verifier/CertEmit.h"

#include "absint/Differencing.h"
#include "absint/TermIO.h"
#include "cert/Algebra.h"
#include "cert/Check.h"
#include "cert/Evidence.h"

#include <unordered_map>

using namespace commcsl;

namespace {

/// Memoized arena-term -> pool-id translation. Interning on both sides makes
/// the mapping injective on structure, so shared subterms stay shared.
class PoolBuilder {
public:
  explicit PoolBuilder(cert::TermPool &Pool) : Pool(Pool) {}

  uint32_t idOf(TermRef T) {
    auto It = Memo.find(T);
    if (It != Memo.end())
      return It->second;
    uint32_t Id = 0;
    switch (T->K) {
    case Term::Kind::Const:
      Id = Pool.constant(T->ConstVal);
      break;
    case Term::Kind::Sym:
      Id = Pool.sym(T->SymId, T->SymName);
      break;
    case Term::Kind::Unary:
      Id = Pool.unary(T->UOp, idOf(T->Args[0]));
      break;
    case Term::Kind::Binary:
      Id = Pool.binary(T->BOp, idOf(T->Args[0]), idOf(T->Args[1]));
      break;
    case Term::Kind::Builtin: {
      std::vector<uint32_t> Args;
      Args.reserve(T->Args.size());
      for (TermRef A : T->Args)
        Args.push_back(idOf(A));
      Id = Pool.builtin(T->BK, std::move(Args));
      break;
    }
    }
    Memo.emplace(T, Id);
    return Id;
  }

private:
  cert::TermPool &Pool;
  std::unordered_map<TermRef, uint32_t> Memo;
};

/// Flattens a split tree pre-order: guard text for interior nodes, "" for
/// leaves (including a missing subtree — replay treats both identically).
void flattenTree(const absint::SplitNode *N, std::vector<std::string> &Out) {
  if (!N || !N->Guard) {
    Out.emplace_back();
    return;
  }
  Out.push_back(absint::printTerm(N->Guard));
  flattenTree(N->Then.get(), Out);
  flattenTree(N->Else.get(), Out);
}

} // namespace

cert::CertProcUnit commcsl::buildProcCertUnit(const ProofLog &Log,
                                              const std::string &Name,
                                              bool Ok) {
  cert::CertProcUnit U;
  U.Name = Name;
  U.Ok = Ok;
  PoolBuilder B(U.Pool);

  U.Facts.reserve(Log.Facts.size());
  for (const ProofFact &F : Log.Facts) {
    cert::CertFact CF;
    CF.K = F.K == ProofFact::Kind::Eq ? cert::CertFact::Kind::Eq
                                      : cert::CertFact::Kind::True;
    CF.A = B.idOf(F.A);
    CF.B = F.B ? B.idOf(F.B) : 0;
    U.Facts.push_back(CF);
  }

  bool AllObOk = true;
  U.Obligations.reserve(Log.Obligations.size());
  for (const ProofObligation &Ob : Log.Obligations) {
    cert::CertObligation CO;
    CO.Label = Ob.Label;
    CO.Ok = Ob.Ok;
    AllObOk &= Ob.Ok;
    CO.Queries.reserve(Ob.Queries.size());
    for (const ProofQuery &Q : Ob.Queries) {
      cert::CertQuery CQ;
      CQ.IsEq = Q.IsEq;
      CQ.A = B.idOf(Q.A);
      CQ.B = Q.B ? B.idOf(Q.B) : 0;
      CQ.Proved = Q.Proved;
      CQ.Ctx = Q.Ctx;
      CO.Queries.push_back(std::move(CQ));
    }
    U.Obligations.push_back(std::move(CO));
  }

  // A rejection no failed query explains is structural (missing guard
  // fraction, heap misuse, racing par branches, ...).
  U.StructuralFail = !Ok && AllObOk;
  return U;
}

cert::CertSpecUnit commcsl::buildSpecCertUnit(const ResourceSpecDecl &Spec,
                                              const Program &Prog,
                                              const ValidityConfig &Cfg,
                                              const ValidityResult &R,
                                              bool Forge) {
  cert::CertSpecUnit U;
  U.Name = Spec.Name;
  U.Valid = R.Valid || Forge;
  U.ScopeLo = Spec.ScopeIntLo;
  U.ScopeHi = Spec.ScopeIntHi;
  U.ScopeBound = Spec.ScopeCollectionBound;
  U.StatesCap = Cfg.MaxStates;
  U.ArgsCap = Cfg.MaxArgs;

  cert::SpecEvidence Ev = cert::computeSpecEvidence(
      Spec, &Prog, U.StatesCap, U.ArgsCap, cert::SampleDraws);
  U.NumStates = Ev.NumStates;
  U.NumAlphaPairs = Ev.NumAlphaPairs;
  U.ArgCounts = Ev.ArgCounts;
  U.SampleCount = Ev.SampleCount;
  U.SampleDigest = Ev.SampleDigest;

  cert::FamilyMatch FM = cert::matchFamily(Spec);
  U.Fam = FM.Fam;
  U.FamilyOp = FM.Op;

  U.BoundedChecks = R.BoundedChecks;
  U.RandomChecks = R.RandomChecks;

  // Differencing-tier evidence: the update templates and every proved
  // obligation's split tree, recorded verbatim for search-free replay.
  if (R.Absint && R.Absint->Applicable) {
    cert::CertAbsSection AS;
    AS.Unbounded = R.Unbounded;
    AS.NumComps = static_cast<uint32_t>(R.Absint->Comps.size());
    for (const absint::ActionAbs &A : R.Absint->Actions) {
      if (!A.U)
        continue;
      AS.Templates.emplace_back(A.Name, absint::printTerm(A.U));
      if (A.Pre == absint::ObStatus::Proved) {
        cert::CertAbsOb Ob;
        Ob.IsPre = true;
        Ob.ActionA = A.Name;
        flattenTree(A.PreTree.get(), Ob.Tree);
        AS.Obligations.push_back(std::move(Ob));
      }
    }
    for (const absint::PairAbs &P : R.Absint->Pairs) {
      if (P.Comm != absint::ObStatus::Proved)
        continue;
      cert::CertAbsOb Ob;
      Ob.IsPre = false;
      Ob.ActionA = P.First;
      Ob.ActionB = P.Second;
      flattenTree(P.Tree.get(), Ob.Tree);
      AS.Obligations.push_back(std::move(Ob));
    }
    U.Absint = std::move(AS);
  }

  if (!U.Valid && R.CE) {
    cert::CertCE CE;
    switch (R.CE->Prop) {
    case ValidityCounterexample::Property::Precondition:
      CE.P = cert::CertCE::Prop::Precondition;
      break;
    case ValidityCounterexample::Property::Commutativity:
      CE.P = cert::CertCE::Prop::Commutativity;
      break;
    case ValidityCounterexample::Property::History:
      CE.P = cert::CertCE::Prop::History;
      break;
    case ValidityCounterexample::Property::Invariant:
      CE.P = cert::CertCE::Prop::Invariant;
      break;
    }
    CE.ActionA = R.CE->ActionA;
    CE.ActionB = R.CE->ActionB;
    CE.V1 = R.CE->V1;
    CE.V2 = R.CE->V2;
    CE.Arg1 = R.CE->Arg1;
    CE.Arg2 = R.CE->Arg2;
    CE.AlphaLeft = R.CE->AlphaLeft;
    CE.AlphaRight = R.CE->AlphaRight;
    U.CE = std::move(CE);
  }
  return U;
}
