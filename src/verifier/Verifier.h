//===-- verifier/Verifier.h - CommCSL relational verifier -------*- C++ -*-===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The CommCSL program verifier: a relational symbolic-execution engine
/// implementing the proof rules of Sec. 3.6 (Share, AtomicShr, AtomicUnq,
/// If1/If2, While1/While2, Par, procedure-modular calls) over the term
/// solver. It enforces the paper's four central properties:
///
///  (1) low initial abstract value at `share`;
///  (2)+(3a) retroactively at `unshare`: the recorded argument collections
///      admit a pre-respecting bijection (`PRE`, Def. 3.2) — recorded
///      applications are discharged eagerly when possible and re-tried at
///      unshare with the facts available then (the paper's retroactive
///      checking, Sec. 2.5);
///  (3b)+(4) via the resource-specification validity checker (Def. 3.1),
///      run once per specification.
///
/// The engine runs both executions of the relational pair in lock-step:
/// each variable carries one term per side, `Low(e)` is provable equality
/// of the two evaluations, high conditionals force unary postconditions by
/// havocing modified state to unrelated symbols, and everything read from
/// a shared resource inside an atomic block is a fresh (high) symbol.
///
//===----------------------------------------------------------------------===//

#ifndef COMMCSL_VERIFIER_VERIFIER_H
#define COMMCSL_VERIFIER_VERIFIER_H

#include "cert/Cert.h"
#include "lang/Program.h"
#include "rspec/Validity.h"
#include "solver/Solver.h"
#include "solver/SymEval.h"
#include "support/Diagnostics.h"

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace commcsl {

/// Configuration of the verifier.
struct VerifierConfig {
  /// Budgets for Def. 3.1 validity checking of resource specifications.
  ValidityConfig Validity;
  /// Skip spec validity (used by unit tests that target program rules).
  bool SkipValidityCheck = false;
  /// Optional shared per-spec memo-cache registry. When set, `verifySpec`
  /// evaluates through `SpecCaches->cacheFor(&Spec)` instead of a private
  /// per-checker cache, so entries stay warm across Verifier instances —
  /// the serve daemon's repeated-spec-family fast path. Memoized
  /// evaluation is pure, so verdicts, counterexamples, and diagnostics are
  /// identical warm or cold; only the (diagnostic) hit/miss counters
  /// change. The registry must not outlive the Program that owns the spec
  /// declarations used to key it.
  std::shared_ptr<SpecCacheRegistry> SpecCaches;
  /// Record proof certificates: per-spec validity evidence and per-proc
  /// entailment derivations (cert/Cert.h), re-checkable by the independent
  /// checker without the solver or verifier libraries.
  bool EmitCert = false;
  /// Fault injection: every entailment query answered under an obligation
  /// reports "proved" and invalid specs are claimed valid. The emitted
  /// certificate records the forged verdicts, which the independent checker
  /// then refutes — the end-to-end demonstration of the trust story (and
  /// the fuzz campaign's `cert-invalid` oracle). Implies EmitCert.
  bool ForgeAcceptAll = false;
};

/// Per-procedure verdict.
struct ProcVerdict {
  std::string Proc;
  bool Ok = false;
  unsigned NumObligations = 0; ///< discharged proof obligations
  /// True when the driver's `--triage` fast path proved the procedure
  /// statically (no relational proof was run).
  bool SkippedByTriage = false;
  /// Certificate unit for this procedure (set when EmitCert).
  std::optional<cert::CertProcUnit> CertUnit;
};

/// Whole-program verification result.
struct VerifyResult {
  bool Ok = false;
  std::vector<ProcVerdict> Procs;
  unsigned NumSpecsChecked = 0;
  /// Memo-cache counters summed over every spec validity check (zeros when
  /// ValidityConfig::Memoize is off). Diagnostic only.
  CacheStats SpecCache;
  /// Certificate units for the checked specs, in program order (set when
  /// EmitCert and validity checking is not skipped).
  std::vector<cert::CertSpecUnit> SpecUnits;
};

/// The CommCSL verifier. Construct once per program; `verifyAll` checks
/// every resource specification (Def. 3.1) and every procedure against its
/// contract. Diagnostics carry machine-readable codes (DiagCode) that the
/// negative tests assert on.
class Verifier {
public:
  Verifier(const Program &Prog, DiagnosticEngine &Diags,
           VerifierConfig Config = {});
  ~Verifier();

  /// Verifies all specs and procedures.
  VerifyResult verifyAll();

  /// Verifies one resource specification (validity, Def. 3.1).
  bool verifySpec(const ResourceSpecDecl &Spec);

  /// Verifies one procedure against its contract.
  ProcVerdict verifyProc(const ProcDecl &Proc);

  /// Memo-cache counters accumulated across every `verifySpec` call made
  /// through this verifier so far.
  const CacheStats &specCacheStats() const { return SpecCache; }

  /// Spec certificate units built so far (EmitCert only), keyed by name.
  const std::map<std::string, cert::CertSpecUnit> &specUnits() const {
    return SpecUnits;
  }

private:
  struct Impl;
  const Program &Prog;
  DiagnosticEngine &Diags;
  VerifierConfig Config;
  std::set<std::string> ValidatedSpecs; ///< cache of validity results
  CacheStats SpecCache;                 ///< summed ValidityResult::Cache
  /// Spec certificate units by name, so a cached validity verdict still
  /// yields its (deterministic) unit on later verifyAll calls.
  std::map<std::string, cert::CertSpecUnit> SpecUnits;
};

} // namespace commcsl

#endif // COMMCSL_VERIFIER_VERIFIER_H
