//===-- verifier/CertEmit.h - Certificate emission --------------*- C++ -*-===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Converts the verifier's in-memory evidence into certificate units
/// (cert/Cert.h): a recorded ProofLog becomes a per-procedure unit with an
/// interned term pool, and a spec validity result becomes a per-spec unit
/// with recomputable enumeration evidence. Emission lives on the verifier
/// side of the trust boundary — the independent checker never calls it.
///
//===----------------------------------------------------------------------===//

#ifndef COMMCSL_VERIFIER_CERTEMIT_H
#define COMMCSL_VERIFIER_CERTEMIT_H

#include "cert/Cert.h"
#include "lang/Program.h"
#include "rspec/Validity.h"
#include "solver/Proof.h"

namespace commcsl {

/// Builds the per-procedure certificate unit from the recorded proof log.
/// \p Ok is the verifier's verdict; a failed proc whose recorded obligations
/// all succeeded is marked as a structural failure.
cert::CertProcUnit buildProcCertUnit(const ProofLog &Log,
                                     const std::string &Name, bool Ok);

/// Builds the per-spec certificate unit: declared scope, universe caps from
/// \p Cfg, recomputable evidence (cert/Evidence.h), matched algebraic family
/// (cert/Algebra.h), tier check counts, and — for honest invalid verdicts —
/// the re-executable counterexample. With \p Forge, an invalid spec is
/// claimed valid and its counterexample dropped.
cert::CertSpecUnit buildSpecCertUnit(const ResourceSpecDecl &Spec,
                                     const Program &Prog,
                                     const ValidityConfig &Cfg,
                                     const ValidityResult &R, bool Forge);

} // namespace commcsl

#endif // COMMCSL_VERIFIER_CERTEMIT_H
