//===-- verifier/Verifier.cpp - CommCSL relational verifier ----------------===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//

#include "verifier/Verifier.h"

#include "rspec/RSpec.h"
#include "solver/Proof.h"
#include "support/Frac.h"
#include "verifier/CertEmit.h"

#include <algorithm>
#include <functional>
#include <numeric>

using namespace commcsl;

//===----------------------------------------------------------------------===//
// Fractions
//===----------------------------------------------------------------------===//

namespace {

//===----------------------------------------------------------------------===//
// Relational verification state
//===----------------------------------------------------------------------===//

/// One recorded (or summarized) application of an action on a guard.
struct GuardChunk {
  bool IsSummary = false;
  SourceLoc Loc;
  // Single application (both executions, aligned by control flow).
  TermRef ArgL = nullptr, ArgR = nullptr;
  TermRef RetL = nullptr, RetR = nullptr; ///< null if no returns clause
  bool PreOk = false; ///< relational precondition discharged
  // Summary of an unknown collection of applications.
  TermRef ColL = nullptr, ColR = nullptr; ///< multiset (shared) / seq (unique)
  TermRef RetsL = nullptr, RetsR = nullptr; ///< seq of returns (unique only)
  bool AllPre = false; ///< summary admits a pre-respecting bijection
};

/// Runtime state of a guard (per resource handle and action).
struct GuardRt {
  const ActionDecl *Action = nullptr;
  Frac Held;
  std::vector<GuardChunk> Chunks;

  bool sameAs(const GuardRt &O) const {
    if (!(Held == O.Held) || Chunks.size() != O.Chunks.size())
      return false;
    for (size_t I = 0; I < Chunks.size(); ++I) {
      const GuardChunk &A = Chunks[I];
      const GuardChunk &B = O.Chunks[I];
      if (A.IsSummary != B.IsSummary || A.ArgL != B.ArgL ||
          A.ArgR != B.ArgR || A.ColL != B.ColL || A.ColR != B.ColR ||
          A.PreOk != B.PreOk || A.AllPre != B.AllPre)
        return false;
    }
    return true;
  }
};

/// A shared resource known to the current procedure.
struct ResourceRt {
  const ResourceSpecDecl *Spec = nullptr;
  bool SharedHere = false;
  bool Unshared = false;
  TermRef InitL = nullptr, InitR = nullptr; ///< known only when SharedHere
};

/// A symbolic heap cell with full permission.
struct HeapCell {
  TermRef Loc = nullptr;
  TermRef ValL = nullptr, ValR = nullptr;
};

using GuardKey = std::pair<std::string, std::string>; // (handle, action)

/// Full relational symbolic state.
struct VState {
  SymEnv L, R;
  Solver Facts;
  std::map<std::string, ResourceRt> Resources;
  std::map<GuardKey, GuardRt> Guards;
  std::vector<HeapCell> Heap;

  explicit VState(TermArena &Arena) : Facts(Arena) {}
};

} // namespace

//===----------------------------------------------------------------------===//
// Procedure verification context
//===----------------------------------------------------------------------===//

namespace {

class ProcContext {
public:
  ProcContext(const Program &Prog, DiagnosticEngine &Diags,
              const ProcDecl &Proc, ProofLog *PLog = nullptr)
      : Prog(Prog), Diags(Diags), Proc(Proc), SEval(Arena, &Prog),
        PLog(PLog) {}

  bool run(unsigned &ObligationsOut);

private:
  //===------------------------------------------------------------------===//
  // Diagnostics
  //===------------------------------------------------------------------===//
  void error(DiagCode Code, SourceLoc Loc, const std::string &Msg) {
    Diags.error(Code, Loc, "[" + Proc.Name + "] " + Msg);
    Failed = true;
  }

  //===------------------------------------------------------------------===//
  // Expression evaluation (both sides)
  //===------------------------------------------------------------------===//
  TermRef evalL(const Expr &E, VState &S) { return SEval.eval(E, S.L); }
  TermRef evalR(const Expr &E, VState &S) { return SEval.eval(E, S.R); }

  /// Delimited release: evaluating `declassify e` publishes e, so from
  /// this point the two runs agree on its value. The released equality is
  /// assumed into the fact solver before the enclosing command's own
  /// obligations run (e.g. `output declassify(total)` is low by fiat).
  /// Soundness rests on the operational side: the NI harness only relates
  /// run pairs whose release logs agree, exactly this assumption.
  void releaseDeclassified(const ExprRef &E, VState &S) {
    if (!E)
      return;
    for (const ExprRef &A : E->Args)
      releaseDeclassified(A, S);
    if (E->Kind == ExprKind::Builtin &&
        E->Builtin == BuiltinKind::Declassify)
      S.Facts.assumeEq(evalL(*E->Args[0], S), evalR(*E->Args[0], S));
  }

  /// Applies a one-parameter spec expression (alpha, inv, enabled, history).
  TermRef applyFn1(const ExprRef &Body, const std::string &Param,
                   TermRef Val) {
    SymEnv Env;
    Env[Param] = Val;
    return SEval.eval(*Body, Env);
  }

  std::pair<TermRef, TermRef> freshPair(const std::string &Name,
                                        TypeRef Ty = nullptr) {
    return {Arena.freshSym(Name + "_L", Ty), Arena.freshSym(Name + "_R", Ty)};
  }

  /// A low havoc: one shared symbol for both sides.
  std::pair<TermRef, TermRef> freshLow(const std::string &Name,
                                       TypeRef Ty = nullptr) {
    TermRef T = Arena.freshSym(Name, Ty);
    return {T, T};
  }

  //===------------------------------------------------------------------===//
  // Action precondition discharge (relational, over one recorded pair)
  //===------------------------------------------------------------------===//
  /// \p Required distinguishes the mandatory discharge (unshare / allpre
  /// consumption, where failure is the verdict) from the best-effort eager
  /// attempt at record time, which is retried later with more facts. A
  /// failed best-effort attempt is dropped from the proof log: only the
  /// attempt that counts belongs in the certificate.
  bool dischargePre(const ActionDecl &Action, TermRef ArgL, TermRef ArgR,
                    Solver &Facts, bool Required = true) {
    ObligationScope Ob(PLog, "pre '" + Action.Name + "'");
    ++Obligations;
    bool Ok = [&] {
      for (const ContractAtom &A : Action.Pre) {
        SymEnv EnvL{{Action.ArgName, ArgL}};
        SymEnv EnvR{{Action.ArgName, ArgR}};
        switch (A.AtomKind) {
        case ContractAtom::Kind::Low: {
          if (A.Cond) {
            TermRef CL = SEval.eval(*A.Cond, EnvL);
            TermRef CR = SEval.eval(*A.Cond, EnvR);
            if (!Facts.provesEq(CL, CR))
              return false;
            TermRef EL = SEval.eval(*A.E, EnvL);
            TermRef ER = SEval.eval(*A.E, EnvR);
            TermRef Def = Arena.constant(ValueFactory::unit());
            if (!Facts.provesEq(
                    Arena.builtin(BuiltinKind::Ite, {CL, EL, Def}),
                    Arena.builtin(BuiltinKind::Ite, {CR, ER, Def})))
              return false;
            break;
          }
          TermRef EL = SEval.eval(*A.E, EnvL);
          TermRef ER = SEval.eval(*A.E, EnvR);
          if (!Facts.provesEq(EL, ER))
            return false;
          break;
        }
        case ContractAtom::Kind::Bool: {
          if (!Facts.provesTrue(SEval.eval(*A.E, EnvL)) ||
              !Facts.provesTrue(SEval.eval(*A.E, EnvR)))
            return false;
          break;
        }
        default:
          break; // rejected by the type checker
        }
      }
      return true;
    }();
    if (!Ok && !Required)
      Ob.abandon();
    return Ok;
  }

  /// True when the action's precondition forces the *entire* argument to be
  /// low (an atom `low(arg)` on the bare argument). Used to strengthen
  /// `allpre` summaries for unique actions to full sequence equality.
  static bool preForcesFullLow(const ActionDecl &Action) {
    for (const ContractAtom &A : Action.Pre)
      if (A.AtomKind == ContractAtom::Kind::Low && !A.Cond &&
          A.E->Kind == ExprKind::Var && A.E->Name == Action.ArgName)
        return true;
    return false;
  }

  //===------------------------------------------------------------------===//
  // Guard helpers
  //===------------------------------------------------------------------===//

  /// Aggregated recorded-arguments term per side (multiset for shared
  /// actions, sequence for unique actions).
  std::pair<TermRef, TermRef> guardArgsTerm(const GuardRt &G) {
    bool Unique = G.Action->Unique;
    TermRef AccL = Unique ? Arena.constant(ValueFactory::emptySeq())
                          : Arena.constant(ValueFactory::emptyMultiset());
    TermRef AccR = AccL;
    for (const GuardChunk &C : G.Chunks) {
      if (C.IsSummary) {
        BuiltinKind Join =
            Unique ? BuiltinKind::SeqConcat : BuiltinKind::MsUnion;
        AccL = Arena.builtin(Join, {AccL, C.ColL});
        AccR = Arena.builtin(Join, {AccR, C.ColR});
      } else {
        BuiltinKind Add = Unique ? BuiltinKind::SeqAppend : BuiltinKind::MsAdd;
        AccL = Arena.builtin(Add, {AccL, C.ArgL});
        AccR = Arena.builtin(Add, {AccR, C.ArgR});
      }
    }
    return {AccL, AccR};
  }

  /// Recorded-returns term per side (unique actions with returns).
  std::pair<TermRef, TermRef> guardRetsTerm(const GuardRt &G) {
    TermRef AccL = Arena.constant(ValueFactory::emptySeq());
    TermRef AccR = AccL;
    for (const GuardChunk &C : G.Chunks) {
      if (C.IsSummary) {
        assert(C.RetsL && C.RetsR && "unique summary without returns part");
        AccL = Arena.builtin(BuiltinKind::SeqConcat, {AccL, C.RetsL});
        AccR = Arena.builtin(BuiltinKind::SeqConcat, {AccR, C.RetsR});
      } else {
        assert(C.RetL && C.RetR && "unique chunk without returns part");
        AccL = Arena.builtin(BuiltinKind::SeqAppend, {AccL, C.RetL});
        AccR = Arena.builtin(BuiltinKind::SeqAppend, {AccR, C.RetR});
      }
    }
    return {AccL, AccR};
  }

  /// Checks that every chunk of \p G satisfies PRE (retrying undischarged
  /// applications against the current facts — the retroactive check).
  bool checkAllPre(GuardRt &G, Solver &Facts, bool Required = true) {
    for (GuardChunk &C : G.Chunks) {
      if (C.IsSummary) {
        if (!C.AllPre)
          return false;
        continue;
      }
      if (!C.PreOk)
        C.PreOk = dischargePre(*G.Action, C.ArgL, C.ArgR, Facts, Required);
      if (!C.PreOk)
        return false;
    }
    return true;
  }

  /// Makes a fresh summary chunk for \p Action (collection symbols, and
  /// return-sequence symbols for unique actions with a returns clause).
  GuardChunk freshSummary(const ActionDecl &Action, const std::string &Hint,
                          bool AllPre) {
    GuardChunk C;
    C.IsSummary = true;
    C.AllPre = AllPre;
    TypeRef ColTy = Action.Unique ? Type::seq(Action.ArgTy)
                                  : Type::multiset(Action.ArgTy);
    auto [L, R] = freshPair(Hint + "_args", ColTy);
    C.ColL = L;
    C.ColR = R;
    if (Action.Unique && Action.Returns) {
      auto [RL, RR] = freshPair(Hint + "_rets");
      C.RetsL = RL;
      C.RetsR = RR;
    }
    return C;
  }

  /// Emits the relational facts implied by `allpre` on a summary chunk:
  /// the bijection gives equal cardinality; for unique actions, equal
  /// length, and full sequence equality when the precondition forces the
  /// whole argument low.
  void assumeAllPreFacts(const ActionDecl &Action, const GuardChunk &C,
                         Solver &Facts) {
    if (!C.IsSummary)
      return;
    if (Action.Unique) {
      Facts.assumeEq(Arena.builtin(BuiltinKind::SeqLen, {C.ColL}),
                     Arena.builtin(BuiltinKind::SeqLen, {C.ColR}));
      if (preForcesFullLow(Action))
        Facts.assumeEq(C.ColL, C.ColR);
      if (C.RetsL)
        Facts.assumeEq(Arena.builtin(BuiltinKind::SeqLen, {C.RetsL}),
                       Arena.builtin(BuiltinKind::SeqLen, {C.RetsR}));
    } else {
      Facts.assumeEq(Arena.builtin(BuiltinKind::MsCard, {C.ColL}),
                     Arena.builtin(BuiltinKind::MsCard, {C.ColR}));
      if (preForcesFullLow(Action))
        Facts.assumeEq(C.ColL, C.ColR);
    }
  }

  //===------------------------------------------------------------------===//
  // Contracts
  //===------------------------------------------------------------------===//

  /// Maps a contract atom's resource name through \p HandleMap (callee
  /// parameter -> caller handle); identity when the map is empty.
  static std::string mapHandle(const std::map<std::string, std::string> &M,
                               const std::string &Name) {
    auto It = M.find(Name);
    return It == M.end() ? Name : It->second;
  }

  const ActionDecl *atomAction(const ContractAtom &A, VState &S,
                               const std::map<std::string, std::string> &HM) {
    std::string Handle = mapHandle(HM, A.Res);
    auto It = S.Resources.find(Handle);
    if (It == S.Resources.end()) {
      error(DiagCode::VerifyResourceState, A.Loc,
            "guard atom references unknown resource handle '" + Handle + "'");
      return nullptr;
    }
    return It->second.Spec->findAction(A.Action);
  }

  /// Assumes a contract (requires of this procedure, ensures of a callee,
  /// loop invariant after havoc). Guard atoms install guards; spec
  /// variables are bound in \p S's environments.
  /// \p BaseL/\p BaseR optionally replace the state's environments (used
  /// when assuming a callee's ensures over the callee's parameter names);
  /// \p ExportBindings controls whether spec variables bound by guard atoms
  /// become visible in the state afterwards.
  void produceContract(const Contract &C, VState &S,
                       const std::map<std::string, std::string> &HandleMap,
                       const std::map<std::string, std::pair<TermRef, TermRef>>
                           &ArgBindings,
                       const std::string &Hint,
                       const SymEnv *BaseL = nullptr,
                       const SymEnv *BaseR = nullptr,
                       bool ExportBindings = true);

  /// Proves a contract (ensures of this procedure, loop invariant at
  /// entry/after body, ghost assert). Guard atoms check the held guards;
  /// spec variables bind to aggregated argument terms. Returns false (and
  /// diagnoses) on failure.
  bool consumeContract(const Contract &C, VState &S,
                       const std::map<std::string, std::string> &HandleMap,
                       const char *What, SourceLoc Loc);

  //===------------------------------------------------------------------===//
  // Commands
  //===------------------------------------------------------------------===//
  void checkCmd(const CommandRef &C, VState &S);
  void checkBlock(const CommandRef &C, VState &S) {
    for (const CommandRef &Child : C->Children)
      checkCmd(Child, S);
  }
  void checkIf(const CommandRef &C, VState &S);
  void checkWhile(const CommandRef &C, VState &S);
  void checkPar(const CommandRef &C, VState &S);
  void checkCall(const CommandRef &C, VState &S);
  void checkShare(const CommandRef &C, VState &S);
  void checkUnshare(const CommandRef &C, VState &S);
  void checkAtomic(const CommandRef &C, VState &S);

  void setVar(VState &S, const std::string &Name, TermRef L, TermRef R,
              SourceLoc Loc) {
    if (ParamNames.count(Name)) {
      error(DiagCode::VerifyContract, Loc,
            "assignment to parameter '" + Name +
                "' (parameters are immutable)");
      return;
    }
    S.L[Name] = L;
    S.R[Name] = R;
  }

  /// Havocs the variables modified by \p Cmd. When \p Relate is true, the
  /// havoc is low only if the variable is provably low in all of the
  /// provided end states; otherwise the two sides are unrelated.
  void havocModified(const Command &Cmd, VState &S,
                     const std::vector<VState *> &LowWitnesses);

  /// Joins guard maps after branching; identical guards are kept, divergent
  /// ones are summarized (AllPre only when every chunk on both sides checks
  /// out against \p S.Facts, which holds the *pre-branch* facts — required
  /// for soundness of If2's mixed execution pairings).
  void joinGuards(VState &S, VState &A, VState &B, SourceLoc Loc);

  //===------------------------------------------------------------------===//
  // Members
  //===------------------------------------------------------------------===//
  const Program &Prog;
  DiagnosticEngine &Diags;
  const ProcDecl &Proc;
  TermArena Arena;
  SymEvaluator SEval;
  std::set<std::string> ParamNames;
  bool Failed = false;
  unsigned Obligations = 0;
  unsigned FreshCounter = 0;
  ProofLog *PLog = nullptr; ///< certificate recording sink (may be null)
  /// Whether divergent guard records being joined may still be summarized
  /// as PRE-respecting (true for low conditions, false for high ones).
  bool JoinChunksRelatable = true;

  std::string hint(const std::string &Base) {
    return Base + "$" + std::to_string(FreshCounter++);
  }
};

//===----------------------------------------------------------------------===//
// Contract production / consumption
//===----------------------------------------------------------------------===//

void ProcContext::produceContract(
    const Contract &C, VState &S,
    const std::map<std::string, std::string> &HandleMap,
    const std::map<std::string, std::pair<TermRef, TermRef>> &ArgBindings,
    const std::string &Hint, const SymEnv *BaseL, const SymEnv *BaseR,
    bool ExportBindings) {
  const SymEnv &SrcL = BaseL ? *BaseL : S.L;
  const SymEnv &SrcR = BaseR ? *BaseR : S.R;
  // Spec-variable bindings introduced by guard atoms of this contract.
  std::map<std::string, std::pair<TermRef, TermRef>> Bound = ArgBindings;
  // First pass: find allpre'd spec vars so guard installation knows.
  std::set<std::string> AllPreVars;
  for (const ContractAtom &A : C)
    if (A.AtomKind == ContractAtom::Kind::AllPre)
      AllPreVars.insert(A.ArgVar);

  auto EnvWith = [&](bool Left) {
    SymEnv Env = Left ? SrcL : SrcR;
    for (const auto &[Name, LR] : Bound)
      Env[Name] = Left ? LR.first : LR.second;
    return Env;
  };

  for (const ContractAtom &A : C) {
    switch (A.AtomKind) {
    case ContractAtom::Kind::Low: {
      SymEnv EnvL = EnvWith(true), EnvR = EnvWith(false);
      if (A.Cond) {
        TermRef CL = SEval.eval(*A.Cond, EnvL);
        TermRef CR = SEval.eval(*A.Cond, EnvR);
        S.Facts.assumeEq(CL, CR);
        TermRef Def = Arena.constant(ValueFactory::unit());
        S.Facts.assumeEq(
            Arena.builtin(BuiltinKind::Ite,
                          {CL, SEval.eval(*A.E, EnvL), Def}),
            Arena.builtin(BuiltinKind::Ite,
                          {CR, SEval.eval(*A.E, EnvR), Def}));
        break;
      }
      S.Facts.assumeEq(SEval.eval(*A.E, EnvL), SEval.eval(*A.E, EnvR));
      break;
    }
    case ContractAtom::Kind::Bool: {
      SymEnv EnvL = EnvWith(true), EnvR = EnvWith(false);
      S.Facts.assumeTrue(SEval.eval(*A.E, EnvL));
      S.Facts.assumeTrue(SEval.eval(*A.E, EnvR));
      break;
    }
    case ContractAtom::Kind::SGuard:
    case ContractAtom::Kind::UGuard: {
      const ActionDecl *Action = atomAction(A, S, HandleMap);
      if (!Action)
        break;
      std::string Handle = mapHandle(HandleMap, A.Res);
      GuardRt &G = S.Guards[{Handle, A.Action}];
      G.Action = Action;
      Frac Added = A.AtomKind == ContractAtom::Kind::SGuard
                       ? Frac::make(A.FracNum, A.FracDen)
                       : Frac::make(1, 1);
      G.Held = G.Held + Added;
      if (Frac::make(1, 1) < G.Held) {
        error(DiagCode::VerifyResourceState, A.Loc,
              "guard fraction for action '" + A.Action + "' exceeds 1");
      }
      if (!A.ArgsEmpty && !A.ArgVar.empty()) {
        GuardChunk Chunk = freshSummary(*Action, Hint + "_" + A.Action,
                                        AllPreVars.count(A.ArgVar) != 0);
        if (Chunk.AllPre)
          assumeAllPreFacts(*Action, Chunk, S.Facts);
        Bound[A.ArgVar] = {Chunk.ColL, Chunk.ColR};
        G.Chunks.push_back(Chunk);
      }
      break;
    }
    case ContractAtom::Kind::AllPre:
      break; // handled via AllPreVars
    }
  }
  // Export spec-var bindings so later contract clauses can reference them.
  if (ExportBindings) {
    for (const auto &[Name, LR] : Bound) {
      S.L[Name] = LR.first;
      S.R[Name] = LR.second;
    }
  }
}

bool ProcContext::consumeContract(
    const Contract &C, VState &S,
    const std::map<std::string, std::string> &HandleMap, const char *What,
    SourceLoc FallbackLoc) {
  bool Ok = true;
  std::map<std::string, std::pair<TermRef, TermRef>> Bound;

  auto EnvWith = [&](const SymEnv &Base, bool Left) {
    SymEnv Env = Base;
    for (const auto &[Name, LR] : Bound)
      Env[Name] = Left ? LR.first : LR.second;
    return Env;
  };

  for (const ContractAtom &A : C) {
    SourceLoc Loc = A.Loc.isValid() ? A.Loc : FallbackLoc;
    switch (A.AtomKind) {
    case ContractAtom::Kind::Low: {
      ObligationScope Ob(PLog, std::string(What) + ": " + A.str());
      ++Obligations;
      SymEnv EnvL = EnvWith(S.L, true), EnvR = EnvWith(S.R, false);
      if (A.Cond) {
        TermRef CL = SEval.eval(*A.Cond, EnvL);
        TermRef CR = SEval.eval(*A.Cond, EnvR);
        TermRef Def = Arena.constant(ValueFactory::unit());
        bool Proved =
            S.Facts.provesEq(CL, CR) &&
            S.Facts.provesEq(
                Arena.builtin(BuiltinKind::Ite,
                              {CL, SEval.eval(*A.E, EnvL), Def}),
                Arena.builtin(BuiltinKind::Ite,
                              {CR, SEval.eval(*A.E, EnvR), Def}));
        if (!Proved) {
          error(DiagCode::VerifyEntailment, Loc,
                std::string(What) + ": cannot prove " + A.str());
          Ok = false;
        }
        break;
      }
      if (!S.Facts.provesEq(SEval.eval(*A.E, EnvL),
                            SEval.eval(*A.E, EnvR))) {
        error(DiagCode::VerifyEntailment, Loc,
              std::string(What) + ": cannot prove " + A.str());
        Ok = false;
      }
      break;
    }
    case ContractAtom::Kind::Bool: {
      ObligationScope Ob(PLog, std::string(What) + ": " + A.str());
      ++Obligations;
      SymEnv EnvL = EnvWith(S.L, true), EnvR = EnvWith(S.R, false);
      if (!S.Facts.provesTrue(SEval.eval(*A.E, EnvL)) ||
          !S.Facts.provesTrue(SEval.eval(*A.E, EnvR))) {
        error(DiagCode::VerifyEntailment, Loc,
              std::string(What) + ": cannot prove " + A.str());
        Ok = false;
      }
      break;
    }
    case ContractAtom::Kind::SGuard:
    case ContractAtom::Kind::UGuard: {
      ObligationScope Ob(PLog, std::string(What) + ": " + A.str());
      ++Obligations;
      const ActionDecl *Action = atomAction(A, S, HandleMap);
      if (!Action) {
        Ok = false;
        break;
      }
      std::string Handle = mapHandle(HandleMap, A.Res);
      auto It = S.Guards.find({Handle, A.Action});
      Frac Want = A.AtomKind == ContractAtom::Kind::SGuard
                      ? Frac::make(A.FracNum, A.FracDen)
                      : Frac::make(1, 1);
      if (It == S.Guards.end() || !(It->second.Held == Want)) {
        error(DiagCode::VerifyGuardMissing, Loc,
              std::string(What) + ": guard for action '" + A.Action +
                  "' not held with fraction " + Want.str());
        Ok = false;
        break;
      }
      if (A.ArgsEmpty) {
        if (!It->second.Chunks.empty()) {
          error(DiagCode::VerifyEntailment, Loc,
                std::string(What) + ": guard for action '" + A.Action +
                    "' must have an empty argument record");
          Ok = false;
        }
      } else if (!A.ArgVar.empty()) {
        Bound[A.ArgVar] = guardArgsTerm(It->second);
      }
      break;
    }
    case ContractAtom::Kind::AllPre: {
      ObligationScope Ob(PLog, std::string(What) + ": " + A.str());
      ++Obligations;
      const ActionDecl *Action = atomAction(A, S, HandleMap);
      if (!Action) {
        Ok = false;
        break;
      }
      std::string Handle = mapHandle(HandleMap, A.Res);
      auto It = S.Guards.find({Handle, A.Action});
      if (It == S.Guards.end() || !checkAllPre(It->second, S.Facts)) {
        error(DiagCode::VerifyPreUnprovable, Loc,
              std::string(What) + ": cannot prove " + A.str() +
                  " (a recorded application's relational precondition is "
                  "not derivable)");
        Ok = false;
      }
      break;
    }
    }
  }
  return Ok;
}

//===----------------------------------------------------------------------===//
// Command checking
//===----------------------------------------------------------------------===//

void ProcContext::checkCmd(const CommandRef &C, VState &S) {
  for (const ExprRef &E : C->Exprs)
    releaseDeclassified(E, S);
  switch (C->Kind) {
  case CmdKind::Skip:
    break;
  case CmdKind::VarDecl: {
    if (C->Exprs.empty()) {
      TermRef D = Arena.constant(C->DeclTy->defaultValue());
      S.L[C->Var] = D;
      S.R[C->Var] = D;
    } else {
      S.L[C->Var] = evalL(*C->Exprs[0], S);
      S.R[C->Var] = evalR(*C->Exprs[0], S);
    }
    break;
  }
  case CmdKind::Assign:
    setVar(S, C->Var, evalL(*C->Exprs[0], S), evalR(*C->Exprs[0], S),
           C->Loc);
    break;
  case CmdKind::Alloc: {
    // Deterministic allocator model: one location symbol for both sides.
    TermRef Loc = Arena.freshSym(hint("loc"), Type::intTy());
    S.Heap.push_back({Loc, evalL(*C->Exprs[0], S), evalR(*C->Exprs[0], S)});
    setVar(S, C->Var, Loc, Loc, C->Loc);
    break;
  }
  case CmdKind::HeapRead: {
    TermRef Addr = evalL(*C->Exprs[0], S);
    for (const HeapCell &Cell : S.Heap) {
      if (Cell.Loc == Addr || S.Facts.provesEq(Cell.Loc, Addr)) {
        setVar(S, C->Var, Cell.ValL, Cell.ValR, C->Loc);
        return;
      }
    }
    error(DiagCode::VerifyHeap, C->Loc,
          "heap read without permission to the location");
    break;
  }
  case CmdKind::HeapWrite: {
    TermRef Addr = evalL(*C->Exprs[0], S);
    for (HeapCell &Cell : S.Heap) {
      if (Cell.Loc == Addr || S.Facts.provesEq(Cell.Loc, Addr)) {
        Cell.ValL = evalL(*C->Exprs[1], S);
        Cell.ValR = evalR(*C->Exprs[1], S);
        return;
      }
    }
    error(DiagCode::VerifyHeap, C->Loc,
          "heap write without permission to the location");
    break;
  }
  case CmdKind::Block:
    checkBlock(C, S);
    break;
  case CmdKind::If:
    checkIf(C, S);
    break;
  case CmdKind::While:
    checkWhile(C, S);
    break;
  case CmdKind::Par:
    checkPar(C, S);
    break;
  case CmdKind::CallProc:
    checkCall(C, S);
    break;
  case CmdKind::Share:
    checkShare(C, S);
    break;
  case CmdKind::Unshare:
    checkUnshare(C, S);
    break;
  case CmdKind::Atomic:
    checkAtomic(C, S);
    break;
  case CmdKind::Perform:
  case CmdKind::ResVal:
    error(DiagCode::VerifyResourceState, C->Loc,
          "perform/resval outside atomic block");
    break;
  case CmdKind::AssertGhost:
    consumeContract(C->Asserted, S, {}, "assert", C->Loc);
    break;
  case CmdKind::Output: {
    // Outputs go to the public channel: the emitted value must be low at
    // the point of emission (the paper's I/O extension, Sec. 3.7 (4)).
    ObligationScope Ob(PLog, "output: " + C->Exprs[0]->str());
    ++Obligations;
    if (!S.Facts.provesEq(evalL(*C->Exprs[0], S), evalR(*C->Exprs[0], S)))
      error(DiagCode::VerifyEntailment, C->Loc,
            "output to the public channel must be low: " +
                C->Exprs[0]->str());
    break;
  }
  }
}

void ProcContext::havocModified(const Command &Cmd, VState &S,
                                const std::vector<VState *> &LowWitnesses) {
  std::vector<std::string> Mods;
  Cmd.modifiedVars(Mods);
  for (const std::string &V : Mods) {
    if (!S.L.count(V))
      continue;
    bool Low = !LowWitnesses.empty();
    for (VState *W : LowWitnesses) {
      auto ItL = W->L.find(V);
      auto ItR = W->R.find(V);
      if (ItL == W->L.end() || ItR == W->R.end() ||
          !W->Facts.provesEq(ItL->second, ItR->second)) {
        Low = false;
        break;
      }
    }
    auto [L, R] = Low ? freshLow(hint(V)) : freshPair(hint(V));
    S.L[V] = L;
    S.R[V] = R;
  }
}

void ProcContext::joinGuards(VState &S, VState &A, VState &B, SourceLoc Loc) {
  // The set of guard keys must agree (share inside a branch is rejected
  // up front).
  for (auto &[Key, GA] : A.Guards) {
    auto ItB = B.Guards.find(Key);
    if (ItB == B.Guards.end()) {
      error(DiagCode::VerifyResourceState, Loc,
            "guard for '" + Key.second + "' exists in only one branch");
      continue;
    }
    GuardRt &GB = ItB->second;
    if (!(GA.Held == GB.Held)) {
      error(DiagCode::VerifyResourceState, Loc,
            "branches hold different fractions of the guard for '" +
                Key.second + "'");
      continue;
    }
    GuardRt Joined;
    Joined.Action = GA.Action;
    Joined.Held = GA.Held;
    if (GA.sameAs(GB)) {
      // Identical recorded applications: keep them, but re-discharge their
      // preconditions against the join facts (mixed pairings of a high
      // conditional may not satisfy branch-local assumptions).
      Joined.Chunks = GA.Chunks;
      for (GuardChunk &Ch : Joined.Chunks)
        if (!Ch.IsSummary)
          Ch.PreOk = dischargePre(*GA.Action, Ch.ArgL, Ch.ArgR, S.Facts,
                                  /*Required=*/false);
    } else {
      bool AllPre = true;
      VState *Branches[2] = {&A, &B};
      GuardRt *Gs[2] = {&GA, &GB};
      for (int I = 0; I < 2; ++I)
        AllPre &= checkAllPre(*Gs[I], Branches[I]->Facts,
                              /*Required=*/false);
      // Mixed pairings additionally require the count to be unaffected by
      // the (possibly high) branch condition; a divergent record cannot
      // guarantee that, so the summary is tainted unless the branch was
      // low — the caller passes HighJoin accordingly via AllPre &= ...
      GuardChunk Sum = freshSummary(*GA.Action, hint("join_" + Key.second),
                                    AllPre && JoinChunksRelatable);
      if (Sum.AllPre)
        assumeAllPreFacts(*GA.Action, Sum, S.Facts);
      Joined.Chunks = {Sum};
    }
    S.Guards[Key] = std::move(Joined);
  }
}

namespace {
/// Whether the subtree contains an `output` statement (calls are opaque:
/// callee outputs are governed by the callee's own verification context,
/// so a call under a high condition is also rejected when its callee may
/// output — conservatively, any call counts).
bool mayEmitOutput(const Command &Cmd, const Program &Prog,
                   unsigned Depth = 8) {
  if (Cmd.Kind == CmdKind::Output)
    return true;
  if (Cmd.Kind == CmdKind::CallProc && Depth > 0) {
    if (const ProcDecl *Callee = Prog.findProc(Cmd.Aux))
      return mayEmitOutput(*Callee->Body, Prog, Depth - 1);
    return true;
  }
  for (const CommandRef &Child : Cmd.Children)
    if (mayEmitOutput(*Child, Prog, Depth))
      return true;
  return false;
}
} // namespace

void ProcContext::checkIf(const CommandRef &C, VState &S) {
  TermRef CondL = evalL(*C->Exprs[0], S);
  TermRef CondR = evalR(*C->Exprs[0], S);
  bool LowCond = S.Facts.provesEq(CondL, CondR);
  if (!LowCond &&
      (mayEmitOutput(*C->Children[0], Prog) ||
       mayEmitOutput(*C->Children[1], Prog)))
    error(DiagCode::VerifyHighBranchEffect, C->Loc,
          "output under a secret-dependent condition: the presence of the "
          "emission would leak through the public trace");

  VState Then = S;
  Then.Facts.assumeTrue(CondL);
  Then.Facts.assumeTrue(CondR);
  checkCmd(C->Children[0], Then);

  VState Else = S;
  Else.Facts.assumeTrue(Arena.logNot(CondL));
  Else.Facts.assumeTrue(Arena.logNot(CondR));
  checkCmd(C->Children[1], Else);

  // Join variables with Ite terms: per execution side this is exactly the
  // value the variable takes, so mixed branch pairings of a high condition
  // are modeled precisely (lowness of the join requires a low condition).
  std::vector<std::string> Mods;
  C->modifiedVars(Mods);
  for (const std::string &V : Mods) {
    if (!S.L.count(V))
      continue;
    if (Then.L[V] == Else.L[V] && Then.R[V] == Else.R[V]) {
      S.L[V] = Then.L[V];
      S.R[V] = Then.R[V];
      continue;
    }
    TermRef JL = Arena.builtin(BuiltinKind::Ite, {CondL, Then.L[V],
                                                  Else.L[V]});
    TermRef JR = Arena.builtin(BuiltinKind::Ite, {CondR, Then.R[V],
                                                  Else.R[V]});
    // Transfer lowness established inside the branches (e.g. from callee
    // contracts) — sound only when the branches are aligned (low cond).
    if (LowCond && Then.Facts.provesEq(Then.L[V], Then.R[V]) &&
        Else.Facts.provesEq(Else.L[V], Else.R[V]))
      S.Facts.assumeEq(JL, JR);
    S.L[V] = JL;
    S.R[V] = JR;
  }

  // If1 with identical branch-end facts is rare; conservatively keep only
  // the pre-branch facts plus the lowness transferred above.
  JoinChunksRelatable = LowCond;
  joinGuards(S, Then, Else, C->Loc);
  JoinChunksRelatable = true;

  // Heap join: keep cells whose location exists in both branch heaps.
  std::vector<HeapCell> Joined;
  for (const HeapCell &CellT : Then.Heap) {
    for (const HeapCell &CellE : Else.Heap) {
      if (CellT.Loc != CellE.Loc)
        continue;
      HeapCell NewCell;
      NewCell.Loc = CellT.Loc;
      if (CellT.ValL == CellE.ValL && CellT.ValR == CellE.ValR) {
        NewCell.ValL = CellT.ValL;
        NewCell.ValR = CellT.ValR;
      } else {
        NewCell.ValL = Arena.builtin(BuiltinKind::Ite,
                                     {CondL, CellT.ValL, CellE.ValL});
        NewCell.ValR = Arena.builtin(BuiltinKind::Ite,
                                     {CondR, CellT.ValR, CellE.ValR});
        if (LowCond && Then.Facts.provesEq(CellT.ValL, CellT.ValR) &&
            Else.Facts.provesEq(CellE.ValL, CellE.ValR))
          S.Facts.assumeEq(NewCell.ValL, NewCell.ValR);
      }
      Joined.push_back(NewCell);
      break;
    }
  }
  S.Heap = std::move(Joined);
}

void ProcContext::checkWhile(const CommandRef &C, VState &S) {
  const CommandRef &Body = C->Children[0];

  // 1. The invariant must hold on entry.
  for (const Contract &Inv : C->Invariants)
    consumeContract(Inv, S, {}, "loop invariant (entry)", C->Loc);

  // Guards mentioned in the invariant (by handle + action).
  std::set<GuardKey> InvGuards;
  std::set<std::string> AllPreVars;
  for (const Contract &Inv : C->Invariants)
    for (const ContractAtom &A : Inv)
      if (A.AtomKind == ContractAtom::Kind::SGuard ||
          A.AtomKind == ContractAtom::Kind::UGuard)
        InvGuards.insert({A.Res, A.Action});

  // 2. Build the arbitrary-iteration state: havoc modified variables and
  // reset invariant guards to fresh summaries, then assume the invariant.
  auto MakeInvState = [&](VState &Target) {
    havocModified(*C, Target, {});
    for (const GuardKey &Key : InvGuards) {
      auto It = Target.Guards.find(Key);
      if (It == Target.Guards.end())
        continue;
      It->second.Held = Frac{0, 1}; // re-granted by produceContract
      It->second.Chunks.clear();
    }
    for (const Contract &Inv : C->Invariants)
      produceContract(Inv, Target, {}, {}, hint("inv"));
  };

  VState Iter = S;
  MakeInvState(Iter);
  releaseDeclassified(C->Exprs[0], Iter);
  TermRef CondL = evalL(*C->Exprs[0], Iter);
  TermRef CondR = evalR(*C->Exprs[0], Iter);
  bool LowCond = Iter.Facts.provesEq(CondL, CondR);

  if (!LowCond && mayEmitOutput(*Body, Prog))
    error(DiagCode::VerifyHighBranchEffect, C->Loc,
          "output inside a loop with a secret-dependent condition: the "
          "number of emissions would leak through the public trace");
  if (!LowCond) {
    // While2: the invariant must be unary — no relational atoms.
    for (const Contract &Inv : C->Invariants) {
      for (const ContractAtom &A : Inv) {
        if (A.AtomKind == ContractAtom::Kind::Low ||
            A.AtomKind == ContractAtom::Kind::AllPre) {
          error(DiagCode::VerifyHighBranchEffect, A.Loc,
                "loop condition may depend on a secret; the invariant must "
                "be unary but contains " +
                    A.str());
        }
      }
    }
  }

  // 3. Verify the body from the arbitrary iteration.
  VState BodyState = Iter;
  BodyState.Facts.assumeTrue(CondL);
  BodyState.Facts.assumeTrue(CondR);
  std::map<GuardKey, GuardRt> EntryGuards = BodyState.Guards;
  checkCmd(Body, BodyState);

  // 4. The invariant must be preserved.
  for (const Contract &Inv : C->Invariants)
    consumeContract(Inv, BodyState, {}, "loop invariant (preservation)",
                    C->Loc);

  // Guards not covered by the invariant must be untouched by the body.
  for (const auto &[Key, G] : BodyState.Guards) {
    if (InvGuards.count(Key))
      continue;
    auto It = EntryGuards.find(Key);
    bool Same = It != EntryGuards.end() && G.sameAs(It->second);
    if (!Same)
      error(DiagCode::VerifyGuardMissing, C->Loc,
            "loop body modifies the guard for '" + Key.second +
                "' which is not covered by a loop invariant");
  }

  // 5. Continue after the loop from a fresh arbitrary iteration plus the
  // negated condition. For While2 (high condition), havoced variables are
  // unrelated across the executions (unary postcondition).
  MakeInvState(S);
  // Taint invariant guards after a high loop: counts may differ.
  if (!LowCond) {
    for (const GuardKey &Key : InvGuards) {
      auto It = S.Guards.find(Key);
      if (It == S.Guards.end())
        continue;
      for (GuardChunk &Ch : It->second.Chunks)
        Ch.AllPre = false;
    }
  }
  releaseDeclassified(C->Exprs[0], S);
  TermRef PostCondL = evalL(*C->Exprs[0], S);
  TermRef PostCondR = evalR(*C->Exprs[0], S);
  S.Facts.assumeTrue(Arena.logNot(PostCondL));
  S.Facts.assumeTrue(Arena.logNot(PostCondR));
}

} // namespace

//===----------------------------------------------------------------------===//
// The remaining command handlers and the public interface live in
// VerifierOps.cpp to keep translation units manageable.
//===----------------------------------------------------------------------===//

#include "verifier/VerifierImpl.inc"
