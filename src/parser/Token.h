//===-- parser/Token.h - Tokens of the surface language ---------*- C++ -*-===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Token kinds produced by the lexer for the `.hv` surface language.
///
//===----------------------------------------------------------------------===//

#ifndef COMMCSL_PARSER_TOKEN_H
#define COMMCSL_PARSER_TOKEN_H

#include "support/SourceLoc.h"

#include <cstdint>
#include <string>

namespace commcsl {

enum class TokenKind : uint8_t {
  Eof,
  Identifier,
  IntLiteral,
  StringLiteral,

  // Keywords.
  KwFunction,
  KwResource,
  KwProcedure,
  KwReturns,
  KwRequires,
  KwEnsures,
  KwInvariant,
  KwState,
  KwAlpha,
  KwAction,
  KwShared,
  KwUnique,
  KwApply,
  KwScope,
  KwVar,
  KwSkip,
  KwIf,
  KwElse,
  KwWhile,
  KwPar,
  KwAnd,
  KwShare,
  KwUnshare,
  KwAtomic,
  KwPerform,
  KwResVal,
  KwAssert,
  KwCall,
  KwOutput,
  KwLow,
  KwLevel,
  KwThen,
  KwHigh,
  KwSGuard,
  KwUGuard,
  KwAllPre,
  KwEmpty,
  KwTrue,
  KwFalse,
  KwUnit, ///< `unit`: both the literal and the type, disambiguated by context
  KwAlloc,
  // Type keywords.
  KwInt,
  KwBool,
  KwString,
  KwPair,
  KwSeq,
  KwSet,
  KwMset,
  KwMap,
  KwResourceTy, ///< `resource<Spec>` in parameter types

  // Punctuation & operators.
  LParen,
  RParen,
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  Comma,
  Semi,
  Colon,
  Dot,
  DotDot,
  Assign, ///< :=
  Plus,
  Minus,
  Star,
  Slash,
  Percent,
  EqEq,
  NotEq,
  Less,
  LessEq,
  Greater,
  GreaterEq,
  AmpAmp,
  PipePipe,
  Bang,
  Arrow, ///< ==>
};

/// Printable name of a token kind for diagnostics.
const char *tokenKindName(TokenKind Kind);

/// A lexed token.
struct Token {
  TokenKind Kind = TokenKind::Eof;
  SourceLoc Loc;
  std::string Text;  ///< identifier / string literal payload
  int64_t IntVal = 0;

  bool is(TokenKind K) const { return Kind == K; }
};

} // namespace commcsl

#endif // COMMCSL_PARSER_TOKEN_H
