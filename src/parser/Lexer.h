//===-- parser/Lexer.h - Lexer for the surface language ---------*- C++ -*-===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-written lexer for the `.hv` surface language. Supports `//` line
/// comments and `/* */` block comments.
///
//===----------------------------------------------------------------------===//

#ifndef COMMCSL_PARSER_LEXER_H
#define COMMCSL_PARSER_LEXER_H

#include "parser/Token.h"
#include "support/Diagnostics.h"

#include <string>
#include <vector>

namespace commcsl {

/// Lexes a whole buffer into a token vector (terminated by an Eof token).
class Lexer {
public:
  Lexer(std::string Source, DiagnosticEngine &Diags)
      : Source(std::move(Source)), Diags(Diags) {}

  /// Lexes the entire buffer. Errors are reported to the diagnostic engine;
  /// lexing continues after an error by skipping the offending character.
  std::vector<Token> lexAll();

private:
  char peek(size_t Ahead = 0) const {
    return Pos + Ahead < Source.size() ? Source[Pos + Ahead] : '\0';
  }
  char advance();
  bool match(char C);
  SourceLoc loc() const { return SourceLoc(Line, Column); }
  void skipWhitespaceAndComments();
  Token lexToken();
  Token makeToken(TokenKind Kind, SourceLoc Loc) const;

  std::string Source;
  DiagnosticEngine &Diags;
  size_t Pos = 0;
  uint32_t Line = 1;
  uint32_t Column = 1;
};

} // namespace commcsl

#endif // COMMCSL_PARSER_LEXER_H
