//===-- parser/Parser.h - Parser for the surface language -------*- C++ -*-===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser for the `.hv` surface language: resource
/// specifications, pure functions, and procedures with relational contracts.
/// See examples/programs/*.hv for the concrete syntax.
///
//===----------------------------------------------------------------------===//

#ifndef COMMCSL_PARSER_PARSER_H
#define COMMCSL_PARSER_PARSER_H

#include "lang/Program.h"
#include "parser/Token.h"
#include "support/Diagnostics.h"

#include <vector>

namespace commcsl {

/// Parses a token stream into a Program. Parse errors are reported to the
/// diagnostic engine; the parser recovers at statement/declaration
/// boundaries so multiple errors can be reported in one run.
class Parser {
public:
  Parser(std::vector<Token> Tokens, DiagnosticEngine &Diags)
      : Tokens(std::move(Tokens)), Diags(Diags) {}

  /// Parses the whole buffer. Check `Diags.hasErrors()` before using the
  /// result.
  Program parseProgram();

  /// Convenience: lex + parse a source string.
  static Program parse(const std::string &Source, DiagnosticEngine &Diags);

private:
  // Token helpers ----------------------------------------------------------
  const Token &peek(size_t Ahead = 0) const {
    size_t I = Index + Ahead;
    return I < Tokens.size() ? Tokens[I] : Tokens.back();
  }
  const Token &advance() {
    const Token &T = peek();
    if (Index + 1 < Tokens.size())
      ++Index;
    return T;
  }
  bool check(TokenKind Kind) const { return peek().is(Kind); }
  bool accept(TokenKind Kind) {
    if (!check(Kind))
      return false;
    advance();
    return true;
  }
  bool expect(TokenKind Kind, const char *Context);
  void error(const std::string &Msg);
  void syncToStatement();
  void syncToDecl();

  // Declarations -----------------------------------------------------------
  void parseFunction(Program &Prog);
  void parseResource(Program &Prog);
  void parseProcedure(Program &Prog);
  bool parseParamList(std::vector<Param> &Out);
  TypeRef parseType();
  int64_t parseSignedInt();

  // Contracts ---------------------------------------------------------------
  Contract parseConjuncts();
  bool parseAtom(Contract &Out);
  /// Parses `R.A` in guard atoms.
  bool parseResAction(std::string &Res, std::string &Action);

  // Statements ---------------------------------------------------------------
  CommandRef parseBlock();
  CommandRef parseStatement();
  CommandRef parseAssignLike();

  // Expressions ---------------------------------------------------------------
  ExprRef parseExpr();            // full precedence incl. &&, ||, ==>
  ExprRef parseImplies();
  ExprRef parseOr(bool AllowAnd); // AllowAnd=false inside contract atoms
  ExprRef parseAnd();
  ExprRef parseRelational();
  ExprRef parseAdditive();
  ExprRef parseMultiplicative();
  ExprRef parseUnary();
  ExprRef parsePrimary();
  std::vector<ExprRef> parseArgs();

  std::vector<Token> Tokens;
  DiagnosticEngine &Diags;
  size_t Index = 0;
};

} // namespace commcsl

#endif // COMMCSL_PARSER_PARSER_H
