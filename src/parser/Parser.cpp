//===-- parser/Parser.cpp - Parser for the surface language ----------------===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//

#include "parser/Parser.h"

#include "parser/Lexer.h"

using namespace commcsl;

//===----------------------------------------------------------------------===//
// Helpers
//===----------------------------------------------------------------------===//

void Parser::error(const std::string &Msg) {
  Diags.error(DiagCode::ParseError, peek().Loc, Msg);
}

bool Parser::expect(TokenKind Kind, const char *Context) {
  if (accept(Kind))
    return true;
  error(std::string("expected ") + tokenKindName(Kind) + " " + Context +
        ", found " + tokenKindName(peek().Kind));
  return false;
}

void Parser::syncToStatement() {
  while (!check(TokenKind::Eof)) {
    if (accept(TokenKind::Semi))
      return;
    if (check(TokenKind::RBrace) || check(TokenKind::LBrace))
      return;
    advance();
  }
}

void Parser::syncToDecl() {
  while (!check(TokenKind::Eof)) {
    if (check(TokenKind::KwFunction) || check(TokenKind::KwProcedure) ||
        check(TokenKind::KwResourceTy))
      return;
    advance();
  }
}

Program Parser::parse(const std::string &Source, DiagnosticEngine &Diags) {
  Lexer Lex(Source, Diags);
  Parser P(Lex.lexAll(), Diags);
  return P.parseProgram();
}

//===----------------------------------------------------------------------===//
// Top level
//===----------------------------------------------------------------------===//

Program Parser::parseProgram() {
  Program Prog;
  while (!check(TokenKind::Eof)) {
    if (check(TokenKind::KwFunction)) {
      parseFunction(Prog);
    } else if (check(TokenKind::KwResourceTy)) {
      parseResource(Prog);
    } else if (check(TokenKind::KwProcedure)) {
      parseProcedure(Prog);
    } else {
      error("expected 'function', 'resource', or 'procedure' at top level");
      syncToDecl();
    }
  }
  return Prog;
}

void Parser::parseFunction(Program &Prog) {
  FuncDecl F;
  F.Loc = peek().Loc;
  expect(TokenKind::KwFunction, "at function declaration");
  if (!check(TokenKind::Identifier)) {
    error("expected function name");
    syncToDecl();
    return;
  }
  F.Name = advance().Text;
  expect(TokenKind::LParen, "after function name");
  if (!check(TokenKind::RParen))
    parseParamList(F.Params);
  expect(TokenKind::RParen, "after function parameters");
  expect(TokenKind::Colon, "before function result type");
  F.RetTy = parseType();
  expect(TokenKind::EqEq, "before function body");
  F.Body = parseExpr();
  expect(TokenKind::Semi, "after function body");
  if (F.RetTy && F.Body)
    Prog.Funcs.push_back(std::move(F));
}

void Parser::parseResource(Program &Prog) {
  ResourceSpecDecl S;
  S.Loc = peek().Loc;
  expect(TokenKind::KwResourceTy, "at resource declaration");
  if (!check(TokenKind::Identifier)) {
    error("expected resource name");
    syncToDecl();
    return;
  }
  S.Name = advance().Text;
  expect(TokenKind::LBrace, "after resource name");

  bool SawState = false, SawAlpha = false;
  while (!check(TokenKind::RBrace) && !check(TokenKind::Eof)) {
    if (accept(TokenKind::KwState)) {
      expect(TokenKind::Colon, "after 'state'");
      S.StateTy = parseType();
      expect(TokenKind::Semi, "after state type");
      SawState = true;
      continue;
    }
    if (accept(TokenKind::KwAlpha)) {
      expect(TokenKind::LParen, "after 'alpha'");
      if (check(TokenKind::Identifier))
        S.AlphaParam = advance().Text;
      else
        error("expected alpha parameter name");
      expect(TokenKind::RParen, "after alpha parameter");
      expect(TokenKind::EqEq, "before alpha body");
      S.Alpha = parseExpr();
      expect(TokenKind::Semi, "after alpha body");
      SawAlpha = true;
      continue;
    }
    if (check(TokenKind::Identifier) && peek().Text == "inv") {
      advance();
      expect(TokenKind::LParen, "after 'inv'");
      if (check(TokenKind::Identifier)) {
        std::string P = advance().Text;
        if (S.AlphaParam.empty())
          S.AlphaParam = P;
        else if (P != S.AlphaParam)
          error("inv parameter name must match alpha's");
      }
      expect(TokenKind::RParen, "after inv parameter");
      expect(TokenKind::EqEq, "before inv body");
      S.Inv = parseExpr();
      expect(TokenKind::Semi, "after inv body");
      continue;
    }
    if (accept(TokenKind::KwScope)) {
      if (accept(TokenKind::KwInt)) {
        S.ScopeIntLo = parseSignedInt();
        expect(TokenKind::DotDot, "in integer scope range");
        S.ScopeIntHi = parseSignedInt();
      } else if (check(TokenKind::Identifier) && peek().Text == "size") {
        advance();
        S.ScopeCollectionBound = static_cast<unsigned>(parseSignedInt());
      } else {
        error("expected 'int lo..hi' or 'size n' after 'scope'");
      }
      expect(TokenKind::Semi, "after scope hint");
      continue;
    }
    if (check(TokenKind::KwShared) || check(TokenKind::KwUnique)) {
      ActionDecl A;
      A.Loc = peek().Loc;
      A.Unique = advance().is(TokenKind::KwUnique);
      expect(TokenKind::KwAction, "after 'shared'/'unique'");
      if (check(TokenKind::Identifier))
        A.Name = advance().Text;
      else
        error("expected action name");
      expect(TokenKind::LParen, "after action name");
      if (check(TokenKind::Identifier))
        A.ArgName = advance().Text;
      else
        error("expected action argument name");
      expect(TokenKind::Colon, "after action argument name");
      A.ArgTy = parseType();
      expect(TokenKind::RParen, "after action argument");
      expect(TokenKind::LBrace, "at action body");
      while (!check(TokenKind::RBrace) && !check(TokenKind::Eof)) {
        if (accept(TokenKind::KwApply)) {
          expect(TokenKind::LParen, "after 'apply'");
          if (check(TokenKind::Identifier))
            A.StateName = advance().Text;
          else
            error("expected state parameter name");
          expect(TokenKind::Comma, "in apply parameters");
          if (check(TokenKind::Identifier)) {
            std::string ArgName = advance().Text;
            if (!A.ArgName.empty() && ArgName != A.ArgName)
              error("apply argument name must match the action argument");
          }
          expect(TokenKind::RParen, "after apply parameters");
          expect(TokenKind::EqEq, "before apply body");
          A.Apply = parseExpr();
          expect(TokenKind::Semi, "after apply body");
          continue;
        }
        if (accept(TokenKind::KwReturns)) {
          expect(TokenKind::LParen, "after 'returns'");
          if (check(TokenKind::Identifier)) {
            std::string StateName = advance().Text;
            if (!A.StateName.empty() && StateName != A.StateName)
              error("returns state name must match apply's");
            if (A.StateName.empty())
              A.StateName = StateName;
          }
          expect(TokenKind::Comma, "in returns parameters");
          if (check(TokenKind::Identifier))
            advance();
          expect(TokenKind::RParen, "after returns parameters");
          expect(TokenKind::EqEq, "before returns body");
          A.Returns = parseExpr();
          expect(TokenKind::Semi, "after returns body");
          continue;
        }
        if (accept(TokenKind::KwRequires)) {
          Contract Pre = parseConjuncts();
          A.Pre.insert(A.Pre.end(), Pre.begin(), Pre.end());
          expect(TokenKind::Semi, "after action precondition");
          continue;
        }
        if (check(TokenKind::Identifier) &&
            (peek().Text == "enabled" || peek().Text == "history")) {
          bool IsEnabled = advance().Text == "enabled";
          expect(TokenKind::LParen, "after 'enabled'/'history'");
          if (check(TokenKind::Identifier)) {
            std::string StateName = advance().Text;
            if (A.StateName.empty())
              A.StateName = StateName;
            else if (StateName != A.StateName)
              error("state parameter name must match apply's");
          }
          expect(TokenKind::RParen, "after state parameter");
          expect(TokenKind::EqEq, "before clause body");
          ExprRef Body = parseExpr();
          expect(TokenKind::Semi, "after clause body");
          (IsEnabled ? A.Enabled : A.History) = std::move(Body);
          continue;
        }
        error("expected 'apply', 'returns', 'requires', 'enabled', or "
              "'history' in action body");
        syncToStatement();
      }
      expect(TokenKind::RBrace, "at end of action body");
      if (A.Apply)
        S.Actions.push_back(std::move(A));
      continue;
    }
    error("expected 'state', 'alpha', 'scope', or an action declaration");
    syncToStatement();
  }
  expect(TokenKind::RBrace, "at end of resource declaration");
  if (!SawState)
    Diags.error(DiagCode::ParseError, S.Loc,
                "resource '" + S.Name + "' is missing a state declaration");
  if (!SawAlpha)
    Diags.error(DiagCode::ParseError, S.Loc,
                "resource '" + S.Name + "' is missing an alpha declaration");
  if (SawState && SawAlpha)
    Prog.Specs.push_back(std::move(S));
}

void Parser::parseProcedure(Program &Prog) {
  ProcDecl P;
  P.Loc = peek().Loc;
  expect(TokenKind::KwProcedure, "at procedure declaration");
  if (!check(TokenKind::Identifier)) {
    error("expected procedure name");
    syncToDecl();
    return;
  }
  P.Name = advance().Text;
  expect(TokenKind::LParen, "after procedure name");
  if (!check(TokenKind::RParen))
    parseParamList(P.Params);
  expect(TokenKind::RParen, "after procedure parameters");
  if (accept(TokenKind::KwReturns)) {
    expect(TokenKind::LParen, "after 'returns'");
    parseParamList(P.Returns);
    expect(TokenKind::RParen, "after return parameters");
  }
  while (check(TokenKind::KwRequires) || check(TokenKind::KwEnsures)) {
    bool IsRequires = advance().is(TokenKind::KwRequires);
    Contract C = parseConjuncts();
    Contract &Target = IsRequires ? P.Requires : P.Ensures;
    Target.insert(Target.end(), C.begin(), C.end());
    accept(TokenKind::Semi); // trailing semicolon is optional
  }
  P.Body = parseBlock();
  if (P.Body)
    Prog.Procs.push_back(std::move(P));
}

bool Parser::parseParamList(std::vector<Param> &Out) {
  do {
    Param P;
    P.Loc = peek().Loc;
    if (!check(TokenKind::Identifier)) {
      error("expected parameter name");
      return false;
    }
    P.Name = advance().Text;
    if (!expect(TokenKind::Colon, "after parameter name"))
      return false;
    P.Ty = parseType();
    if (!P.Ty)
      return false;
    Out.push_back(std::move(P));
  } while (accept(TokenKind::Comma));
  return true;
}

TypeRef Parser::parseType() {
  SourceLoc Loc = peek().Loc;
  (void)Loc;
  if (accept(TokenKind::KwInt))
    return Type::intTy();
  if (accept(TokenKind::KwBool))
    return Type::boolTy();
  if (accept(TokenKind::KwString))
    return Type::stringTy();
  if (accept(TokenKind::KwUnit))
    return Type::unit();
  if (accept(TokenKind::KwPair)) {
    expect(TokenKind::Less, "after 'pair'");
    TypeRef A = parseType();
    expect(TokenKind::Comma, "in pair type");
    TypeRef B = parseType();
    expect(TokenKind::Greater, "after pair type arguments");
    return (A && B) ? Type::pair(A, B) : nullptr;
  }
  if (accept(TokenKind::KwSeq)) {
    expect(TokenKind::Less, "after 'seq'");
    TypeRef A = parseType();
    expect(TokenKind::Greater, "after seq type argument");
    return A ? Type::seq(A) : nullptr;
  }
  if (accept(TokenKind::KwSet)) {
    expect(TokenKind::Less, "after 'set'");
    TypeRef A = parseType();
    expect(TokenKind::Greater, "after set type argument");
    return A ? Type::set(A) : nullptr;
  }
  if (accept(TokenKind::KwMset)) {
    expect(TokenKind::Less, "after 'mset'");
    TypeRef A = parseType();
    expect(TokenKind::Greater, "after mset type argument");
    return A ? Type::multiset(A) : nullptr;
  }
  if (accept(TokenKind::KwMap)) {
    expect(TokenKind::Less, "after 'map'");
    TypeRef K = parseType();
    expect(TokenKind::Comma, "in map type");
    TypeRef V = parseType();
    expect(TokenKind::Greater, "after map type arguments");
    return (K && V) ? Type::map(K, V) : nullptr;
  }
  if (accept(TokenKind::KwResourceTy)) {
    expect(TokenKind::Less, "after 'resource'");
    std::string Spec;
    if (check(TokenKind::Identifier))
      Spec = advance().Text;
    else
      error("expected resource specification name");
    expect(TokenKind::Greater, "after resource type argument");
    return Type::resource(Spec);
  }
  error("expected a type");
  return nullptr;
}

int64_t Parser::parseSignedInt() {
  bool Negate = accept(TokenKind::Minus);
  if (!check(TokenKind::IntLiteral)) {
    error("expected integer literal");
    return 0;
  }
  int64_t V = advance().IntVal;
  return Negate ? -V : V;
}

//===----------------------------------------------------------------------===//
// Contracts
//===----------------------------------------------------------------------===//

bool Parser::parseResAction(std::string &Res, std::string &Action) {
  if (!check(TokenKind::Identifier)) {
    error("expected resource handle name");
    return false;
  }
  Res = advance().Text;
  if (!expect(TokenKind::Dot, "between resource and action"))
    return false;
  if (!check(TokenKind::Identifier)) {
    error("expected action name");
    return false;
  }
  Action = advance().Text;
  return true;
}

Contract Parser::parseConjuncts() {
  Contract C;
  do {
    if (!parseAtom(C))
      break;
  } while (accept(TokenKind::AmpAmp));
  return C;
}

bool Parser::parseAtom(Contract &Out) {
  SourceLoc Loc = peek().Loc;
  if (accept(TokenKind::KwLow)) {
    expect(TokenKind::LParen, "after 'low'");
    ExprRef E = parseExpr();
    expect(TokenKind::RParen, "after low argument");
    if (!E)
      return false;
    Out.push_back(ContractAtom::low(std::move(E), Loc));
    return true;
  }
  if (accept(TokenKind::KwLevel)) {
    // level(x) = if <bexp> then low else high
    //   — conditional classification: x is low exactly when the guard holds
    //     in the state where the contract is evaluated.
    expect(TokenKind::LParen, "after 'level'");
    if (!check(TokenKind::Identifier)) {
      error("expected a variable name in level clause");
      return false;
    }
    SourceLoc VarLoc = peek().Loc;
    ExprRef Var = Expr::var(advance().Text, VarLoc);
    expect(TokenKind::RParen, "after level variable");
    expect(TokenKind::EqEq, "after 'level(x)'");
    expect(TokenKind::KwIf, "in level clause");
    ExprRef Guard = parseExpr();
    if (!Guard)
      return false;
    expect(TokenKind::KwThen, "after level guard");
    expect(TokenKind::KwLow, "after 'then' in level clause");
    expect(TokenKind::KwElse, "after 'low' in level clause");
    expect(TokenKind::KwHigh, "after 'else' in level clause");
    Out.push_back(ContractAtom::level(std::move(Var), std::move(Guard), Loc));
    return true;
  }
  if (accept(TokenKind::KwSGuard)) {
    expect(TokenKind::LParen, "after 'sguard'");
    std::string Res, Action;
    if (!parseResAction(Res, Action))
      return false;
    expect(TokenKind::Comma, "after action in sguard");
    int64_t Num = parseSignedInt();
    int64_t Den = 1;
    if (accept(TokenKind::Slash))
      Den = parseSignedInt();
    expect(TokenKind::Comma, "after fraction in sguard");
    std::string ArgVar;
    bool Empty = false;
    if (accept(TokenKind::KwEmpty))
      Empty = true;
    else if (check(TokenKind::Identifier))
      ArgVar = advance().Text;
    else
      error("expected 'empty' or a spec variable in sguard");
    expect(TokenKind::RParen, "after sguard arguments");
    Out.push_back(
        ContractAtom::sguard(Res, Action, Num, Den, ArgVar, Empty, Loc));
    return true;
  }
  if (accept(TokenKind::KwUGuard)) {
    expect(TokenKind::LParen, "after 'uguard'");
    std::string Res, Action;
    if (!parseResAction(Res, Action))
      return false;
    expect(TokenKind::Comma, "after action in uguard");
    std::string ArgVar;
    bool Empty = false;
    if (accept(TokenKind::KwEmpty))
      Empty = true;
    else if (check(TokenKind::Identifier))
      ArgVar = advance().Text;
    else
      error("expected 'empty' or a spec variable in uguard");
    expect(TokenKind::RParen, "after uguard arguments");
    Out.push_back(ContractAtom::uguard(Res, Action, ArgVar, Empty, Loc));
    return true;
  }
  if (accept(TokenKind::KwAllPre)) {
    expect(TokenKind::LParen, "after 'allpre'");
    std::string Res, Action;
    if (!parseResAction(Res, Action))
      return false;
    expect(TokenKind::Comma, "after action in allpre");
    std::string ArgVar;
    if (check(TokenKind::Identifier))
      ArgVar = advance().Text;
    else
      error("expected a spec variable in allpre");
    expect(TokenKind::RParen, "after allpre arguments");
    Out.push_back(ContractAtom::allpre(Res, Action, ArgVar, Loc));
    return true;
  }

  // Boolean atom, possibly `cond ==> low(e)` (value-dependent sensitivity).
  ExprRef E = parseOr(/*AllowAnd=*/false);
  if (!E)
    return false;
  if (accept(TokenKind::Arrow)) {
    if (accept(TokenKind::KwLow)) {
      expect(TokenKind::LParen, "after 'low'");
      ExprRef Val = parseExpr();
      expect(TokenKind::RParen, "after low argument");
      if (!Val)
        return false;
      Out.push_back(ContractAtom::condLow(std::move(E), std::move(Val), Loc));
      return true;
    }
    ExprRef Rhs = parseOr(/*AllowAnd=*/false);
    if (!Rhs)
      return false;
    E = Expr::binary(BinaryOp::Implies, std::move(E), std::move(Rhs), Loc);
  }
  Out.push_back(ContractAtom::boolean(std::move(E), Loc));
  return true;
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

CommandRef Parser::parseBlock() {
  SourceLoc Loc = peek().Loc;
  if (!expect(TokenKind::LBrace, "at start of block"))
    return nullptr;
  std::vector<CommandRef> Cmds;
  while (!check(TokenKind::RBrace) && !check(TokenKind::Eof)) {
    CommandRef C = parseStatement();
    if (C)
      Cmds.push_back(std::move(C));
  }
  expect(TokenKind::RBrace, "at end of block");
  return Command::block(std::move(Cmds), Loc);
}

CommandRef Parser::parseStatement() {
  SourceLoc Loc = peek().Loc;
  switch (peek().Kind) {
  case TokenKind::KwSkip: {
    advance();
    expect(TokenKind::Semi, "after 'skip'");
    return Command::skip(Loc);
  }
  case TokenKind::KwVar: {
    advance();
    if (!check(TokenKind::Identifier)) {
      error("expected variable name");
      syncToStatement();
      return nullptr;
    }
    std::string Name = advance().Text;
    expect(TokenKind::Colon, "after variable name");
    TypeRef Ty = parseType();
    ExprRef Init;
    if (accept(TokenKind::Assign))
      Init = parseExpr();
    expect(TokenKind::Semi, "after variable declaration");
    if (!Ty)
      return nullptr;
    return Command::varDecl(Name, Ty, Init, Loc);
  }
  case TokenKind::KwIf: {
    advance();
    expect(TokenKind::LParen, "after 'if'");
    ExprRef Cond = parseExpr();
    expect(TokenKind::RParen, "after if condition");
    CommandRef Then = parseBlock();
    CommandRef Else;
    if (accept(TokenKind::KwElse)) {
      if (check(TokenKind::KwIf))
        Else = parseStatement();
      else
        Else = parseBlock();
    }
    if (!Cond || !Then)
      return nullptr;
    return Command::ifCmd(Cond, Then, Else, Loc);
  }
  case TokenKind::KwWhile: {
    advance();
    expect(TokenKind::LParen, "after 'while'");
    ExprRef Cond = parseExpr();
    expect(TokenKind::RParen, "after while condition");
    std::vector<Contract> Invariants;
    while (accept(TokenKind::KwInvariant)) {
      Invariants.push_back(parseConjuncts());
      accept(TokenKind::Semi); // trailing semicolon is optional
    }
    CommandRef Body = parseBlock();
    if (!Cond || !Body)
      return nullptr;
    return Command::whileCmd(Cond, std::move(Invariants), Body, Loc);
  }
  case TokenKind::KwPar: {
    advance();
    std::vector<CommandRef> Branches;
    CommandRef First = parseBlock();
    if (First)
      Branches.push_back(std::move(First));
    while (accept(TokenKind::KwAnd)) {
      CommandRef B = parseBlock();
      if (B)
        Branches.push_back(std::move(B));
    }
    if (Branches.size() < 2) {
      Diags.error(DiagCode::ParseError, Loc,
                  "par requires at least two branches");
      return nullptr;
    }
    return Command::par(std::move(Branches), Loc);
  }
  case TokenKind::KwShare: {
    advance();
    if (!check(TokenKind::Identifier)) {
      error("expected resource handle name after 'share'");
      syncToStatement();
      return nullptr;
    }
    std::string Res = advance().Text;
    expect(TokenKind::Colon, "after resource handle");
    std::string Spec;
    if (check(TokenKind::Identifier))
      Spec = advance().Text;
    else
      error("expected resource specification name");
    expect(TokenKind::Assign, "before initial value");
    ExprRef Init = parseExpr();
    expect(TokenKind::Semi, "after share statement");
    if (!Init)
      return nullptr;
    return Command::share(Res, Spec, Init, Loc);
  }
  case TokenKind::KwAtomic: {
    advance();
    if (!check(TokenKind::Identifier)) {
      error("expected resource handle name after 'atomic'");
      syncToStatement();
      return nullptr;
    }
    std::string Res = advance().Text;
    std::string WhenAction;
    if (check(TokenKind::Identifier) && peek().Text == "when") {
      advance();
      if (check(TokenKind::Identifier))
        WhenAction = advance().Text;
      else
        error("expected action name after 'when'");
    }
    CommandRef Body = parseBlock();
    if (!Body)
      return nullptr;
    return Command::atomic(Res, Body, WhenAction, Loc);
  }
  case TokenKind::KwPerform: {
    advance();
    std::string Res, Action;
    if (!parseResAction(Res, Action)) {
      syncToStatement();
      return nullptr;
    }
    expect(TokenKind::LParen, "after action name");
    ExprRef Arg = parseExpr();
    expect(TokenKind::RParen, "after action argument");
    expect(TokenKind::Semi, "after perform statement");
    if (!Arg)
      return nullptr;
    return Command::perform("", Res, Action, Arg, Loc);
  }
  case TokenKind::KwOutput: {
    advance();
    ExprRef E = parseExpr();
    expect(TokenKind::Semi, "after output statement");
    if (!E)
      return nullptr;
    return Command::output(E, Loc);
  }
  case TokenKind::KwAssert: {
    advance();
    Contract C = parseConjuncts();
    expect(TokenKind::Semi, "after assert");
    return Command::assertGhost(std::move(C), Loc);
  }
  case TokenKind::KwCall: {
    advance();
    if (!check(TokenKind::Identifier)) {
      error("expected procedure name after 'call'");
      syncToStatement();
      return nullptr;
    }
    std::string Callee = advance().Text;
    expect(TokenKind::LParen, "after procedure name");
    std::vector<ExprRef> Args = parseArgs();
    expect(TokenKind::RParen, "after call arguments");
    expect(TokenKind::Semi, "after call statement");
    return Command::callProc(Callee, std::move(Args), {}, Loc);
  }
  case TokenKind::LBracket: {
    advance();
    ExprRef Addr = parseExpr();
    expect(TokenKind::RBracket, "after heap address");
    expect(TokenKind::Assign, "in heap write");
    ExprRef Val = parseExpr();
    expect(TokenKind::Semi, "after heap write");
    if (!Addr || !Val)
      return nullptr;
    return Command::heapWrite(Addr, Val, Loc);
  }
  case TokenKind::Identifier:
    return parseAssignLike();
  default:
    error("expected a statement");
    syncToStatement();
    return nullptr;
  }
}

CommandRef Parser::parseAssignLike() {
  SourceLoc Loc = peek().Loc;
  std::vector<std::string> Targets;
  Targets.push_back(advance().Text);
  while (accept(TokenKind::Comma)) {
    if (!check(TokenKind::Identifier)) {
      error("expected identifier in assignment target list");
      syncToStatement();
      return nullptr;
    }
    Targets.push_back(advance().Text);
  }
  if (!expect(TokenKind::Assign, "in assignment")) {
    syncToStatement();
    return nullptr;
  }

  // Multi-target assignments must be calls.
  if (Targets.size() > 1) {
    if (!expect(TokenKind::KwCall, "for multi-target assignment")) {
      syncToStatement();
      return nullptr;
    }
    if (!check(TokenKind::Identifier)) {
      error("expected procedure name after 'call'");
      syncToStatement();
      return nullptr;
    }
    std::string Callee = advance().Text;
    expect(TokenKind::LParen, "after procedure name");
    std::vector<ExprRef> Args = parseArgs();
    expect(TokenKind::RParen, "after call arguments");
    expect(TokenKind::Semi, "after call statement");
    return Command::callProc(Callee, std::move(Args), std::move(Targets),
                             Loc);
  }

  const std::string &Target = Targets[0];
  switch (peek().Kind) {
  case TokenKind::KwAlloc: {
    advance();
    expect(TokenKind::LParen, "after 'alloc'");
    ExprRef Init = parseExpr();
    expect(TokenKind::RParen, "after alloc argument");
    expect(TokenKind::Semi, "after alloc");
    if (!Init)
      return nullptr;
    return Command::alloc(Target, Init, Loc);
  }
  case TokenKind::LBracket: {
    advance();
    ExprRef Addr = parseExpr();
    expect(TokenKind::RBracket, "after heap address");
    expect(TokenKind::Semi, "after heap read");
    if (!Addr)
      return nullptr;
    return Command::heapRead(Target, Addr, Loc);
  }
  case TokenKind::KwUnshare: {
    advance();
    if (!check(TokenKind::Identifier)) {
      error("expected resource handle after 'unshare'");
      syncToStatement();
      return nullptr;
    }
    std::string Res = advance().Text;
    expect(TokenKind::Semi, "after unshare");
    return Command::unshare(Target, Res, Loc);
  }
  case TokenKind::KwResVal: {
    advance();
    expect(TokenKind::LParen, "after 'resval'");
    if (!check(TokenKind::Identifier)) {
      error("expected resource handle in resval");
      syncToStatement();
      return nullptr;
    }
    std::string Res = advance().Text;
    expect(TokenKind::RParen, "after resval argument");
    expect(TokenKind::Semi, "after resval");
    return Command::resVal(Target, Res, Loc);
  }
  case TokenKind::KwPerform: {
    advance();
    std::string Res, Action;
    if (!parseResAction(Res, Action)) {
      syncToStatement();
      return nullptr;
    }
    expect(TokenKind::LParen, "after action name");
    ExprRef Arg = parseExpr();
    expect(TokenKind::RParen, "after action argument");
    expect(TokenKind::Semi, "after perform");
    if (!Arg)
      return nullptr;
    return Command::perform(Target, Res, Action, Arg, Loc);
  }
  case TokenKind::KwCall: {
    advance();
    if (!check(TokenKind::Identifier)) {
      error("expected procedure name after 'call'");
      syncToStatement();
      return nullptr;
    }
    std::string Callee = advance().Text;
    expect(TokenKind::LParen, "after procedure name");
    std::vector<ExprRef> Args = parseArgs();
    expect(TokenKind::RParen, "after call arguments");
    expect(TokenKind::Semi, "after call");
    return Command::callProc(Callee, std::move(Args), {Target}, Loc);
  }
  default: {
    ExprRef E = parseExpr();
    expect(TokenKind::Semi, "after assignment");
    if (!E)
      return nullptr;
    return Command::assign(Target, E, Loc);
  }
  }
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

std::vector<ExprRef> Parser::parseArgs() {
  std::vector<ExprRef> Args;
  if (check(TokenKind::RParen))
    return Args;
  do {
    ExprRef E = parseExpr();
    if (!E)
      break;
    Args.push_back(std::move(E));
  } while (accept(TokenKind::Comma));
  return Args;
}

ExprRef Parser::parseExpr() { return parseImplies(); }

ExprRef Parser::parseImplies() {
  ExprRef L = parseOr(/*AllowAnd=*/true);
  if (!L)
    return nullptr;
  if (accept(TokenKind::Arrow)) {
    SourceLoc Loc = peek().Loc;
    ExprRef R = parseImplies();
    if (!R)
      return nullptr;
    return Expr::binary(BinaryOp::Implies, std::move(L), std::move(R), Loc);
  }
  return L;
}

ExprRef Parser::parseOr(bool AllowAnd) {
  ExprRef L = AllowAnd ? parseAnd() : parseRelational();
  if (!L)
    return nullptr;
  while (check(TokenKind::PipePipe)) {
    SourceLoc Loc = advance().Loc;
    ExprRef R = AllowAnd ? parseAnd() : parseRelational();
    if (!R)
      return nullptr;
    L = Expr::binary(BinaryOp::Or, std::move(L), std::move(R), Loc);
  }
  return L;
}

ExprRef Parser::parseAnd() {
  ExprRef L = parseRelational();
  if (!L)
    return nullptr;
  while (check(TokenKind::AmpAmp)) {
    SourceLoc Loc = advance().Loc;
    ExprRef R = parseRelational();
    if (!R)
      return nullptr;
    L = Expr::binary(BinaryOp::And, std::move(L), std::move(R), Loc);
  }
  return L;
}

ExprRef Parser::parseRelational() {
  ExprRef L = parseAdditive();
  if (!L)
    return nullptr;
  while (true) {
    BinaryOp Op;
    if (check(TokenKind::EqEq))
      Op = BinaryOp::Eq;
    else if (check(TokenKind::NotEq))
      Op = BinaryOp::Ne;
    else if (check(TokenKind::Less))
      Op = BinaryOp::Lt;
    else if (check(TokenKind::LessEq))
      Op = BinaryOp::Le;
    else if (check(TokenKind::Greater))
      Op = BinaryOp::Gt;
    else if (check(TokenKind::GreaterEq))
      Op = BinaryOp::Ge;
    else
      return L;
    SourceLoc Loc = advance().Loc;
    ExprRef R = parseAdditive();
    if (!R)
      return nullptr;
    L = Expr::binary(Op, std::move(L), std::move(R), Loc);
  }
}

ExprRef Parser::parseAdditive() {
  ExprRef L = parseMultiplicative();
  if (!L)
    return nullptr;
  while (check(TokenKind::Plus) || check(TokenKind::Minus)) {
    BinaryOp Op =
        check(TokenKind::Plus) ? BinaryOp::Add : BinaryOp::Sub;
    SourceLoc Loc = advance().Loc;
    ExprRef R = parseMultiplicative();
    if (!R)
      return nullptr;
    L = Expr::binary(Op, std::move(L), std::move(R), Loc);
  }
  return L;
}

ExprRef Parser::parseMultiplicative() {
  ExprRef L = parseUnary();
  if (!L)
    return nullptr;
  while (check(TokenKind::Star) || check(TokenKind::Slash) ||
         check(TokenKind::Percent)) {
    BinaryOp Op = check(TokenKind::Star)    ? BinaryOp::Mul
                  : check(TokenKind::Slash) ? BinaryOp::Div
                                            : BinaryOp::Mod;
    SourceLoc Loc = advance().Loc;
    ExprRef R = parseUnary();
    if (!R)
      return nullptr;
    L = Expr::binary(Op, std::move(L), std::move(R), Loc);
  }
  return L;
}

ExprRef Parser::parseUnary() {
  if (check(TokenKind::Minus)) {
    SourceLoc Loc = advance().Loc;
    ExprRef A = parseUnary();
    if (!A)
      return nullptr;
    // Fold negative integer literals immediately.
    if (A->Kind == ExprKind::IntLit)
      return Expr::intLit(-A->IntVal, Loc);
    return Expr::unary(UnaryOp::Neg, std::move(A), Loc);
  }
  if (check(TokenKind::Bang)) {
    SourceLoc Loc = advance().Loc;
    ExprRef A = parseUnary();
    if (!A)
      return nullptr;
    return Expr::unary(UnaryOp::Not, std::move(A), Loc);
  }
  return parsePrimary();
}

ExprRef Parser::parsePrimary() {
  SourceLoc Loc = peek().Loc;
  if (check(TokenKind::IntLiteral))
    return Expr::intLit(advance().IntVal, Loc);
  if (accept(TokenKind::KwTrue))
    return Expr::boolLit(true, Loc);
  if (accept(TokenKind::KwFalse))
    return Expr::boolLit(false, Loc);
  if (accept(TokenKind::KwUnit))
    return Expr::unitLit(Loc);
  if (check(TokenKind::StringLiteral))
    return Expr::stringLit(advance().Text, Loc);
  if (accept(TokenKind::LParen)) {
    ExprRef E = parseExpr();
    expect(TokenKind::RParen, "after parenthesized expression");
    return E;
  }
  // `pair(a, b)` — `pair` is also a type keyword.
  if (check(TokenKind::KwPair) && peek(1).is(TokenKind::LParen)) {
    advance();
    advance();
    std::vector<ExprRef> Args = parseArgs();
    expect(TokenKind::RParen, "after pair arguments");
    if (Args.size() != 2) {
      Diags.error(DiagCode::ParseError, Loc, "pair takes two arguments");
      return nullptr;
    }
    return Expr::builtin(BuiltinKind::PairMk, std::move(Args), Loc);
  }
  if (check(TokenKind::Identifier)) {
    std::string Name = advance().Text;
    if (accept(TokenKind::LParen)) {
      std::vector<ExprRef> Args = parseArgs();
      expect(TokenKind::RParen, "after call arguments");
      if (std::optional<BuiltinKind> BK = builtinByName(Name)) {
        if (Args.size() != builtinArity(*BK)) {
          Diags.error(DiagCode::ParseError, Loc,
                      Name + " takes " +
                          std::to_string(builtinArity(*BK)) +
                          " argument(s), found " +
                          std::to_string(Args.size()));
          return nullptr;
        }
        return Expr::builtin(*BK, std::move(Args), Loc);
      }
      return Expr::call(Name, std::move(Args), Loc);
    }
    return Expr::var(Name, Loc);
  }
  error("expected an expression");
  advance();
  return nullptr;
}
