//===-- parser/Lexer.cpp - Lexer for the surface language ------------------===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//

#include "parser/Lexer.h"

#include <cctype>
#include <unordered_map>

using namespace commcsl;

const char *commcsl::tokenKindName(TokenKind Kind) {
  switch (Kind) {
  case TokenKind::Eof:
    return "end of file";
  case TokenKind::Identifier:
    return "identifier";
  case TokenKind::IntLiteral:
    return "integer literal";
  case TokenKind::StringLiteral:
    return "string literal";
  case TokenKind::KwFunction:
    return "'function'";
  case TokenKind::KwResource:
    return "'resource'";
  case TokenKind::KwProcedure:
    return "'procedure'";
  case TokenKind::KwReturns:
    return "'returns'";
  case TokenKind::KwRequires:
    return "'requires'";
  case TokenKind::KwEnsures:
    return "'ensures'";
  case TokenKind::KwInvariant:
    return "'invariant'";
  case TokenKind::KwState:
    return "'state'";
  case TokenKind::KwAlpha:
    return "'alpha'";
  case TokenKind::KwAction:
    return "'action'";
  case TokenKind::KwShared:
    return "'shared'";
  case TokenKind::KwUnique:
    return "'unique'";
  case TokenKind::KwApply:
    return "'apply'";
  case TokenKind::KwScope:
    return "'scope'";
  case TokenKind::KwVar:
    return "'var'";
  case TokenKind::KwSkip:
    return "'skip'";
  case TokenKind::KwIf:
    return "'if'";
  case TokenKind::KwElse:
    return "'else'";
  case TokenKind::KwWhile:
    return "'while'";
  case TokenKind::KwPar:
    return "'par'";
  case TokenKind::KwAnd:
    return "'and'";
  case TokenKind::KwShare:
    return "'share'";
  case TokenKind::KwUnshare:
    return "'unshare'";
  case TokenKind::KwAtomic:
    return "'atomic'";
  case TokenKind::KwPerform:
    return "'perform'";
  case TokenKind::KwResVal:
    return "'resval'";
  case TokenKind::KwAssert:
    return "'assert'";
  case TokenKind::KwCall:
    return "'call'";
  case TokenKind::KwOutput:
    return "'output'";
  case TokenKind::KwLow:
    return "'low'";
  case TokenKind::KwLevel:
    return "'level'";
  case TokenKind::KwThen:
    return "'then'";
  case TokenKind::KwHigh:
    return "'high'";
  case TokenKind::KwSGuard:
    return "'sguard'";
  case TokenKind::KwUGuard:
    return "'uguard'";
  case TokenKind::KwAllPre:
    return "'allpre'";
  case TokenKind::KwEmpty:
    return "'empty'";
  case TokenKind::KwTrue:
    return "'true'";
  case TokenKind::KwFalse:
    return "'false'";
  case TokenKind::KwUnit:
    return "'unit'";
  case TokenKind::KwAlloc:
    return "'alloc'";
  case TokenKind::KwInt:
    return "'int'";
  case TokenKind::KwBool:
    return "'bool'";
  case TokenKind::KwString:
    return "'string'";
  case TokenKind::KwPair:
    return "'pair'";
  case TokenKind::KwSeq:
    return "'seq'";
  case TokenKind::KwSet:
    return "'set'";
  case TokenKind::KwMset:
    return "'mset'";
  case TokenKind::KwMap:
    return "'map'";
  case TokenKind::KwResourceTy:
    return "'resource'";
  case TokenKind::LParen:
    return "'('";
  case TokenKind::RParen:
    return "')'";
  case TokenKind::LBrace:
    return "'{'";
  case TokenKind::RBrace:
    return "'}'";
  case TokenKind::LBracket:
    return "'['";
  case TokenKind::RBracket:
    return "']'";
  case TokenKind::Comma:
    return "','";
  case TokenKind::Semi:
    return "';'";
  case TokenKind::Colon:
    return "':'";
  case TokenKind::Dot:
    return "'.'";
  case TokenKind::DotDot:
    return "'..'";
  case TokenKind::Assign:
    return "':='";
  case TokenKind::Plus:
    return "'+'";
  case TokenKind::Minus:
    return "'-'";
  case TokenKind::Star:
    return "'*'";
  case TokenKind::Slash:
    return "'/'";
  case TokenKind::Percent:
    return "'%'";
  case TokenKind::EqEq:
    return "'=='";
  case TokenKind::NotEq:
    return "'!='";
  case TokenKind::Less:
    return "'<'";
  case TokenKind::LessEq:
    return "'<='";
  case TokenKind::Greater:
    return "'>'";
  case TokenKind::GreaterEq:
    return "'>='";
  case TokenKind::AmpAmp:
    return "'&&'";
  case TokenKind::PipePipe:
    return "'||'";
  case TokenKind::Bang:
    return "'!'";
  case TokenKind::Arrow:
    return "'==>'";
  }
  return "<token>";
}

namespace {
const std::unordered_map<std::string, TokenKind> &keywordTable() {
  static const std::unordered_map<std::string, TokenKind> Table = {
      {"function", TokenKind::KwFunction},
      {"resource", TokenKind::KwResourceTy},
      {"procedure", TokenKind::KwProcedure},
      {"returns", TokenKind::KwReturns},
      {"requires", TokenKind::KwRequires},
      {"ensures", TokenKind::KwEnsures},
      {"invariant", TokenKind::KwInvariant},
      {"state", TokenKind::KwState},
      {"alpha", TokenKind::KwAlpha},
      {"action", TokenKind::KwAction},
      {"shared", TokenKind::KwShared},
      {"unique", TokenKind::KwUnique},
      {"apply", TokenKind::KwApply},
      {"scope", TokenKind::KwScope},
      {"var", TokenKind::KwVar},
      {"skip", TokenKind::KwSkip},
      {"if", TokenKind::KwIf},
      {"else", TokenKind::KwElse},
      {"while", TokenKind::KwWhile},
      {"par", TokenKind::KwPar},
      {"and", TokenKind::KwAnd},
      {"share", TokenKind::KwShare},
      {"unshare", TokenKind::KwUnshare},
      {"atomic", TokenKind::KwAtomic},
      {"perform", TokenKind::KwPerform},
      {"resval", TokenKind::KwResVal},
      {"assert", TokenKind::KwAssert},
      {"call", TokenKind::KwCall},
      {"output", TokenKind::KwOutput},
      {"low", TokenKind::KwLow},
      {"level", TokenKind::KwLevel},
      {"then", TokenKind::KwThen},
      {"high", TokenKind::KwHigh},
      {"sguard", TokenKind::KwSGuard},
      {"uguard", TokenKind::KwUGuard},
      {"allpre", TokenKind::KwAllPre},
      {"empty", TokenKind::KwEmpty},
      {"true", TokenKind::KwTrue},
      {"false", TokenKind::KwFalse},
      {"unit", TokenKind::KwUnit},
      {"alloc", TokenKind::KwAlloc},
      {"int", TokenKind::KwInt},
      {"bool", TokenKind::KwBool},
      {"string", TokenKind::KwString},
      {"pair", TokenKind::KwPair},
      {"seq", TokenKind::KwSeq},
      {"set", TokenKind::KwSet},
      {"mset", TokenKind::KwMset},
      {"map", TokenKind::KwMap},
  };
  return Table;
}
} // namespace

char Lexer::advance() {
  char C = Source[Pos++];
  if (C == '\n') {
    ++Line;
    Column = 1;
  } else if ((static_cast<unsigned char>(C) & 0xC0) != 0x80) {
    // Columns count UTF-8 code points, not bytes: continuation bytes
    // (0b10xxxxxx) extend the previous character instead of starting one.
    ++Column;
  }
  return C;
}

bool Lexer::match(char C) {
  if (peek() != C)
    return false;
  advance();
  return true;
}

void Lexer::skipWhitespaceAndComments() {
  while (Pos < Source.size()) {
    char C = peek();
    if (std::isspace(static_cast<unsigned char>(C))) {
      advance();
      continue;
    }
    if (C == '/' && peek(1) == '/') {
      while (Pos < Source.size() && peek() != '\n')
        advance();
      continue;
    }
    if (C == '/' && peek(1) == '*') {
      SourceLoc Start = loc();
      advance();
      advance();
      bool Closed = false;
      while (Pos < Source.size()) {
        if (peek() == '*' && peek(1) == '/') {
          advance();
          advance();
          Closed = true;
          break;
        }
        advance();
      }
      if (!Closed)
        Diags.error(DiagCode::LexError, Start, "unterminated block comment");
      continue;
    }
    break;
  }
}

Token Lexer::makeToken(TokenKind Kind, SourceLoc Loc) const {
  Token T;
  T.Kind = Kind;
  T.Loc = Loc;
  return T;
}

Token Lexer::lexToken() {
  skipWhitespaceAndComments();
  SourceLoc Start = loc();
  if (Pos >= Source.size())
    return makeToken(TokenKind::Eof, Start);

  char C = advance();

  // Identifiers / keywords.
  if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
    std::string Text(1, C);
    while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_')
      Text += advance();
    auto It = keywordTable().find(Text);
    if (It != keywordTable().end())
      return makeToken(It->second, Start);
    Token T = makeToken(TokenKind::Identifier, Start);
    T.Text = std::move(Text);
    return T;
  }

  // Integer literals.
  if (std::isdigit(static_cast<unsigned char>(C))) {
    int64_t V = C - '0';
    while (std::isdigit(static_cast<unsigned char>(peek())))
      V = V * 10 + (advance() - '0');
    Token T = makeToken(TokenKind::IntLiteral, Start);
    T.IntVal = V;
    return T;
  }

  // String literals.
  if (C == '"') {
    std::string Text;
    while (Pos < Source.size() && peek() != '"') {
      char D = advance();
      if (D == '\\' && Pos < Source.size())
        D = advance();
      Text += D;
    }
    if (Pos >= Source.size()) {
      Diags.error(DiagCode::LexError, Start, "unterminated string literal");
      return makeToken(TokenKind::Eof, Start);
    }
    advance(); // closing quote
    Token T = makeToken(TokenKind::StringLiteral, Start);
    T.Text = std::move(Text);
    return T;
  }

  switch (C) {
  case '(':
    return makeToken(TokenKind::LParen, Start);
  case ')':
    return makeToken(TokenKind::RParen, Start);
  case '{':
    return makeToken(TokenKind::LBrace, Start);
  case '}':
    return makeToken(TokenKind::RBrace, Start);
  case '[':
    return makeToken(TokenKind::LBracket, Start);
  case ']':
    return makeToken(TokenKind::RBracket, Start);
  case ',':
    return makeToken(TokenKind::Comma, Start);
  case ';':
    return makeToken(TokenKind::Semi, Start);
  case ':':
    return makeToken(match('=') ? TokenKind::Assign : TokenKind::Colon,
                     Start);
  case '.':
    return makeToken(match('.') ? TokenKind::DotDot : TokenKind::Dot, Start);
  case '+':
    return makeToken(TokenKind::Plus, Start);
  case '-':
    return makeToken(TokenKind::Minus, Start);
  case '*':
    return makeToken(TokenKind::Star, Start);
  case '/':
    return makeToken(TokenKind::Slash, Start);
  case '%':
    return makeToken(TokenKind::Percent, Start);
  case '=':
    if (match('=')) {
      if (match('>'))
        return makeToken(TokenKind::Arrow, Start);
      return makeToken(TokenKind::EqEq, Start);
    }
    // A single '=' is used in definitional positions (alpha(v) = e).
    return makeToken(TokenKind::EqEq, Start);
  case '!':
    return makeToken(match('=') ? TokenKind::NotEq : TokenKind::Bang, Start);
  case '<':
    return makeToken(match('=') ? TokenKind::LessEq : TokenKind::Less, Start);
  case '>':
    return makeToken(match('=') ? TokenKind::GreaterEq : TokenKind::Greater,
                     Start);
  case '&':
    if (match('&'))
      return makeToken(TokenKind::AmpAmp, Start);
    break;
  case '|':
    if (match('|'))
      return makeToken(TokenKind::PipePipe, Start);
    break;
  default:
    break;
  }

  // Report the whole UTF-8 code point, not its lead byte: consume any
  // continuation bytes so the message is valid UTF-8 and the next token
  // starts on a character boundary.
  std::string Char(1, C);
  while (Pos < Source.size() &&
         (static_cast<unsigned char>(peek()) & 0xC0) == 0x80)
    Char += advance();
  Diags.error(DiagCode::LexError, Start,
              "unexpected character '" + Char + "'");
  return lexToken();
}

std::vector<Token> Lexer::lexAll() {
  std::vector<Token> Tokens;
  while (true) {
    Token T = lexToken();
    bool IsEof = T.is(TokenKind::Eof);
    Tokens.push_back(std::move(T));
    if (IsEof)
      break;
  }
  return Tokens;
}
