//===-- examples/timing_leak_demo.cpp - Fig. 1, live -------------*- C++ -*-===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes the paper's Fig. 1 program on the operational semantics and
/// shows the internal timing channel turning into a value channel: with a
/// deterministic round-robin scheduler, the printed value of `s` reveals
/// whether the secret h exceeds the left thread's loop bound — even though
/// no run ever branches on h into s. The repaired, commutative version
/// produces the same output for every secret and schedule.
///
//===----------------------------------------------------------------------===//

#include "lang/TypeChecker.h"
#include "parser/Parser.h"
#include "sem/Interp.h"
#include "sem/Scheduler.h"

#include <cstdio>

using namespace commcsl;

namespace {

Program parse(const char *Source) {
  DiagnosticEngine Diags;
  Program P = Parser::parse(Source, Diags);
  TypeChecker Checker(P, Diags);
  Checker.check();
  if (Diags.hasErrors()) {
    std::fputs(Diags.str().c_str(), stderr);
    std::exit(1);
  }
  return P;
}

const char *Leaky = R"(
  resource Cell {
    state: int;
    alpha(v) = 0;
    unique action SetL(a: unit) { apply(v, a) = 3; }
    unique action SetR(a: unit) { apply(v, a) = 4; }
  }
  procedure main(h: int) returns (s: int) {
    var t1: int := 0;
    var t2: int := 0;
    share r: Cell := 0;
    par {
      while (t1 < 100) { t1 := t1 + 1; }
      atomic r { perform r.SetL(unit); }
    } and {
      while (t2 < h) { t2 := t2 + 1; }
      atomic r { perform r.SetR(unit); }
    }
    s := unshare r;
  }
)";

const char *Repaired = R"(
  resource Cell {
    state: int;
    alpha(v) = v;
    unique action AddL(a: unit) { apply(v, a) = v + 3; }
    unique action AddR(a: unit) { apply(v, a) = v + 4; }
  }
  procedure main(h: int) returns (s: int) {
    var t1: int := 0;
    var t2: int := 0;
    share r: Cell := 0;
    par {
      while (t1 < 100) { t1 := t1 + 1; }
      atomic r { perform r.AddL(unit); }
    } and {
      while (t2 < h) { t2 := t2 + 1; }
      atomic r { perform r.AddR(unit); }
    }
    s := unshare r;
  }
)";

void sweep(const char *Label, const char *Source) {
  Program P = parse(Source);
  Interpreter Interp(P);
  std::printf("%s\n  h:      ", Label);
  const int64_t Secrets[] = {10, 50, 90, 110, 150, 400};
  for (int64_t H : Secrets)
    std::printf("%6lld", static_cast<long long>(H));
  std::printf("\n  s:      ");
  for (int64_t H : Secrets) {
    RoundRobinScheduler Sched;
    RunResult R = Interp.run("main", {ValueFactory::intV(H)}, Sched);
    if (!R.ok()) {
      std::printf("  err(%s)", R.AbortReason.c_str());
      continue;
    }
    std::printf("%6lld", static_cast<long long>(R.Returns[0]->getInt()));
  }
  std::printf("\n\n");
}

} // namespace

int main() {
  std::printf("Fig. 1 under a deterministic round-robin scheduler.\n"
              "No branch on h ever writes s, yet:\n\n");
  sweep("original (assignments race; REJECTED by CommCSL):", Leaky);
  sweep("repaired (additions commute; verified by CommCSL):", Repaired);
  std::printf("The original leaks [h > 100] through scheduling alone — the "
              "internal timing\nchannel of Sec. 1. The repaired version is "
              "constant across secrets.\n");
  return 0;
}
