//===-- examples/lattice_demo.cpp - Multi-level verification -----*- C++ -*-===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Demonstrates the finite-lattice extension (the paper's footnote 1): a
/// payroll pipeline with three sensitivity levels — public, internal, and
/// secret — verified by running the two-level CommCSL verification once
/// per lattice element. An illegal internal-to-public flow is then
/// introduced and pinpointed at exactly the cutoff where it matters.
///
//===----------------------------------------------------------------------===//

#include "hyperviper/Lattice.h"

#include "lang/TypeChecker.h"
#include "parser/Parser.h"

#include <cstdio>

using namespace commcsl;

namespace {

Program parse(const char *Source) {
  DiagnosticEngine Diags;
  Program P = Parser::parse(Source, Diags);
  TypeChecker Checker(P, Diags);
  Checker.check();
  if (Diags.hasErrors()) {
    std::fputs(Diags.str().c_str(), stderr);
    std::exit(1);
  }
  return P;
}

const char *Payroll = R"(
  resource Totals {
    state: int;
    alpha(v) = v;
    shared action Add(a: int) {
      apply(v, a) = v + a;
      requires low(a);
    }
  }
  procedure main(headcount: int, budget: int, salaries: seq<int>)
    returns (pressRelease: int, internalReport: int)
  {
    share t: Totals := 0;
    par {
      // Processing time depends on the secret salary details.
      var w: int := 0;
      while (w < sum(salaries) % 5) invariant w >= 0 { w := w + 1; }
      atomic t { perform t.Add(headcount); }
    } and {
      atomic t { perform t.Add(2 * headcount); }
    }
    var total: int := 0;
    total := unshare t;
    pressRelease := headcount;
    internalReport := total + budget;
  }
)";

const char *PayrollLeaky = R"(
  resource Totals {
    state: int;
    alpha(v) = v;
    shared action Add(a: int) {
      apply(v, a) = v + a;
      requires low(a);
    }
  }
  procedure main(headcount: int, budget: int, salaries: seq<int>)
    returns (pressRelease: int, internalReport: int)
  {
    share t: Totals := 0;
    atomic t { perform t.Add(headcount); }
    var total: int := 0;
    total := unshare t;
    internalReport := total + budget;
    pressRelease := budget;   // internal data in the press release!
  }
)";

void report(const char *Label, const LatticeResult &R) {
  std::printf("%s\n", Label);
  const char *Names[] = {"public   (0)", "internal (1)", "secret   (2)"};
  for (size_t I = 0; I < R.LevelOk.size(); ++I)
    std::printf("  cutoff %s : %s\n", Names[I],
                R.LevelOk[I] ? "verified" : "REJECTED");
  std::printf("  => %s\n\n", R.Ok ? "secure for the whole lattice"
                                  : "an illegal inter-level flow exists");
}

} // namespace

int main() {
  LatticeLevels Levels;
  Levels.NumLevels = 3;
  Levels.ParamLevel = {{"headcount", 0}, {"budget", 1}, {"salaries", 2}};
  Levels.ReturnLevel = {{"pressRelease", 0}, {"internalReport", 1}};

  std::printf("Three-level payroll lattice: public < internal < secret.\n"
              "Verified once per lattice element (footnote 1 of the "
              "paper).\n\n");

  Program Good = parse(Payroll);
  report("payroll (headcount -> press release, budget -> internal):",
         verifyLattice(Good, "main", Levels));

  Program Bad = parse(PayrollLeaky);
  report("payroll with the budget leaked into the press release:",
         verifyLattice(Bad, "main", Levels));
  return 0;
}
