//===-- examples/audit_pipeline.cpp - Batch verification ---------*- C++ -*-===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small "CI auditor" built on the library: verifies every `.hv` program
/// of the shipped corpus, cross-checks each verified program dynamically
/// with the scheduler harness, and exercises the consistency relation of
/// Sec. 3.5 on a recorded execution (the final resource value must be
/// reachable by *some* interleaving of the recorded actions — and, for a
/// valid spec, every permutation must agree modulo alpha).
///
//===----------------------------------------------------------------------===//

#include "hyperviper/Driver.h"
#include "logic/Assertion.h"
#include "sem/Scheduler.h"
#include "value/ValueOps.h"

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

using namespace commcsl;

namespace {

/// Replays a finished run's action log against the Sec. 3.5 consistency
/// relation, as an end-to-end check of the semantics' bookkeeping.
bool checkConsistency(const Program &Prog, const ResourceState &Res) {
  RSpecRuntime Runtime(*Res.Spec, &Prog);
  std::map<std::string, ValueRef> ArgsByAction;
  std::map<std::string, std::vector<ValueRef>> Collected;
  for (const ActionLogEntry &E : Res.Log)
    Collected[E.Action].push_back(E.Arg);
  for (const ActionDecl &A : Res.Spec->Actions) {
    auto It = Collected.find(A.Name);
    std::vector<ValueRef> Args =
        It == Collected.end() ? std::vector<ValueRef>{} : It->second;
    ArgsByAction[A.Name] = A.Unique ? ValueFactory::seq(Args)
                                    : ValueFactory::multiset(Args);
  }
  return consistentWith(Runtime, Res.InitialValue, ArgsByAction, Res.Value);
}

} // namespace

int main(int Argc, char **Argv) {
  std::string Dir = Argc > 1 ? Argv[1] : COMMCSL_EXAMPLES_DIR;
  Driver D;

  unsigned Verified = 0, Rejected = 0, Dynamic = 0, Consistent = 0;
  std::vector<std::string> Files;
  for (const auto &Entry : std::filesystem::directory_iterator(Dir))
    if (Entry.path().extension() == ".hv")
      Files.push_back(Entry.path().string());
  std::sort(Files.begin(), Files.end());

  for (const std::string &File : Files) {
    DriverResult R = D.verifyFile(File);
    std::string Base = std::filesystem::path(File).filename().string();
    if (!R.Verified) {
      ++Rejected;
      std::printf("%-34s rejected\n", Base.c_str());
      continue;
    }
    ++Verified;

    // Dynamic cross-check on a handful of schedules (cheap smoke).
    Interpreter Interp(*R.Prog);
    const ProcDecl *Main = R.Prog->findProc("main");
    bool RanOk = true, ConsOk = true;
    if (Main) {
      std::mt19937_64 Rng(7); // deterministic smoke inputs
      std::vector<ValueRef> Inputs;
      for (const Param &P : Main->Params)
        Inputs.push_back(
            P.Ty->toDomain(Type::ScopeParams{0, 3, 3})->sample(Rng));
      RandomScheduler Sched(99);
      RunResult Run = Interp.run("main", Inputs, Sched);
      RanOk = Run.ok();
      if (RanOk) {
        ++Dynamic;
        for (const ResourceState &Res : Run.Resources)
          ConsOk &= checkConsistency(*R.Prog, Res);
        if (ConsOk)
          ++Consistent;
      }
    }
    std::printf("%-34s verified  run:%s  consistency:%s\n", Base.c_str(),
                RanOk ? "ok" : "-", ConsOk ? "ok" : "FAIL");
  }

  std::printf("\n%u verified, %u rejected; %u dynamic runs, %u consistent "
              "action logs\n",
              Verified, Rejected, Dynamic, Consistent);
  return 0;
}
