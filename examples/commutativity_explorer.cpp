//===-- examples/commutativity_explorer.cpp - Spec playground ----*- C++ -*-===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Explores abstract commutativity (the paper's key idea) directly at the
/// resource-specification level: the *same* map data structure is checked
/// under three abstractions —
///
///   1. identity (leak everything): rejected, puts race on equal keys;
///   2. key set (Fig. 4 left): valid — puts commute on the domain;
///   3. constant (leak nothing): trivially valid.
///
/// For the rejected variant, the Def. 3.1 checker produces a concrete
/// counterexample: two states and two arguments whose reordering is
/// observable through the abstraction.
///
//===----------------------------------------------------------------------===//

#include "lang/TypeChecker.h"
#include "parser/Parser.h"
#include "rspec/Validity.h"

#include <cstdio>
#include <string>

using namespace commcsl;

namespace {

/// Builds a map-put specification parameterized by its abstraction.
std::string mapSpec(const std::string &Alpha) {
  return R"(
    resource MapSpec {
      state: map<int, int>;
      alpha(v) = )" +
         Alpha + R"(;
      scope int -1 .. 1;
      scope size 2;
      shared action Put(a: pair<int, int>) {
        apply(v, a) = map_put(v, fst(a), snd(a));
        requires low(fst(a)) && low(snd(a));
      }
    }
  )";
}

void explore(const char *Label, const std::string &Alpha) {
  DiagnosticEngine Diags;
  Program P = Parser::parse(mapSpec(Alpha), Diags);
  TypeChecker Checker(P, Diags);
  if (!Checker.check()) {
    std::fputs(Diags.str().c_str(), stderr);
    return;
  }
  RSpecRuntime Runtime(P.Specs[0], &P);
  ValidityChecker VC(Runtime);
  ValidityResult R = VC.check();
  std::printf("alpha(v) = %-26s -> %s  (%llu bounded + %llu random checks)\n",
              Label, R.Valid ? "VALID" : "invalid",
              static_cast<unsigned long long>(R.BoundedChecks),
              static_cast<unsigned long long>(R.RandomChecks));
  if (!R.Valid)
    std::printf("    counterexample: %s\n", R.CE->describe().c_str());
}

} // namespace

int main() {
  std::printf("Abstract commutativity of map_put under three abstractions "
              "(Def. 3.1):\n\n");
  explore("v          (identity)", "v");
  explore("dom(v)     (key set)", "dom(v)");
  explore("0          (constant)", "0");

  std::printf("\nThe middle row is the paper's Fig. 4 (left): demanding "
              "commutativity only\nmodulo the public view makes racing puts "
              "acceptable as long as keys are low.\n");
  return 0;
}
