//===-- examples/quickstart.cpp - Five-minute tour ---------------*- C++ -*-===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Quickstart: verify a concurrent program for information-flow security
/// with three calls — parse, verify, and (optionally) fuzz the 2-safety
/// property dynamically.
///
/// The program is the paper's shared-counter pattern (Fig. 2): two threads
/// add low values to a shared counter while their *timing* depends on a
/// secret. CommCSL accepts it because increments commute; the empirical
/// harness then confirms that no scheduler/secret combination changes the
/// public output.
///
//===----------------------------------------------------------------------===//

#include "hyperviper/Driver.h"

#include <cstdio>

using namespace commcsl;

static const char *Source = R"(
  // A shared counter whose final value is public.
  resource Counter {
    state: int;
    alpha(v) = v;
    shared action Add(a: int) {
      apply(v, a) = v + a;
      requires low(a);
    }
  }

  procedure main(l: int, h: int) returns (out: int)
    requires low(l)
    ensures low(out)
  {
    share c: Counter := 0;
    par {
      // Secret-dependent delay before the update.
      var w: int := 0;
      while (w < h % 8) invariant w >= 0 { w := w + 1; }
      atomic c { perform c.Add(l); }
    } and {
      atomic c { perform c.Add(2 * l); }
    }
    out := unshare c;
  }
)";

int main() {
  // 1. Parse + type-check + verify (spec validity and program rules).
  Driver D;
  DriverResult R = D.verifySource(Source, "quickstart");
  std::printf("verifier: %s\n", R.Verified ? "verified" : "REJECTED");
  if (!R.Verified) {
    std::fputs(R.Diags.str("quickstart").c_str(), stderr);
    return 1;
  }
  std::printf("  specs checked: %u, procedures: %zu, total %.1f ms\n",
              R.Verification.NumSpecsChecked, R.Verification.Procs.size(),
              1000 * R.totalSeconds());

  // 2. Cross-check dynamically: many schedules and secrets, one public
  //    answer.
  NIConfig Cfg;
  Cfg.Trials = 4;
  NIReport Report = D.runEmpirical(R, "main", Cfg);
  std::printf("empirical: %llu runs, %llu pairs compared -> %s\n",
              static_cast<unsigned long long>(Report.Runs),
              static_cast<unsigned long long>(Report.PairsCompared),
              Report.secure() ? "no violation" : "violation");
  return Report.secure() ? 0 : 1;
}
