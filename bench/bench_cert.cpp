//===-- bench/bench_cert.cpp - Certificate check-vs-verify cost -*- C++ -*-===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The certificate economics: checking a proof must be orders of magnitude
/// cheaper than producing one, or independent re-checking would never be
/// worth deploying. For each representative example this registers
///
///   verify/<name> — the full pipeline (parse, Def. 3.1 validity,
///                   relational proofs) with certificate emission on, and
///   check/<name>  — certificate parse + independent re-derivation
///                   (cert::checkCertificate) against a pre-parsed AST,
///
/// so `time(verify)/time(check)` is the speedup recorded in
/// BENCH_cert.json (regenerate with tools/gen_bench_cert.sh). The check
/// side deliberately includes certificate parsing: the consumer of a
/// certificate always pays it.
///
//===----------------------------------------------------------------------===//

#include "cert/Cert.h"
#include "cert/Check.h"
#include "hyperviper/Driver.h"

#include <benchmark/benchmark.h>

#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

using namespace commcsl;

namespace {

std::string slurp(const std::string &Path) {
  std::ifstream In(Path);
  std::ostringstream OS;
  OS << In.rdbuf();
  return OS.str();
}

/// A spread of proof shapes: the paper's flagship example, a
/// producer/consumer pipeline (loop invariants, guards), a map-typed
/// resource, and one rejected program (rejection certificates must be
/// cheap to check too).
const char *Cases[] = {
    "figure1.hv",
    "figure2.hv",
    "pipeline.hv",
    "producer_consumer.hv",
    "broken/counter_high_arg.hv",
};

struct PreparedCase {
  std::string Name;
  std::string Source;
  std::string Cert;
  std::shared_ptr<Program> Prog;
};

PreparedCase prepare(const std::string &File) {
  PreparedCase C;
  C.Name = File;
  C.Source = slurp(std::string(COMMCSL_EXAMPLES_DIR) + "/" + File);
  DriverOptions O;
  O.Verifier.EmitCert = true;
  O.Jobs = 1; // single-threaded on both sides for an honest ratio
  DriverResult R = Driver(O).verifySource(C.Source, File);
  C.Cert = R.Cert;
  C.Prog = R.Prog;
  return C;
}

void verifyOnce(benchmark::State &State, const PreparedCase &C) {
  for (auto _ : State) {
    DriverOptions O;
    O.Verifier.EmitCert = true;
    O.Jobs = 1;
    DriverResult R = Driver(O).verifySource(C.Source, C.Name);
    benchmark::DoNotOptimize(R.Verified);
    benchmark::DoNotOptimize(R.Cert.data());
  }
}

void checkOnce(benchmark::State &State, const PreparedCase &C) {
  for (auto _ : State) {
    std::string Err;
    std::optional<cert::Certificate> Parsed = cert::parse(C.Cert, &Err);
    cert::CheckResult R = cert::checkCertificate(*Parsed, *C.Prog);
    benchmark::DoNotOptimize(R.Ok);
  }
}

} // namespace

int main(int argc, char **argv) {
  std::vector<PreparedCase> Prepared;
  Prepared.reserve(std::size(Cases));
  for (const char *File : Cases) {
    Prepared.push_back(prepare(File));
    const PreparedCase &C = Prepared.back();
    if (C.Cert.empty()) {
      fprintf(stderr, "bench_cert: no certificate for %s\n", File);
      return 1;
    }
    benchmark::RegisterBenchmark(
        ("verify/" + C.Name).c_str(),
        [&C](benchmark::State &S) { verifyOnce(S, C); });
    benchmark::RegisterBenchmark(
        ("check/" + C.Name).c_str(),
        [&C](benchmark::State &S) { checkOnce(S, C); });
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
