//===-- bench/bench_validity.cpp - Validity checker ablation ----*- C++ -*-===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ablation of the Def. 3.1 validity checker (our substitution for the
/// paper's Viper/Z3 backend): bounded-exhaustive vs. randomized tiers,
/// scope scaling, and time-to-counterexample for invalid specifications
/// (Fig. 1's assignments, the Fig. 3 map without the key-set abstraction,
/// and the App. D sequence-abstraction pitfall).
///
//===----------------------------------------------------------------------===//

#include "lang/TypeChecker.h"
#include "parser/Parser.h"
#include "rspec/Validity.h"
#include "value/Intern.h"

#include <benchmark/benchmark.h>

using namespace commcsl;

namespace {

Program parseSpec(const std::string &Source) {
  DiagnosticEngine Diags;
  Program P = Parser::parse(Source, Diags);
  TypeChecker Checker(P, Diags);
  Checker.check();
  assert(!Diags.hasErrors());
  return P;
}

const char *CounterSpec = R"(
  resource Counter {
    state: int;
    alpha(v) = v;
    shared action Add(a: int) { apply(v, a) = v + a; requires low(a); }
  }
)";

const char *MapKeySetSpec = R"(
  resource MapKS {
    state: map<int, int>;
    alpha(v) = dom(v);
    scope int -1 .. 1;
    scope size 2;
    shared action Put(a: pair<int, int>) {
      apply(v, a) = map_put(v, fst(a), snd(a));
      requires low(fst(a));
    }
  }
)";

const char *QueueSpec = R"(
  resource PCQueue {
    state: pair<seq<int>, int>;
    alpha(v) = v;
    inv(v) = snd(v) >= 0 && snd(v) <= len(fst(v));
    scope size 2;
    unique action Prod(a: int) {
      apply(v, a) = pair(append(fst(v), a), snd(v));
      requires low(a);
    }
    unique action Cons(a: unit) {
      apply(v, a) = pair(fst(v), snd(v) + 1);
      returns(v, a) = at(fst(v), snd(v));
      enabled(v) = snd(v) < len(fst(v));
      history(v) = take(fst(v), snd(v));
    }
  }
)";

const char *RacySpec = R"(
  resource Racy {
    state: int;
    alpha(v) = v;
    unique action SetL(a: unit) { apply(v, a) = 3; }
    unique action SetR(a: unit) { apply(v, a) = 4; }
  }
)";

const char *OrderedListSpec = R"(
  resource OrderedList {
    state: seq<int>;
    alpha(v) = v;
    shared action Append(a: int) { apply(v, a) = append(v, a); requires low(a); }
  }
)";

void runValidity(benchmark::State &State, const char *Source, bool Bounded,
                 bool Random, bool ExpectValid) {
  Program P = parseSpec(Source);
  RSpecRuntime Runtime(P.Specs[0], &P);
  ValidityConfig Cfg;
  Cfg.RunBoundedTier = Bounded;
  Cfg.RunRandomTier = Random;
  uint64_t Checks = 0;
  for (auto _ : State) {
    ValidityChecker Checker(Runtime, Cfg);
    ValidityResult R = Checker.check();
    if (R.Valid != ExpectValid)
      State.SkipWithError("unexpected validity verdict");
    Checks = R.BoundedChecks + R.RandomChecks;
    benchmark::DoNotOptimize(R);
  }
  State.counters["checks"] = static_cast<double>(Checks);
}

void BM_Valid_Counter_Both(benchmark::State &S) {
  runValidity(S, CounterSpec, true, true, true);
}
void BM_Valid_Counter_BoundedOnly(benchmark::State &S) {
  runValidity(S, CounterSpec, true, false, true);
}
void BM_Valid_MapKeySet_Both(benchmark::State &S) {
  runValidity(S, MapKeySetSpec, true, true, true);
}
void BM_Valid_MapKeySet_RandomOnly(benchmark::State &S) {
  runValidity(S, MapKeySetSpec, false, true, true);
}
void BM_Valid_Queue_Both(benchmark::State &S) {
  runValidity(S, QueueSpec, true, true, true);
}
void BM_Refute_Fig1Racy(benchmark::State &S) {
  runValidity(S, RacySpec, true, true, false);
}
void BM_Refute_OrderedList(benchmark::State &S) {
  runValidity(S, OrderedListSpec, true, true, false);
}

BENCHMARK(BM_Valid_Counter_Both)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Valid_Counter_BoundedOnly)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Valid_MapKeySet_Both)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Valid_MapKeySet_RandomOnly)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Valid_Queue_Both)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Refute_Fig1Racy)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Refute_OrderedList)->Unit(benchmark::kMicrosecond);

/// Scope scaling: how the bounded tier's cost grows with the enumeration
/// scope (collection bound 1..3).
void BM_ScopeScaling_MapKeySet(benchmark::State &State) {
  std::string Source = std::string(R"(
    resource MapKS {
      state: map<int, int>;
      alpha(v) = dom(v);
      scope int -1 .. 1;
      scope size )") + std::to_string(State.range(0)) + R"(;
      shared action Put(a: pair<int, int>) {
        apply(v, a) = map_put(v, fst(a), snd(a));
        requires low(fst(a));
      }
    }
  )";
  Program P = parseSpec(Source);
  RSpecRuntime Runtime(P.Specs[0], &P);
  ValidityConfig Cfg;
  Cfg.RunRandomTier = false;
  uint64_t Checks = 0;
  for (auto _ : State) {
    ValidityChecker Checker(Runtime, Cfg);
    ValidityResult R = Checker.check();
    Checks = R.BoundedChecks;
    benchmark::DoNotOptimize(R);
  }
  State.counters["checks"] = static_cast<double>(Checks);
}
BENCHMARK(BM_ScopeScaling_MapKeySet)
    ->Arg(1)
    ->Arg(2)
    ->Arg(3)
    ->Unit(benchmark::kMillisecond);

/// Parallel scaling of the bounded tier: the same (scope size 3) workload
/// sharded over 1/2/4 worker threads. The verdict and check counts are
/// identical at every arity (see ValidityConfig::Jobs); `cpu_over_wall`
/// reports the realized speedup (aggregate worker seconds / wall seconds),
/// which approaches the job count on a machine with that many free cores.
void BM_JobsScaling_MapKeySet(benchmark::State &State) {
  std::string Source = std::string(R"(
    resource MapKS {
      state: map<int, int>;
      alpha(v) = dom(v);
      scope int -1 .. 1;
      scope size 3;
      shared action Put(a: pair<int, int>) {
        apply(v, a) = map_put(v, fst(a), snd(a));
        requires low(fst(a));
      }
    }
  )");
  Program P = parseSpec(Source);
  RSpecRuntime Runtime(P.Specs[0], &P);
  ValidityConfig Cfg;
  Cfg.RunRandomTier = false;
  Cfg.Jobs = static_cast<unsigned>(State.range(0));
  uint64_t Checks = 0;
  double Ratio = 1;
  for (auto _ : State) {
    ValidityChecker Checker(Runtime, Cfg);
    ValidityResult R = Checker.check();
    if (!R.Valid)
      State.SkipWithError("unexpected validity verdict");
    Checks = R.BoundedChecks;
    if (R.WallSeconds > 0)
      Ratio = R.CpuSeconds / R.WallSeconds;
    benchmark::DoNotOptimize(R);
  }
  State.counters["checks"] = static_cast<double>(Checks);
  State.counters["cpu_over_wall"] = Ratio;
}
BENCHMARK(BM_JobsScaling_MapKeySet)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

/// Tier-4 conclusiveness ablation: the full tier stack with the
/// differencing abstract tier toggled (arg: 0 = off, 1 = on). Verdicts are
/// identical either way; what changes is how *conclusive* a `valid` is.
/// The `unbounded` counter (1.0 when the spec concluded over the full
/// unbounded domains) and the `checks` counter (concrete instances the
/// run still needed — 0 when the abstract tier proved everything) are
/// BENCH_validity.json's conclusiveness column. The Queue row documents
/// the deliberate fall-through: `enabled`/`history` clauses stay with the
/// concrete tiers, so it reports unbounded=0 at both settings.
void runAbsintAblation(benchmark::State &State, const char *Source) {
  Program P = parseSpec(Source);
  RSpecRuntime Runtime(P.Specs[0], &P);
  ValidityConfig Cfg;
  Cfg.RunAbsintTier = State.range(0) != 0;
  uint64_t Checks = 0;
  bool Unbounded = false;
  for (auto _ : State) {
    ValidityChecker Checker(Runtime, Cfg);
    ValidityResult R = Checker.check();
    if (!R.Valid)
      State.SkipWithError("unexpected validity verdict");
    Checks = R.BoundedChecks + R.RandomChecks;
    Unbounded = R.Unbounded;
    benchmark::DoNotOptimize(R);
  }
  State.counters["checks"] = static_cast<double>(Checks);
  State.counters["unbounded"] = Unbounded ? 1.0 : 0.0;
}
void BM_AbsintConclusive_Counter(benchmark::State &S) {
  runAbsintAblation(S, CounterSpec);
}
void BM_AbsintConclusive_MapKeySet(benchmark::State &S) {
  runAbsintAblation(S, MapKeySetSpec);
}
void BM_AbsintConclusive_Queue(benchmark::State &S) {
  runAbsintAblation(S, QueueSpec);
}
BENCHMARK(BM_AbsintConclusive_Counter)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AbsintConclusive_MapKeySet)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AbsintConclusive_Queue)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

/// Interning / memoization ablation: the scope-3 bounded workload with
/// value interning and alpha/f_a memoization independently toggled.
/// Verdicts and check counts are identical across all four variants; only
/// the evaluation cost changes. Arg encoding: bit 0 = interning on,
/// bit 1 = memoization on.
void BM_InternMemoAblation_MapKeySet(benchmark::State &State) {
  bool Intern = State.range(0) & 1;
  bool Memo = State.range(0) & 2;
  bool WasEnabled = ValueInterner::enabled();
  ValueInterner::setEnabled(Intern);
  {
    std::string Source = std::string(R"(
      resource MapKS {
        state: map<int, int>;
        alpha(v) = dom(v);
        scope int -1 .. 1;
        scope size 3;
        shared action Put(a: pair<int, int>) {
          apply(v, a) = map_put(v, fst(a), snd(a));
          requires low(fst(a));
        }
      }
    )");
    Program P = parseSpec(Source);
    RSpecRuntime Runtime(P.Specs[0], &P);
    ValidityConfig Cfg;
    Cfg.RunRandomTier = false;
    Cfg.Jobs = 1;
    Cfg.Memoize = Memo;
    uint64_t Checks = 0;
    double HitRate = 0;
    for (auto _ : State) {
      ValidityChecker Checker(Runtime, Cfg);
      ValidityResult R = Checker.check();
      if (!R.Valid)
        State.SkipWithError("unexpected validity verdict");
      Checks = R.BoundedChecks;
      uint64_t Lookups = R.Cache.hits() + R.Cache.misses();
      HitRate = Lookups ? static_cast<double>(R.Cache.hits()) / Lookups : 0;
      benchmark::DoNotOptimize(R);
    }
    State.counters["checks"] = static_cast<double>(Checks);
    State.counters["hit_rate"] = HitRate;
  }
  ValueInterner::setEnabled(WasEnabled);
}
BENCHMARK(BM_InternMemoAblation_MapKeySet)
    ->Arg(0) // baseline: no interning, no memo
    ->Arg(1) // interning only
    ->Arg(2) // memo only (structural-compare keys)
    ->Arg(3) // interning + memo
    ->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
