//===-- bench/bench_analyze.cpp - Static analysis & triage benchmark -------===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measures the static pre-analysis over the shipped example corpus:
///
///  * raw analysis throughput (files/second for `analyze`),
///  * the `--triage` fast path: per-file verdict identity against the full
///    pipeline, the triage hit rate (relational proofs skipped), and the
///    wall-clock saved with --triage on vs. off.
///
/// Exits nonzero if any triage verdict diverges from the full pipeline —
/// the benchmark doubles as an acceptance check.
///
//===----------------------------------------------------------------------===//

#include "hyperviper/Analyze.h"
#include "hyperviper/Driver.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

using namespace commcsl;

namespace {

double now(std::chrono::steady_clock::time_point T0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
      .count();
}

std::vector<std::string> exampleFiles() {
  std::vector<std::string> Files;
  for (const auto &DE : std::filesystem::recursive_directory_iterator(
           COMMCSL_EXAMPLES_DIR))
    if (DE.is_regular_file() && DE.path().extension() == ".hv")
      Files.push_back(DE.path().string());
  std::sort(Files.begin(), Files.end());
  return Files;
}

} // namespace

int main(int Argc, char **Argv) {
  unsigned Repeat = 5;
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--repeat" && I + 1 < Argc)
      Repeat = static_cast<unsigned>(std::atoi(Argv[++I]));
  }
  if (Repeat == 0)
    Repeat = 1;

  std::vector<std::string> Files = exampleFiles();
  std::printf("Static pre-analysis benchmark, %zu example programs\n\n",
              Files.size());

  // Phase 1: analyze throughput.
  {
    auto T0 = std::chrono::steady_clock::now();
    unsigned Low = 0;
    for (unsigned R = 0; R < Repeat; ++R) {
      AnalyzeOptions Options;
      AnalyzeResult AR = runAnalyze({std::string(COMMCSL_EXAMPLES_DIR)},
                                    Options);
      Low = 0;
      for (const AnalyzeFileResult &F : AR.Files)
        Low += F.Verdict == "provably-low" ? 1 : 0;
    }
    double Wall = now(T0);
    std::printf("analyze: %u x %zu files in %.3fs  (%.0f files/s), "
                "%u provably-low\n\n",
                Repeat, Files.size(), Wall,
                Repeat * Files.size() / (Wall > 0 ? Wall : 1e-9), Low);
  }

  // Phase 2: triage on vs. off over the full verification pipeline.
  int Exit = 0;
  unsigned Procs = 0, Skipped = 0, Diverged = 0;
  double FullWall = 0, TriageWall = 0;
  for (const std::string &Path : Files) {
    Driver Full{DriverOptions{}};
    auto T0 = std::chrono::steady_clock::now();
    DriverResult FR = Full.verifyFile(Path);
    FullWall += now(T0);

    DriverOptions TO;
    TO.Triage = true;
    Driver Triaged(TO);
    auto T1 = std::chrono::steady_clock::now();
    DriverResult TR = Triaged.verifyFile(Path);
    TriageWall += now(T1);

    Procs += static_cast<unsigned>(TR.Verification.Procs.size());
    Skipped += TR.TriageSkipped;
    if (FR.Verified != TR.Verified) {
      ++Diverged;
      Exit = 1;
      std::printf("DIVERGED: %s (full %s, triage %s)\n", Path.c_str(),
                  FR.Verified ? "verified" : "rejected",
                  TR.Verified ? "verified" : "rejected");
    }
  }

  std::printf("triage: %u/%u relational proofs skipped (%.1f%% hit rate)\n",
              Skipped, Procs, Procs ? 100.0 * Skipped / Procs : 0.0);
  std::printf("wall:   full %.3fs  triage %.3fs  saved %.3fs (%.1f%%)\n",
              FullWall, TriageWall, FullWall - TriageWall,
              FullWall > 0 ? 100.0 * (FullWall - TriageWall) / FullWall : 0.0);
  std::printf("verdict identity: %s\n",
              Diverged ? "FAILED" : "ok (all files agree)");
  return Exit;
}
