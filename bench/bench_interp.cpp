//===-- bench/bench_interp.cpp - Interpreter & product throughput -*- C++ -*-===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Throughput benchmarks for the operational-semantics substrate: steps
/// per second of the concurrent interpreter on the Fig. 2 workload under
/// different schedulers, and the overhead of the self-composition product
/// relative to two plain runs on a sequential workload.
///
//===----------------------------------------------------------------------===//

#include "lang/TypeChecker.h"
#include "parser/Parser.h"
#include "product/Product.h"
#include "sem/Interp.h"
#include "sem/Scheduler.h"

#include <benchmark/benchmark.h>

using namespace commcsl;

namespace {

Program parseProgram(const std::string &Source) {
  DiagnosticEngine Diags;
  Program P = Parser::parse(Source, Diags);
  TypeChecker Checker(P, Diags);
  Checker.check();
  assert(!Diags.hasErrors());
  return P;
}

const char *CounterWorkload = R"(
  resource Counter {
    state: int;
    alpha(v) = v;
    shared action Add(a: int) { apply(v, a) = v + a; requires low(a); }
  }
  procedure worker(vals: seq<int>, c: resource<Counter>)
    requires low(vals)
    requires sguard(c.Add, 1/2, empty)
    ensures sguard(c.Add, 1/2, S) && allpre(c.Add, S)
  {
    var i: int := 0;
    while (i < len(vals))
      invariant low(i) && sguard(c.Add, 1/2, T) && allpre(c.Add, T)
    {
      atomic c { perform c.Add(at(vals, i)); }
      i := i + 1;
    }
  }
  procedure main(vals: seq<int>) returns (out: int)
    requires low(vals)
    ensures low(out)
  {
    share c: Counter := 0;
    par { call worker(vals, c); } and { call worker(vals, c); }
    out := unshare c;
  }
)";

ValueRef seqOfSize(int64_t N) {
  std::vector<ValueRef> Elems;
  for (int64_t I = 0; I < N; ++I)
    Elems.push_back(ValueFactory::intV(I % 7));
  return ValueFactory::seq(std::move(Elems));
}

void BM_Interp_Counter_Random(benchmark::State &State) {
  Program P = parseProgram(CounterWorkload);
  Interpreter Interp(P);
  ValueRef Vals = seqOfSize(State.range(0));
  uint64_t Steps = 0;
  uint64_t Seed = 1;
  for (auto _ : State) {
    RandomScheduler Sched(Seed++);
    RunResult R = Interp.run("main", {Vals}, Sched);
    if (!R.ok())
      State.SkipWithError("run aborted");
    Steps += R.Steps;
    benchmark::DoNotOptimize(R);
  }
  State.SetItemsProcessed(static_cast<int64_t>(Steps));
}
BENCHMARK(BM_Interp_Counter_Random)
    ->Arg(8)
    ->Arg(64)
    ->Arg(256)
    ->Unit(benchmark::kMicrosecond);

void BM_Interp_Counter_RoundRobin(benchmark::State &State) {
  Program P = parseProgram(CounterWorkload);
  Interpreter Interp(P);
  ValueRef Vals = seqOfSize(State.range(0));
  uint64_t Steps = 0;
  for (auto _ : State) {
    RoundRobinScheduler Sched;
    RunResult R = Interp.run("main", {Vals}, Sched);
    if (!R.ok())
      State.SkipWithError("run aborted");
    Steps += R.Steps;
    benchmark::DoNotOptimize(R);
  }
  State.SetItemsProcessed(static_cast<int64_t>(Steps));
}
BENCHMARK(BM_Interp_Counter_RoundRobin)
    ->Arg(64)
    ->Unit(benchmark::kMicrosecond);

const char *SequentialWorkload = R"(
  procedure main(l: int, h: int) returns (out: int)
    requires low(l)
    ensures low(out)
  {
    var i: int := 0;
    var acc: int := 0;
    while (i < l % 32 + 16) {
      acc := acc + i * l;
      i := i + 1;
    }
    out := acc;
  }
)";

void BM_Product_TwoPlainRuns(benchmark::State &State) {
  Program P = parseProgram(SequentialWorkload);
  Interpreter Interp(P);
  for (auto _ : State) {
    RoundRobinScheduler S1, S2;
    RunResult R1 = Interp.run("main", {ValueFactory::intV(5),
                                       ValueFactory::intV(11)}, S1);
    RunResult R2 = Interp.run("main", {ValueFactory::intV(5),
                                       ValueFactory::intV(99)}, S2);
    benchmark::DoNotOptimize(R1);
    benchmark::DoNotOptimize(R2);
  }
}
BENCHMARK(BM_Product_TwoPlainRuns)->Unit(benchmark::kMicrosecond);

void BM_Product_SelfComposition(benchmark::State &State) {
  Program P = parseProgram(SequentialWorkload);
  DiagnosticEngine Diags;
  std::optional<Program> Product = buildSelfComposition(P, "main", Diags);
  if (!Product) {
    State.SkipWithError("product construction failed");
    return;
  }
  {
    // Product programs are fresh ASTs: type-check once.
    DiagnosticEngine D2;
    TypeChecker Checker(*Product, D2);
    Checker.check();
  }
  Interpreter Interp(*Product);
  for (auto _ : State) {
    RoundRobinScheduler Sched;
    RunResult R = Interp.run(
        "main$prod",
        {ValueFactory::intV(5), ValueFactory::intV(11),
         ValueFactory::intV(5), ValueFactory::intV(99)},
        Sched);
    if (!R.ok())
      State.SkipWithError(("product aborted: " + R.AbortReason).c_str());
    benchmark::DoNotOptimize(R);
  }
}
BENCHMARK(BM_Product_SelfComposition)->Unit(benchmark::kMicrosecond);

} // namespace

BENCHMARK_MAIN();
