//===-- bench/bench_noninterference.cpp - Empirical soundness ---*- C++ -*-===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Empirical validation of the soundness theorem (Sec. 4) and of the
/// Fig. 1 counterexample:
///
///  - every verified Table 1 example is executed under many schedulers and
///    high inputs; the low outputs must never differ (0 violations);
///  - the rejected original of Fig. 1 must exhibit a concrete low-output
///    mismatch (the internal timing channel becomes a value channel).
///
/// This regenerates the "shape" of the paper's central claim dynamically:
/// commutativity-verified programs are schedule- and secret-insensitive in
/// their low outputs on a real (simulated) scheduler, with no assumptions
/// about timing.
///
//===----------------------------------------------------------------------===//

#include "hyperviper/Driver.h"

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

using namespace commcsl;

namespace {

NIConfig::TrialGenerator twoPTwoCGen() {
  return [](std::mt19937_64 &Rng) {
    std::uniform_int_distribution<int64_t> Len(1, 3);
    std::uniform_int_distribution<int64_t> Item(0, 9);
    int64_t N = Len(Rng);
    auto MkSeq = [&](bool High) {
      std::vector<ValueRef> Elems;
      for (int64_t I = 0; I < N; ++I)
        Elems.push_back(ValueFactory::intV(High ? Item(Rng) * 7 + 1
                                                : Item(Rng)));
      return ValueFactory::seq(std::move(Elems));
    };
    ValueRef ItemsA = MkSeq(false);
    ValueRef ItemsB = MkSeq(false);
    std::vector<std::vector<ValueRef>> Batch;
    for (int V = 0; V < 3; ++V)
      Batch.push_back(
          {ItemsA, ItemsB, MkSeq(true), ValueFactory::intV(N)});
    return Batch;
  };
}

} // namespace

int main(int Argc, char **Argv) {
  std::string Dir = COMMCSL_EXAMPLES_DIR;
  unsigned Jobs = 1; // sequential by default; --jobs N distributes trials
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--dir" && I + 1 < Argc)
      Dir = Argv[++I];
    else if (Arg == "--jobs" && I + 1 < Argc)
      Jobs = static_cast<unsigned>(std::atoi(Argv[++I]));
  }

  struct Case {
    const char *File;
    bool ExpectSecure;
    NIConfig::TrialGenerator Gen;
    int64_t HighMax = 6; ///< upper bound of sampled inputs
  };
  std::vector<Case> Cases = {
      {"count_vaccinated.hv", true, nullptr},
      {"figure2.hv", true, nullptr},
      {"count_sick_days.hv", true, nullptr},
      {"figure1.hv", true, nullptr},
      {"figure1_commute.hv", true, nullptr},
      {"mean_salary.hv", true, nullptr},
      {"email_metadata.hv", true, nullptr},
      {"patient_statistic.hv", true, nullptr},
      {"debt_sum.hv", true, nullptr},
      {"sick_employee_names.hv", true, nullptr},
      {"website_visitor_ips.hv", true, nullptr},
      {"figure3.hv", true, nullptr},
      {"sales_by_region.hv", true, nullptr},
      {"salary_histogram.hv", true, nullptr},
      {"count_purchases.hv", true, nullptr},
      {"most_valuable_purchase.hv", true, nullptr},
      {"producer_consumer.hv", true, nullptr},
      {"pipeline.hv", true, nullptr},
      {"two_producers_two_consumers.hv", true, twoPTwoCGen()},
      // The original Fig. 1 leaks: h must straddle the left thread's loop
      // bound (100) for the internal timing channel to flip the winner.
      {"figure1_reject.hv", false, nullptr, 200},
  };

  std::printf("Empirical non-interference sweep (Def. 2.1), jobs=%u\n\n",
              Jobs);
  std::printf("%-34s  %6s  %7s  %s\n", "Example", "runs", "pairs",
              "result");
  std::printf("%.*s\n", 70,
              "------------------------------------------------------------"
              "----------");

  DriverOptions Options;
  Options.Jobs = Jobs;
  Driver D(Options);
  int Exit = 0;
  double TotalWall = 0, TotalCpu = 0;
  for (const Case &C : Cases) {
    DriverResult R = D.verifyFile(Dir + "/" + C.File);
    if (!R.ParseOk) {
      std::printf("%-34s  parse error\n", C.File);
      Exit = 1;
      continue;
    }
    NIConfig Cfg;
    Cfg.TrialGen = C.Gen;
    Cfg.InputScope.IntHi = C.HighMax;
    NIReport Report = D.runEmpirical(R, "main", Cfg);
    TotalWall += Report.WallSeconds;
    TotalCpu += Report.CpuSeconds;
    bool AsExpected = Report.secure() == C.ExpectSecure;
    std::printf("%-34s  %6llu  %7llu  %s%s\n", C.File,
                static_cast<unsigned long long>(Report.Runs),
                static_cast<unsigned long long>(Report.PairsCompared),
                Report.secure() ? "no violation" : "LEAK FOUND",
                AsExpected ? "" : "  (UNEXPECTED!)");
    if (!AsExpected) {
      Exit = 1;
      if (Report.Violation)
        std::fputs(Report.Violation->describe().c_str(), stderr);
    } else if (!Report.secure()) {
      // Expected leak: show the witness once, as the paper's Fig. 1 story.
      std::printf("%s", Report.Violation->describe().c_str());
    }
  }

  // Per-trial seed derivation keeps runs/pairs/verdicts identical at every
  // --jobs setting, so this wall-vs-CPU summary is an apples-to-apples
  // speedup measurement over a fixed workload.
  std::printf("\nharness wall time %.3fs, aggregate worker time %.3fs "
              "(cpu/wall %.2fx at jobs=%u)\n",
              TotalWall, TotalCpu,
              TotalWall > 0 ? TotalCpu / TotalWall : 1.0, Jobs);
  std::printf(Exit == 0
                  ? "\nRESULT: all verified examples empirically secure; "
                    "rejected example leaks\n"
                  : "\nRESULT: UNEXPECTED outcomes present\n");
  return Exit;
}
