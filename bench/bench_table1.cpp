//===-- bench/bench_table1.cpp - Table 1 reproduction -----------*- C++ -*-===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates the paper's Table 1: for each of the 18 evaluation examples
/// it reports the data structure, the abstraction, lines of code, lines of
/// annotations, and the verification time (averaged over 5 runs, like the
/// paper). Every example must verify; the Fig. 1 original (reject) twin is
/// reported as a sanity row at the end and must be rejected.
///
/// Absolute times are not comparable to the paper's (their backend is
/// Viper + Z3 on a warmed-up JVM; ours is an in-process solver), but the
/// shape — everything verifies, with set/map examples among the slower
/// rows — is the reproduction target (see EXPERIMENTS.md).
///
//===----------------------------------------------------------------------===//

#include "hyperviper/Driver.h"

#include <cstdio>
#include <string>
#include <vector>

using namespace commcsl;

namespace {

struct Row {
  const char *File;
  const char *Name;
  const char *DataStructure;
  const char *Abstraction;
};

const Row Table1[] = {
    {"count_vaccinated.hv", "Count-Vaccinated", "Counter, increment", "None"},
    {"figure2.hv", "Figure 2", "Integer, add", "None"},
    {"count_sick_days.hv", "Count-Sick-Days", "Integer, add", "None"},
    {"figure1.hv", "Figure 1", "Integer, arbitrary", "Constant"},
    {"mean_salary.hv", "Mean-Salary", "List, append", "Mean"},
    {"email_metadata.hv", "Email-Metadata", "List, append", "Multiset"},
    {"patient_statistic.hv", "Patient-Statistic", "List, append", "Length"},
    {"debt_sum.hv", "Debt-Sum", "List, append", "Sum"},
    {"sick_employee_names.hv", "Sick-Employee-Names", "Treeset, add",
     "None"},
    {"website_visitor_ips.hv", "Website-Visitor-IPs", "Listset, add",
     "None"},
    {"figure3.hv", "Figure 3", "HashMap, put", "Key set"},
    {"sales_by_region.hv", "Sales-By-Region", "HashMap, disjoint put",
     "None"},
    {"salary_histogram.hv", "Salary-Histogram", "HashMap, increment value",
     "None"},
    {"count_purchases.hv", "Count-Purchases", "HashMap, add value", "None"},
    {"most_valuable_purchase.hv", "Most-Valuable-Purchase",
     "HashMap, conditional put", "None"},
    {"producer_consumer.hv", "1-Producer-1-Consumer", "Queue",
     "Consumed sequence"},
    {"pipeline.hv", "Pipeline", "Two queues", "Consumed sequences"},
    {"two_producers_two_consumers.hv", "2-Producers-2-Consumers", "Queue",
     "Produced multiset"},
};

} // namespace

int main(int Argc, char **Argv) {
  std::string Dir = COMMCSL_EXAMPLES_DIR;
  unsigned Runs = 5;
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--runs" && I + 1 < Argc)
      Runs = static_cast<unsigned>(std::stoul(Argv[++I]));
    else if (Arg == "--dir" && I + 1 < Argc)
      Dir = Argv[++I];
  }

  std::printf("Table 1 reproduction: %u runs per example\n\n", Runs);
  std::printf("%-24s  %-26s  %-18s  %4s  %4s  %8s  %s\n", "Example",
              "Data structure", "Abstraction", "LOC", "Ann.", "T [ms]",
              "Verdict");
  std::printf("%.*s\n", 108,
              "------------------------------------------------------------"
              "------------------------------------------------");

  Driver D;
  int Exit = 0;
  double TotalMs = 0;
  for (const Row &R : Table1) {
    std::string Path = Dir + "/" + R.File;
    double SumSeconds = 0;
    DriverResult Last;
    for (unsigned Run = 0; Run < Runs; ++Run) {
      Last = D.verifyFile(Path);
      SumSeconds += Last.totalSeconds();
    }
    double Ms = 1000.0 * SumSeconds / Runs;
    TotalMs += Ms;
    bool Ok = Last.Verified;
    if (!Ok)
      Exit = 1;
    std::printf("%-24s  %-26s  %-18s  %4u  %4u  %8.2f  %s\n", R.Name,
                R.DataStructure, R.Abstraction, Last.Metrics.LinesOfCode,
                Last.Metrics.AnnotationLines, Ms,
                Ok ? "verified" : "REJECTED (!)");
    if (!Ok)
      std::fputs(Last.Diags.str(R.File).c_str(), stderr);
  }

  // Sanity row: the original Fig. 1 must be rejected.
  DriverResult Reject = D.verifyFile(Dir + "/figure1_reject.hv");
  std::printf("%-24s  %-26s  %-18s  %4u  %4u  %8s  %s\n",
              "Figure 1 (original)", "Integer, arbitrary", "Identity",
              Reject.Metrics.LinesOfCode, Reject.Metrics.AnnotationLines,
              "-", Reject.Verified ? "verified (!)" : "rejected, as expected");
  if (Reject.Verified)
    Exit = 1;

  std::printf("\nTotal verification time: %.2f ms (%zu examples)\n", TotalMs,
              std::size(Table1));
  std::printf(Exit == 0 ? "RESULT: all Table 1 examples verified\n"
                        : "RESULT: FAILURES present\n");
  return Exit;
}
