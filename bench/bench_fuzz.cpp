//===-- bench/bench_fuzz.cpp - Fuzz campaign throughput ---------*- C++ -*-===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Throughput and scaling of the differential fuzzing campaign: a fixed
/// seed set run at increasing job counts, reporting seeds/second and the
/// parallel speedup, and asserting the determinism contract along the way
/// (every job count must produce the byte-identical report).
///
//===----------------------------------------------------------------------===//

#include "fuzz/Campaign.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

using namespace commcsl;

int main(int Argc, char **Argv) {
  unsigned Seeds = 200;
  unsigned MaxJobs = std::thread::hardware_concurrency();
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--seeds" && I + 1 < Argc)
      Seeds = static_cast<unsigned>(std::atoi(Argv[++I]));
    else if (Arg == "--max-jobs" && I + 1 < Argc)
      MaxJobs = static_cast<unsigned>(std::atoi(Argv[++I]));
  }
  if (MaxJobs == 0)
    MaxJobs = 1;

  std::printf("Differential fuzzing campaign, %u seeds\n\n", Seeds);
  std::printf("%6s  %9s  %10s  %8s  %s\n", "jobs", "wall (s)", "seeds/s",
              "speedup", "report");
  std::printf("%.*s\n", 52,
              "----------------------------------------------------");

  int Exit = 0;
  double BaseWall = 0;
  std::string BaseJson;
  for (unsigned Jobs = 1; Jobs <= MaxJobs; Jobs *= 2) {
    CampaignConfig Config;
    Config.BaseSeed = 1;
    Config.NumSeeds = Seeds;
    Config.Jobs = Jobs;
    auto T0 = std::chrono::steady_clock::now();
    CampaignReport Report = runCampaign(Config);
    double Wall = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - T0)
                      .count();
    std::string Json = Report.json();
    bool Identical = BaseJson.empty() || Json == BaseJson;
    if (BaseJson.empty()) {
      BaseJson = Json;
      BaseWall = Wall;
    }
    if (!Identical || !Report.clean())
      Exit = 1;
    std::printf("%6u  %9.3f  %10.1f  %7.2fx  %s%s\n", Jobs, Wall,
                Wall > 0 ? Seeds / Wall : 0.0,
                Wall > 0 ? BaseWall / Wall : 1.0,
                Identical ? "identical" : "DIVERGED",
                Report.clean() ? "" : "  (NOT CLEAN)");
  }

  std::printf(Exit == 0
                  ? "\nRESULT: campaign clean and byte-identical at every "
                    "job count\n"
                  : "\nRESULT: UNEXPECTED divergence or findings\n");
  return Exit;
}
