//===-- bench/bench_verifier.cpp - Verifier scaling ---------------*- C++ -*-===//
//
// Part of the CommCSL-C++ project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Scaling of the relational verifier with program size, on generated
/// well-typed programs (sequential and concurrent), plus the end-to-end
/// pipeline split (parse vs. validity vs. verify) on a representative
/// Table 1 example. Complements bench_table1: that one regenerates the
/// paper's table, this one characterizes our engine.
///
//===----------------------------------------------------------------------===//

#include "hyperviper/Driver.h"
#include "testgen/ProgramGen.h"

#include <benchmark/benchmark.h>

using namespace commcsl;

namespace {

void BM_Verify_Generated_Sequential(benchmark::State &State) {
  GenConfig Cfg;
  Cfg.Seed = 1234;
  Cfg.TargetStatements = static_cast<unsigned>(State.range(0));
  Cfg.EnableConcurrency = false;
  GeneratedProgram G = generateProgram(Cfg);
  DriverOptions Opts;
  Opts.Verifier.SkipValidityCheck = true; // isolate program verification
  Driver D(Opts);
  for (auto _ : State) {
    DriverResult R = D.verifySource(G.Source, "gen");
    if (!R.Verified)
      State.SkipWithError("generated program rejected");
    benchmark::DoNotOptimize(R);
  }
  State.counters["stmts"] = Cfg.TargetStatements;
}
BENCHMARK(BM_Verify_Generated_Sequential)
    ->Arg(10)
    ->Arg(40)
    ->Arg(160)
    ->Arg(640)
    ->Unit(benchmark::kMillisecond);

void BM_Verify_Generated_Concurrent(benchmark::State &State) {
  GenConfig Cfg;
  Cfg.Seed = 99;
  Cfg.TargetStatements = static_cast<unsigned>(State.range(0));
  GeneratedProgram G = generateProgram(Cfg);
  DriverOptions Opts;
  Opts.Verifier.SkipValidityCheck = true;
  Driver D(Opts);
  for (auto _ : State) {
    DriverResult R = D.verifySource(G.Source, "gen");
    if (!R.Verified)
      State.SkipWithError("generated program rejected");
    benchmark::DoNotOptimize(R);
  }
  State.counters["stmts"] = Cfg.TargetStatements;
}
BENCHMARK(BM_Verify_Generated_Concurrent)
    ->Arg(10)
    ->Arg(40)
    ->Arg(160)
    ->Unit(benchmark::kMillisecond);

/// Phase split on the Fig. 3 example: parse vs. validity vs. verify.
void BM_Pipeline_Figure3(benchmark::State &State) {
  std::string Path = std::string(COMMCSL_EXAMPLES_DIR) + "/figure3.hv";
  Driver D;
  double Parse = 0, Validity = 0, Verify = 0;
  for (auto _ : State) {
    DriverResult R = D.verifyFile(Path);
    if (!R.Verified)
      State.SkipWithError("figure3 rejected");
    Parse = R.ParseSeconds * 1e3;
    Validity = R.ValiditySeconds * 1e3;
    Verify = R.VerifySeconds * 1e3;
    benchmark::DoNotOptimize(R);
  }
  State.counters["parse_ms"] = Parse;
  State.counters["validity_ms"] = Validity;
  State.counters["verify_ms"] = Verify;
}
BENCHMARK(BM_Pipeline_Figure3)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
